"""Flow configuration: one immutable object instead of a kwarg pile.

``FlowConfig`` carries every knob the synthesis flow understands.  It is
frozen so a config can be shared between runs, varied with
:func:`dataclasses.replace`, and turned into stable cache keys.  The PM
options default to ``None`` (meaning "paper defaults") rather than a
shared ``PMOptions()`` instance, so no mutable state leaks between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.core.pm_pass import PMOptions


@dataclass(frozen=True)
class FlowConfig:
    """Everything a :class:`~repro.pipeline.Pipeline` run needs to know.

    n_steps:              control-step budget (throughput constraint).
                          Must be set before running.
    pm:                   PM pass options; ``None`` means ``PMOptions()``.
    scheduler:            named strategy from the scheduler registry
                          (``list``, ``force_directed``, ``exact``, or
                          anything registered via
                          :func:`repro.pipeline.register_scheduler`).
    width:                datapath bit width.
    initiation_interval:  pipelined initiation interval.  The ``list``
                          strategy schedules at exactly this II; the
                          ``pipeline`` strategy treats it as an upper
                          bound and searches down toward MII (see
                          :mod:`repro.sched.modulo`).  Other strategies
                          reject it.
    pipelined_gating:     what to do with PM gating whose guard crosses
                          an II boundary under overlap (see
                          :mod:`repro.core.pipelined_gating`):
                          ``per_sample`` keeps it via stage-indexed
                          guard-register copies, ``drop`` removes it.
    mutex_sharing:        share units between mutually-exclusive ops.
    verify:               run the structural gating-soundness check.
    sim_backend:          batch-simulation engine for verification and
                          simulated power (``compiled`` | ``vectorized``
                          | ``packed`` | ``auto``); the backends are
                          bit-identical, this only selects the execution
                          strategy (``packed`` degrades to the hybrid
                          vectorized engine on recurrent plans).
    label:                free-form tag used by ``explore()`` reports.
    """

    n_steps: int | None = None
    pm: PMOptions | None = None
    scheduler: str = "list"
    width: int = 8
    initiation_interval: int | None = None
    pipelined_gating: str = "per_sample"
    mutex_sharing: bool = False
    verify: bool = False
    sim_backend: str = "auto"
    label: str = field(default="default", compare=False)

    @property
    def pm_options(self) -> PMOptions:
        """The effective PM options (paper defaults when ``pm is None``)."""
        return self.pm if self.pm is not None else PMOptions()

    def require_steps(self) -> int:
        if self.n_steps is None or self.n_steps < 0:
            raise ValueError(
                "FlowConfig.n_steps must be a control-step budget "
                f"before running (got {self.n_steps!r})")
        return self.n_steps

    def with_steps(self, n_steps: int) -> "FlowConfig":
        return replace(self, n_steps=n_steps)

    def baseline(self) -> "FlowConfig":
        """The traditional (non-power-managed) twin of this config."""
        return replace(self, pm=PMOptions(enabled=False), verify=False,
                       label=f"{self.label}+baseline")

    def cache_key(self, config_fields: tuple[str, ...]) -> tuple[str, ...]:
        """Stable key over the subset of fields a stage depends on.

        Stages declare only the fields that change their output, so e.g.
        a ``width`` sweep reuses cached PM and scheduling artifacts.
        """
        return tuple(f"{name}={getattr(self, name)!r}"
                     for name in config_fields)

    def describe(self) -> str:
        parts = [f"{f.name}={getattr(self, f.name)!r}"
                 for f in fields(self) if f.name != "label"]
        return f"FlowConfig({', '.join(parts)})"
