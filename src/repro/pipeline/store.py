"""Disk-backed, content-addressed stage-artifact store.

:class:`DiskArtifactCache` is the persistent sibling of the in-memory
:class:`~repro.pipeline.cache.ArtifactCache`: same ``lookup``/``store``
contract (so a :class:`~repro.pipeline.Pipeline` accepts either), but
entries live as sharded pickle files under a root directory, so

* warm re-runs of a sweep survive process restarts,
* every ``explore`` worker process sharing the root also shares the
  cache (writes are atomic renames; readers never see partial files),
* the store can be shipped to workers and journals by path alone.

Layout: a cache key (stage name, CDFG content fingerprint, per-stage
config subset) is digested to sha256; the entry is stored at
``<root>/<digest[:2]>/<digest[2:]>.pkl``, giving 256 shard directories
that keep listings cheap at hundreds of thousands of entries.

Bounding is best-effort LRU on file mtimes: ``lookup`` touches the file,
``store`` prunes the oldest entries once the count passes
``max_entries``.  Concurrent processes may transiently overshoot the
bound; they converge on the next prune.  Pruning never evicts the entry
the pruning writer itself just stored, and racing evictors tolerate
entries vanishing under them, so two writers hitting the bound together
cannot delete each other's work twice (each may still age out the
*other's* fresh entry — :class:`~repro.pipeline.index.IndexedArtifactStore`
replaces this whole mtime scan with a transactional SQLite LRU and
should be preferred for concurrent serving workloads).  A corrupt or
torn entry (e.g. a reader racing a writer on a non-POSIX filesystem, or
a killed process) is treated as a miss and deleted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.pipeline.cache import CacheKey, CacheStats


@runtime_checkable
class StageStore(Protocol):
    """What a :class:`~repro.pipeline.Pipeline` needs from any artifact
    store — the in-memory :class:`~repro.pipeline.cache.ArtifactCache`,
    the on-disk :class:`DiskArtifactCache`, and the SQLite-indexed
    :class:`~repro.pipeline.index.IndexedArtifactStore` all satisfy it.
    """

    stats: CacheStats

    def lookup(self, key: CacheKey) -> "dict[str, object] | None":
        """The artifacts stored under ``key``, or ``None`` on a miss."""

    def store(self, key: CacheKey, artifacts: "dict[str, object]") -> None:
        """Persist ``artifacts`` under ``key``."""

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""

#: Bump when the on-disk entry format changes incompatibly; part of the
#: digest, so old trees are simply never hit instead of misread.
STORE_FORMAT = 1


class DiskArtifactCache:
    """Persistent ``{cache key -> artifact dict}`` store under ``root``."""

    def __init__(self, root: str | os.PathLike, max_entries: int = 4096,
                 ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._count: int | None = None  # lazily scanned, then maintained

    # -- key mapping -----------------------------------------------------

    @staticmethod
    def digest(key: CacheKey) -> str:
        """Stable content digest of a stage cache key."""
        payload = f"v{STORE_FORMAT}:{key!r}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, key: CacheKey) -> Path:
        """The sharded file path an entry for ``key`` lives at."""
        digest = self.digest(key)
        return self.root / digest[:2] / f"{digest[2:]}.pkl"

    # -- ArtifactCache contract ------------------------------------------

    def lookup(self, key: CacheKey) -> dict[str, object] | None:
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                artifacts = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # Torn write or stale format: drop the entry, treat as a miss.
            self._discard(path)
            self.stats.misses += 1
            return None
        try:
            os.utime(path)  # LRU recency
        except OSError:
            pass
        self.stats.hits += 1
        return artifacts

    def _write_entry(self, path: Path, artifacts: dict[str, object]) -> int:
        """Atomically persist one entry; returns its size in bytes."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(dict(artifacts), handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
                size = handle.tell()
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return size

    def store(self, key: CacheKey, artifacts: dict[str, object]) -> None:
        path = self.path_for(key)
        existed = path.exists()
        self._write_entry(path, artifacts)
        if not existed and self._count is not None:
            self._count += 1
        if len(self) > self.max_entries:
            self._prune(protect=path)

    def clear(self) -> None:
        for path in self._entries():
            self._discard(path)
        self.stats = CacheStats()
        self._count = 0

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self._entries())
        return self._count

    def __contains__(self, key: CacheKey) -> bool:
        return self.path_for(key).exists()

    # -- internals -------------------------------------------------------

    def _entries(self):
        return self.root.glob("??/*.pkl")

    def _discard(self, path: Path) -> bool:
        """Unlink ``path``; ``False`` when it was already gone (a racing
        evictor or writer got there first — not an error, not an
        eviction)."""
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        except OSError:
            return False
        if self._count is not None and self._count > 0:
            self._count -= 1
        return True

    def _prune(self, protect: Path | None = None) -> None:
        """Delete oldest-mtime entries to get back under ``max_entries``.

        Scanning the tree is O(entries), so eviction works in batches:
        large stores prune ~1/16th below the bound at once, making the
        scan cost amortized O(1) per store instead of per-store once the
        bound is reached.  (Small bounds keep exact single-entry
        eviction.)

        ``protect`` is the entry this writer just stored: concurrent
        writers may each observe the bound exceeded and prune at once,
        and without the guard the freshest entries — exactly the ones
        the racing stores are about to return to their callers — can
        evict each other.  Entries that vanish mid-scan or mid-evict
        were removed by the racing pruner and are simply skipped.
        """
        aged = []
        for path in self._entries():
            if protect is not None and path == protect:
                continue
            try:
                aged.append((path.stat().st_mtime_ns, path))
            except OSError:
                continue  # concurrently removed
        self._count = len(aged) + (1 if protect is not None else 0)
        target = self.max_entries - max(0, self.max_entries // 16 - 1)
        excess = self._count - target
        if self._count <= self.max_entries or excess <= 0:
            return
        aged.sort()
        for _, path in aged[:excess]:
            if self._discard(path):
                self.stats.evictions += 1

    # -- multiprocessing -------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        # Workers share the directory, not the in-process counters.
        return {"root": self.root, "max_entries": self.max_entries}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.root = state["root"]
        self.max_entries = state["max_entries"]
        self.stats = CacheStats()
        self._count = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DiskArtifactCache({str(self.root)!r}, "
                f"max_entries={self.max_entries})")
