"""The shared artifact store a pipeline run writes into.

Every stage reads named artifacts produced by earlier stages and
publishes its own; the context also records provenance (which stage made
what), per-stage wall time, and which stages were served from cache — so
a run is fully introspectable after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.graph import CDFG
from repro.pipeline.cache import graph_fingerprint
from repro.pipeline.config import FlowConfig


class MissingArtifactError(KeyError):
    """A stage asked for an artifact nothing has produced."""


@dataclass
class FlowContext:
    """One synthesis run: the input graph + config and all artifacts."""

    graph: CDFG
    config: FlowConfig
    artifacts: dict[str, object] = field(default_factory=dict)
    produced_by: dict[str, str] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    cache_hits: list[str] = field(default_factory=list)
    cache_misses: list[str] = field(default_factory=list)
    _fingerprint: str | None = field(default=None, repr=False)

    @property
    def fingerprint(self) -> str:
        """Content hash of the input graph (computed once per run)."""
        if self._fingerprint is None:
            self._fingerprint = graph_fingerprint(self.graph)
        return self._fingerprint

    def put(self, name: str, value: object, stage: str) -> None:
        self.artifacts[name] = value
        self.produced_by[name] = stage

    def get(self, name: str) -> object:
        try:
            return self.artifacts[name]
        except KeyError:
            raise MissingArtifactError(
                f"artifact {name!r} has not been produced; available: "
                f"{sorted(self.artifacts)}") from None

    def has(self, name: str) -> bool:
        return name in self.artifacts

    @property
    def result(self):
        """The final :class:`~repro.pipeline.SynthesisResult` artifact."""
        return self.get("result")

    def summary(self) -> str:
        """One line per artifact: name, producing stage, cached or not."""
        lines = [f"run of {self.graph.name!r} @ "
                 f"{self.config.n_steps} steps "
                 f"[{self.config.scheduler} scheduler]"]
        for name, stage in self.produced_by.items():
            origin = "cache" if stage in self.cache_hits else "computed"
            lines.append(f"  {name:<12s} <- {stage} ({origin})")
        return "\n".join(lines)
