"""SQLite-indexed artifact store for concurrent serving workloads.

:class:`IndexedArtifactStore` keeps the exact on-disk entry layout of
:class:`~repro.pipeline.store.DiskArtifactCache` — sharded pickle files
under a root directory, so a plain cache pointed at the same tree keeps
working — but replaces every operation that scanned the tree with an
O(1) query against a WAL-mode SQLite index (``<root>/index.db``):

* ``len()`` is ``SELECT COUNT(*)`` instead of a 256-directory glob;
* LRU recency is a monotonic sequence number bumped inside the index
  transaction instead of a best-effort ``utime``;
* eviction runs as one ``BEGIN IMMEDIATE`` transaction that claims the
  oldest rows before touching the filesystem, so two writers hitting
  ``max_entries`` together evict *disjoint* victims — the raciness that
  makes the mtime scan unsuitable for a long-running multi-tenant
  server (see the `store` module docstring) simply cannot occur;
* :meth:`gc` reconciles index and tree in one pass (adopting entries a
  plain ``DiskArtifactCache`` wrote, dropping rows whose files
  vanished), which is what lets a server run indefinitely against the
  same root.

WAL mode means readers never block the single writer and vice versa;
every process holds its own connection (connections are re-opened after
``fork``, never shared across it).
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path

from repro.pipeline.cache import CacheKey, CacheStats
from repro.pipeline.store import DiskArtifactCache

#: Bump when the index schema changes incompatibly; a mismatched index
#: is dropped and rebuilt from the entry tree (the tree is the truth).
INDEX_FORMAT = 1

INDEX_NAME = "index.db"


def wal_connect(path: "str | os.PathLike", *, timeout: float = 30.0,
                check_same_thread: bool = True) -> sqlite3.Connection:
    """A SQLite connection configured for concurrent serving workloads.

    WAL journal (readers never block the writer), ``NORMAL`` synchronous
    (WAL makes that crash-safe for committed transactions), a generous
    busy timeout, and manual transaction control — the configuration
    both the artifact index and the :mod:`repro.serve` lease queue run
    on, extracted here so every store-adjacent database behaves the
    same way under multi-process contention.
    """
    conn = sqlite3.connect(path, timeout=timeout, isolation_level=None,
                           check_same_thread=check_same_thread)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("PRAGMA busy_timeout={}".format(int(timeout * 1000)))
    return conn


_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    digest TEXT PRIMARY KEY,
    size INTEGER NOT NULL,
    seq INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS entries_by_seq ON entries(seq);
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v INTEGER NOT NULL
);
INSERT OR IGNORE INTO meta (k, v) VALUES ('format', {format});
INSERT OR IGNORE INTO meta (k, v) VALUES ('seq', 0);
""".format(format=INDEX_FORMAT)


class IndexedArtifactStore(DiskArtifactCache):
    """A :class:`DiskArtifactCache` whose bookkeeping lives in SQLite.

    Same constructor, same ``lookup``/``store`` contract, same sharded
    pickle tree; only the index is new.  Use it whenever several
    processes serve from one store — ``repro serve`` always does.
    """

    def __init__(self, root: str | os.PathLike, max_entries: int = 4096,
                 ) -> None:
        super().__init__(root, max_entries=max_entries)
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    # -- connection management -------------------------------------------

    def _db(self) -> sqlite3.Connection:
        """This process's connection, (re)opened lazily after a fork."""
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            self._conn = self._open_index()
            self._conn_pid = pid
        return self._conn

    def _open_index(self) -> sqlite3.Connection:
        # The serving tier touches the index from the event loop's I/O
        # and maintenance executor threads; statement execution is
        # serialized by the sqlite3 module itself.
        conn = wal_connect(self.index_path, timeout=30.0,
                           check_same_thread=False)
        conn.executescript(_SCHEMA)
        row = conn.execute(
            "SELECT v FROM meta WHERE k='format'").fetchone()
        if row is None or row[0] != INDEX_FORMAT:
            # Stale schema: rebuild from the tree, which stays the truth.
            conn.executescript(
                "DROP TABLE IF EXISTS entries; DROP TABLE IF EXISTS meta;")
            conn.executescript(_SCHEMA)
        return conn

    def close(self) -> None:
        """Release this process's index connection (entries stay put)."""
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    # -- index bookkeeping -----------------------------------------------

    @staticmethod
    def _next_seq(conn: sqlite3.Connection) -> int:
        conn.execute("UPDATE meta SET v = v + 1 WHERE k='seq'")
        return conn.execute(
            "SELECT v FROM meta WHERE k='seq'").fetchone()[0]

    def _touch_row(self, digest: str, size: int | None = None) -> None:
        """Mark ``digest`` most-recently-used (inserting if unindexed —
        e.g. an entry a plain ``DiskArtifactCache`` wrote to this tree).
        """
        conn = self._db()
        conn.execute("BEGIN IMMEDIATE")
        try:
            seq = self._next_seq(conn)
            if size is None:
                updated = conn.execute(
                    "UPDATE entries SET seq=? WHERE digest=?",
                    (seq, digest)).rowcount
                if not updated:
                    conn.execute(
                        "INSERT INTO entries (digest, size, seq) "
                        "VALUES (?, 0, ?)", (digest, seq))
            else:
                conn.execute(
                    "INSERT INTO entries (digest, size, seq) VALUES (?, ?, ?)"
                    " ON CONFLICT(digest) DO UPDATE SET size=excluded.size,"
                    " seq=excluded.seq", (digest, size, seq))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def _drop_row(self, digest: str) -> None:
        self._db().execute("DELETE FROM entries WHERE digest=?", (digest,))

    def _path_for_digest(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.pkl"

    # -- ArtifactCache contract ------------------------------------------

    def lookup(self, key: CacheKey) -> dict[str, object] | None:
        digest = self.digest(key)
        artifacts = super().lookup(key)
        if artifacts is None:
            # Missing or corrupt (already unlinked by the parent): make
            # the index agree so len()/eviction stay exact.
            self._drop_row(digest)
            return None
        self._touch_row(digest)
        return artifacts

    def store(self, key: CacheKey, artifacts: dict[str, object]) -> None:
        digest = self.digest(key)
        path = self._path_for_digest(digest)
        size = self._write_entry(path, artifacts)
        self._touch_row(digest, size=size)
        self._evict_lru(protect=digest)

    def clear(self) -> None:
        conn = self._db()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute("DELETE FROM entries")
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        for path in self._entries():
            self._discard(path)
        self.stats = CacheStats()
        self._count = 0

    def __len__(self) -> int:
        return self._db().execute(
            "SELECT COUNT(*) FROM entries").fetchone()[0]

    # __contains__ stays file-based (the tree is the truth): a key an
    # unindexed writer stored is still "in" the store, and gc() adopts it.

    # -- transactional LRU eviction --------------------------------------

    def _prune(self, protect: Path | None = None) -> None:
        # The parent's store() never runs for this class, but keep the
        # override total in case a caller prunes explicitly.
        self._evict_lru()

    def _evict_lru(self, protect: str | None = None) -> None:
        """Claim and delete the oldest rows past ``max_entries``.

        The claim (row delete) commits before any file is unlinked, so
        concurrent evictors never pick the same victim; a file already
        gone when we unlink it is a no-op, not an error.
        """
        conn = self._db()
        conn.execute("BEGIN IMMEDIATE")
        try:
            count = conn.execute(
                "SELECT COUNT(*) FROM entries").fetchone()[0]
            excess = count - self.max_entries
            if excess <= 0:
                conn.execute("COMMIT")
                return
            rows = conn.execute(
                "SELECT digest FROM entries WHERE digest != ?"
                " ORDER BY seq ASC LIMIT ?",
                (protect or "", excess)).fetchall()
            victims = [digest for (digest,) in rows]
            conn.executemany("DELETE FROM entries WHERE digest=?",
                             [(d,) for d in victims])
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        for digest in victims:
            try:
                os.unlink(self._path_for_digest(digest))
            except FileNotFoundError:
                pass  # racing evictor or a vanished file: row is gone
            except OSError:
                pass
            self.stats.evictions += 1

    # -- garbage collection ----------------------------------------------

    def gc(self) -> dict[str, int]:
        """Reconcile the index with the entry tree.

        Adopts files the index does not know (written by a plain
        ``DiskArtifactCache`` or an older index), drops rows whose files
        vanished, then re-applies the LRU bound.  Returns counters:
        ``{"entries": ..., "adopted": ..., "dropped": ..., "evicted": ...}``.
        """
        conn = self._db()
        on_disk: dict[str, Path] = {}
        for path in self._entries():
            on_disk[path.parent.name + path.stem] = path
        indexed = {digest for (digest,) in
                   conn.execute("SELECT digest FROM entries")}
        dropped = sorted(indexed - set(on_disk))
        adopted = sorted(set(on_disk) - indexed)
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.executemany("DELETE FROM entries WHERE digest=?",
                             [(d,) for d in dropped])
            for digest in adopted:
                seq = self._next_seq(conn)
                try:
                    size = on_disk[digest].stat().st_size
                except OSError:
                    continue
                conn.execute(
                    "INSERT OR REPLACE INTO entries (digest, size, seq) "
                    "VALUES (?, ?, ?)", (digest, size, seq))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        evictions_before = self.stats.evictions
        self._evict_lru()
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return {"entries": len(self), "adopted": len(adopted),
                "dropped": len(dropped),
                "evicted": self.stats.evictions - evictions_before}

    def total_bytes(self) -> int:
        """Sum of indexed entry sizes (0-sized rows pending :meth:`gc`
        may undercount)."""
        return self._db().execute(
            "SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()[0]

    # -- multiprocessing -------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        # Connections never cross process boundaries.
        return super().__getstate__()

    def __setstate__(self, state: dict[str, object]) -> None:
        super().__setstate__(state)
        self._conn = None
        self._conn_pid = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IndexedArtifactStore({str(self.root)!r}, "
                f"max_entries={self.max_entries})")
