"""Per-stage artifact caching.

Cache keys combine three things: the stage name, a content fingerprint of
the input CDFG, and the subset of :class:`~repro.pipeline.FlowConfig`
fields the stage declared as relevant.  Because every stage is a pure
function of those inputs, a hit can splice the previously-computed
artifacts straight into a new :class:`~repro.pipeline.FlowContext` —
which is what makes repeated budget sweeps and baseline/managed pairs
cheap (the validate/analyze/PM work is shared instead of redone).

Cached artifacts are returned by reference, not copied: treat them as
immutable, exactly as you would the return value of any synthesis call.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.ir.graph import CDFG
from repro.ir.serialize import graph_to_dict

CacheKey = tuple


def graph_fingerprint(graph: CDFG) -> str:
    """Stable content hash of a CDFG (nodes, operands, control edges).

    Two independently-built but identical graphs fingerprint equally, so
    ``build("gcd")`` in one function and in another share cache entries.
    """
    payload = json.dumps(graph_to_dict(graph), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ArtifactCache:
    """LRU store of ``{artifact name -> object}`` dicts keyed per stage.

    Bounded: once more than ``max_entries`` distinct keys are stored the
    least-recently-used entries are evicted (``lookup`` counts as use),
    so long-lived processes sweeping large design spaces cannot grow the
    cache without bound.  ``stats`` tallies hits/misses/evictions.
    """

    max_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    _store: "OrderedDict[CacheKey, dict[str, object]]" = \
        field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {self.max_entries}")

    def lookup(self, key: CacheKey) -> dict[str, object] | None:
        entry = self._store.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return entry

    def store(self, key: CacheKey, artifacts: dict[str, object]) -> None:
        self._store[key] = dict(artifacts)
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._store.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._store
