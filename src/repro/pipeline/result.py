"""Synthesis result containers (moved here from ``repro.flow``).

``repro.flow`` re-exports both classes, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pm_pass import PMResult
from repro.power.static import SelectModel, StaticPowerReport, static_power
from repro.power.weights import PowerWeights
from repro.rtl.design import SynthesizedDesign
from repro.sched.schedule import Schedule


@dataclass
class SynthesisResult:
    """Everything produced for one circuit at one step budget.

    ``pipelined_gating`` carries the overlap analysis of a pipelined run
    (see :mod:`repro.core.pipelined_gating`); ``None`` when the schedule
    has no initiation interval below its length.
    """

    design: SynthesizedDesign
    pm: PMResult
    schedule: Schedule
    pipelined_gating: "object | None" = None

    @property
    def allocation(self):
        return self.schedule.resource_usage()

    def static_report(self, weights: PowerWeights | None = None,
                      selects: SelectModel | None = None) -> StaticPowerReport:
        return static_power(
            self.pm,
            weights=weights if weights is not None else PowerWeights(),
            selects=selects if selects is not None else SelectModel())

    def simulated_report(self, n_vectors: int = 256, seed: int = 1996,
                         weights: PowerWeights | None = None,
                         rel_tol: float | None = None,
                         backend: str = "auto"):
        """Simulated per-sample energy of the design, via the selected
        batch engine (bit-identical across backends); ``rel_tol``
        switches to Monte Carlo estimation (see
        :func:`repro.power.simulated.measure_power`)."""
        from repro.power.simulated import measure_power

        return measure_power(
            self.design, n_vectors=n_vectors, seed=seed, weights=weights,
            power_management=self.design.is_power_managed, rel_tol=rel_tol,
            backend=backend)


@dataclass
class SynthesisPair:
    """Power-managed design plus its traditional baseline."""

    baseline: SynthesisResult
    managed: SynthesisResult

    @property
    def area_increase(self) -> float:
        """Table II column 4: extra execution-unit area needed by PM."""
        orig = self.baseline.design.area().total
        new = self.managed.design.area().total
        return new / orig if orig else 0.0
