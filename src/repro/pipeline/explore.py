"""Batch design-space exploration.

``explore`` runs the full flow over the cross product of circuits x
step budgets x flow configs and returns one summary row per point —
the loop ``paper_tables`` and the ablation benches used to write by
hand.  Points are independent, so with ``workers > 1`` they fan out over
a :class:`concurrent.futures.ProcessPoolExecutor`; each worker keeps the
module-level artifact cache of its process warm, and every point reports
how many of its stages were cache hits, so sweeps that revisit a
(circuit, budget, config) neighbourhood get measurably cheaper.

Circuits may be registry names (preferred — cheap to ship to workers) or
CDFG objects (serialized to the workers through the IR's JSON form).

Portability note: runtime ``register_scheduler`` registrations live in
this process.  Workers inherit them on fork-start platforms (Linux);
under spawn (macOS/Windows) a custom scheduler must be registered at
import time of a module the workers also import, or the sweep must run
with ``workers=1``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

from repro.ir.graph import CDFG
from repro.ir.serialize import graph_from_dict, graph_to_dict
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.config import FlowConfig
from repro.pipeline.engine import Pipeline

# Per-process artifact store.  The parent's cache is inherited by forked
# workers, and repeated explore() calls in one process build on it.
_PROCESS_CACHE = ArtifactCache()


def clear_explore_cache() -> None:
    """Drop this process's exploration cache (mainly for tests)."""
    _PROCESS_CACHE.clear()


@dataclass(frozen=True)
class ExplorationPoint:
    """Summary of one (circuit, budget, config) synthesis run."""

    circuit: str
    n_steps: int
    config_label: str
    scheduler: str
    managed_muxes: int
    power_reduction_pct: float
    area: int
    controller_literals: int
    allocation: tuple[tuple[str, int], ...]
    cache_hits: int
    cache_misses: int
    #: Engine-simulated total power reduction vs the baseline design,
    #: populated when ``explore(..., sim_vectors=N)`` is used.
    simulated_reduction_pct: float | None = None

    @property
    def allocation_dict(self) -> dict[str, int]:
        return dict(self.allocation)


@dataclass(frozen=True)
class ExplorationResult:
    """All points of one sweep plus aggregate cache behaviour."""

    points: tuple[ExplorationPoint, ...]

    @property
    def cache_hits(self) -> int:
        return sum(p.cache_hits for p in self.points)

    @property
    def cache_misses(self) -> int:
        return sum(p.cache_misses for p in self.points)

    def circuits(self) -> tuple[str, ...]:
        seen = dict.fromkeys(p.circuit for p in self.points)
        return tuple(seen)

    def for_circuit(self, name: str) -> tuple[ExplorationPoint, ...]:
        return tuple(p for p in self.points if p.circuit == name)

    def best(self, key=None) -> ExplorationPoint:
        """Highest-scoring point (default: datapath power reduction)."""
        if not self.points:
            raise ValueError("empty exploration result")
        return max(self.points,
                   key=key or (lambda p: p.power_reduction_pct))

    def table(self) -> str:
        lines = [f"{'circuit':<10s} {'steps':>5s} {'config':<18s} "
                 f"{'muxes':>5s} {'saved%':>7s} {'area':>6s} {'cache':>7s}"]
        for p in self.points:
            lines.append(
                f"{p.circuit:<10s} {p.n_steps:>5d} {p.config_label:<18s} "
                f"{p.managed_muxes:>5d} {p.power_reduction_pct:>7.2f} "
                f"{p.area:>6d} {p.cache_hits:>3d}/{p.cache_hits + p.cache_misses:<3d}")
        lines.append(f"total stage-cache hits: {self.cache_hits} "
                     f"({self.cache_misses} computed)")
        return "\n".join(lines)


def _as_spec(circuit: str | CDFG) -> tuple[str, object]:
    if isinstance(circuit, str):
        return ("name", circuit)
    if isinstance(circuit, CDFG):
        return ("graph", graph_to_dict(circuit))
    raise TypeError(
        f"circuit must be a registry name or CDFG, got {type(circuit)!r}")


def _load_spec(spec: tuple[str, object]) -> CDFG:
    kind, data = spec
    if kind == "name":
        from repro.circuits import build

        return build(data)
    return graph_from_dict(data)


def _run_point(job: tuple[tuple[str, object], FlowConfig, int],
               ) -> ExplorationPoint:
    spec, config, sim_vectors = job
    graph = _load_spec(spec)
    pipeline = Pipeline(cache=_PROCESS_CACHE)
    ctx = pipeline.run_context(graph, config)
    result = ctx.result
    report = result.static_report()
    simulated = None
    if sim_vectors > 0:
        from repro.power.simulated import compare_designs

        baseline = pipeline.run(graph, config.baseline())
        comparison = compare_designs(baseline.design, result.design,
                                     n_vectors=sim_vectors,
                                     backend=config.sim_backend)
        simulated = comparison.reduction_pct
    return ExplorationPoint(
        circuit=graph.name,
        n_steps=config.n_steps,
        config_label=config.label,
        scheduler=config.scheduler,
        managed_muxes=result.pm.managed_count,
        power_reduction_pct=report.reduction_pct,
        area=result.design.area().total,
        controller_literals=result.design.controller.literal_count,
        allocation=tuple(sorted(result.allocation.as_dict().items())),
        cache_hits=len(ctx.cache_hits),
        cache_misses=len(ctx.cache_misses),
        simulated_reduction_pct=simulated,
    )


def explore(
    circuits: Iterable[str | CDFG],
    budgets: Iterable[int] | Mapping[str, Iterable[int]],
    configs: Sequence[FlowConfig] | None = None,
    workers: int = 1,
    sim_vectors: int = 0,
) -> ExplorationResult:
    """Synthesize every (circuit, budget, config) point of a sweep.

    ``budgets`` is either one list applied to every circuit or a mapping
    ``circuit name -> budgets`` (the paper's per-circuit Table II shape).
    ``configs`` defaults to a single paper-defaults :class:`FlowConfig`;
    each config's ``n_steps`` is overridden per budget.  ``workers > 1``
    distributes points over that many worker processes.  ``sim_vectors >
    0`` additionally simulates every point (baseline vs managed, on the
    compiled batch engine) and fills ``simulated_reduction_pct``.
    """
    configs = tuple(configs) if configs else (FlowConfig(),)
    specs = [_as_spec(c) for c in circuits]
    if not specs:
        raise ValueError("explore() needs at least one circuit")

    jobs: list[tuple[tuple[str, object], FlowConfig, int]] = []
    for spec in specs:
        if isinstance(budgets, Mapping):
            name = spec[1] if spec[0] == "name" else spec[1]["name"]
            circuit_budgets = budgets[name]
        else:
            circuit_budgets = budgets
        for steps in circuit_budgets:
            for config in configs:
                jobs.append((spec, replace(config, n_steps=steps),
                             sim_vectors))

    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            points = list(pool.map(_run_point, jobs))
    else:
        points = [_run_point(job) for job in jobs]
    return ExplorationResult(points=tuple(points))
