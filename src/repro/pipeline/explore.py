"""Batch design-space exploration.

``explore`` runs the full flow over the cross product of circuits x
step budgets x flow configs and returns one summary row per point —
the loop ``paper_tables`` and the ablation benches used to write by
hand.  Points are independent, so with ``workers > 1`` they fan out in
chunks over a :class:`concurrent.futures.ProcessPoolExecutor`.

Three service-grade facilities turn one-shot sweeps into resumable,
shareable jobs:

* **Persistent store** — pass ``store=`` (a
  :class:`~repro.pipeline.store.DiskArtifactCache` or a directory path)
  and every stage artifact is kept on disk, shared across worker
  processes *and* across runs: the second sweep over the same grid is
  served from the store.  Per-point disk hit/miss counts surface on
  :class:`ExplorationPoint` and aggregate on :class:`ExplorationResult`.
  Without a store, each process keeps its in-memory cache, exactly as
  before.

* **Journaled resume** — pass ``resume=`` (a JSONL journal path) and
  every finished point is appended as it completes.  A killed sweep
  rerun with the same journal recomputes only the missing points; each
  job is identified by a stable content key over (circuit spec, config,
  sim_vectors), so grids can also be *extended* and re-run against the
  same journal.

* **Pareto reduction** — ``result.pareto()`` keeps only the points not
  dominated on (area, power, latency).

* **Search-driven exploration** — pass ``search=`` (a driver name or a
  :class:`~repro.opt.search.SearchSpec`) and instead of sweeping the
  fixed grid, each circuit's joint (MUX ordering, budget, scheduler)
  space is *searched* by the :mod:`repro.opt` optimizer; the result has
  one point per circuit: the optimizer-chosen design.  ``budgets`` and
  the configs' schedulers define the space, ``store=`` backs candidate
  evaluation, and ``resume=`` journals evaluations instead of points.

Circuits may be registry names — including parameterized family specs
like ``gen:branchy:42`` — or CDFG objects (serialized to the workers
through the IR's JSON form).

Portability note: runtime ``register_scheduler``/``register_family``
registrations live in this process.  Workers inherit them on fork-start
platforms (Linux); under spawn (macOS/Windows) a custom registration
must happen at import time of a module the workers also import, or the
sweep must run with ``workers=1``.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.ir.graph import CDFG
from repro.ir.serialize import graph_from_dict, graph_to_dict
from repro.opt.journal import (
    JOURNAL_FORMAT,
    append_record,
    load_journal,
    open_journal,
)
from repro.opt.objective import pareto_front
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.config import FlowConfig
from repro.pipeline.engine import Pipeline
from repro.pipeline.store import DiskArtifactCache

# Per-process artifact store.  The parent's cache is inherited by forked
# workers, and repeated explore() calls in one process build on it.
# (With an explicit ``store=`` the disk store is used instead.)
_PROCESS_CACHE = ArtifactCache()


def clear_explore_cache() -> None:
    """Drop this process's exploration cache (mainly for tests)."""
    _PROCESS_CACHE.clear()


@dataclass(frozen=True)
class ExplorationPoint:
    """Summary of one (circuit, budget, config) synthesis run."""

    circuit: str
    n_steps: int
    config_label: str
    scheduler: str
    managed_muxes: int
    power_reduction_pct: float
    area: int
    controller_literals: int
    allocation: tuple[tuple[str, int], ...]
    cache_hits: int
    cache_misses: int
    #: Engine-simulated total power reduction vs the baseline design,
    #: populated when ``explore(..., sim_vectors=N)`` is used.
    simulated_reduction_pct: float | None = None
    #: Disk-store lookups served / computed while synthesizing this
    #: point (0 when no ``store=`` was passed).
    store_hits: int = 0
    store_misses: int = 0
    #: Simulation backend that actually produced
    #: ``simulated_reduction_pct`` (``create_engine`` resolution —
    #: ``auto``/``packed`` requests record what they resolved to);
    #: ``None`` when no simulation ran or for pre-existing journals.
    chosen_backend: str | None = None

    @property
    def allocation_dict(self) -> dict[str, int]:
        return dict(self.allocation)

    # -- journal round trip ----------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible form (the journal record payload)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["allocation"] = [list(pair) for pair in self.allocation]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExplorationPoint":
        known = {f.name for f in fields(cls)}
        kwargs = {name: value for name, value in data.items()
                  if name in known}
        kwargs["allocation"] = tuple(
            (str(unit), int(count)) for unit, count in kwargs["allocation"])
        return cls(**kwargs)


#: Objective extractors for :meth:`ExplorationResult.pareto`; every
#: objective is minimized.  ``power`` prefers the engine-simulated total
#: reduction when present, the static datapath estimate otherwise.
PARETO_OBJECTIVES: dict[str, Callable[[ExplorationPoint], float]] = {
    "area": lambda p: float(p.area),
    "power": lambda p: -(p.simulated_reduction_pct
                         if p.simulated_reduction_pct is not None
                         else p.power_reduction_pct),
    "latency": lambda p: float(p.n_steps),
}


@dataclass(frozen=True)
class ExplorationResult:
    """All points of one sweep plus aggregate cache behaviour."""

    points: tuple[ExplorationPoint, ...]
    #: Points served from the resume journal instead of recomputed.
    resumed: int = 0

    @property
    def cache_hits(self) -> int:
        return sum(p.cache_hits for p in self.points)

    @property
    def cache_misses(self) -> int:
        return sum(p.cache_misses for p in self.points)

    @property
    def store_hits(self) -> int:
        """Disk-store hits across all computed points of the sweep."""
        return sum(p.store_hits for p in self.points)

    @property
    def store_misses(self) -> int:
        return sum(p.store_misses for p in self.points)

    def circuits(self) -> tuple[str, ...]:
        seen = dict.fromkeys(p.circuit for p in self.points)
        return tuple(seen)

    def for_circuit(self, name: str) -> tuple[ExplorationPoint, ...]:
        return tuple(p for p in self.points if p.circuit == name)

    def best(self, key=None) -> ExplorationPoint:
        """Highest-scoring point (default: datapath power reduction)."""
        if not self.points:
            raise ValueError("empty exploration result")
        return max(self.points,
                   key=key or (lambda p: p.power_reduction_pct))

    def pareto(self, objectives: Sequence[str] = ("area", "power", "latency"),
               ) -> "ExplorationResult":
        """The non-dominated front of the sweep.

        A point survives unless some other point is at least as good on
        *every* named objective and strictly better on one.  Objectives
        (all minimized) come from :data:`PARETO_OBJECTIVES`.
        """
        try:
            metrics = [PARETO_OBJECTIVES[name] for name in objectives]
        except KeyError as error:
            raise KeyError(
                f"unknown Pareto objective {error.args[0]!r}; choose from "
                f"{sorted(PARETO_OBJECTIVES)}") from None
        if not metrics:
            raise ValueError("pareto() needs at least one objective")
        front = tuple(pareto_front(
            self.points, key=lambda p: [metric(p) for metric in metrics]))
        return ExplorationResult(points=front, resumed=0)

    def table(self) -> str:
        lines = [f"{'circuit':<10s} {'steps':>5s} {'config':<18s} "
                 f"{'muxes':>5s} {'saved%':>7s} {'area':>6s} {'cache':>7s}"]
        for p in self.points:
            lines.append(
                f"{p.circuit:<10s} {p.n_steps:>5d} {p.config_label:<18s} "
                f"{p.managed_muxes:>5d} {p.power_reduction_pct:>7.2f} "
                f"{p.area:>6d} {p.cache_hits:>3d}/{p.cache_hits + p.cache_misses:<3d}")
        lines.append(f"total stage-cache hits: {self.cache_hits} "
                     f"({self.cache_misses} computed)")
        if self.store_hits or self.store_misses:
            lines.append(f"disk-store hits: {self.store_hits} "
                         f"({self.store_misses} stored)")
        if self.resumed:
            lines.append(f"resumed from journal: {self.resumed} points")
        return "\n".join(lines)


def _as_spec(circuit: str | CDFG) -> tuple[str, object]:
    if isinstance(circuit, str):
        return ("name", circuit)
    if isinstance(circuit, CDFG):
        return ("graph", graph_to_dict(circuit))
    raise TypeError(
        f"circuit must be a registry name or CDFG, got {type(circuit)!r}")


def _load_spec(spec: tuple[str, object]) -> CDFG:
    kind, data = spec
    if kind == "name":
        from repro.circuits import build

        return build(data)
    return graph_from_dict(data)


def job_key(spec: tuple[str, object], config: FlowConfig,
            sim_vectors: int) -> str:
    """Stable content key identifying one job of a sweep.

    The key survives process restarts and grid reordering, which is what
    lets a resume journal skip exactly the work already done.  It covers
    the *full* config repr including ``label`` (which ``FlowConfig``
    equality ignores): two grid configs differing only by label must
    journal as distinct jobs so each point replays under its own label —
    the cost is that renaming a label invalidates that config's journal
    entries.
    """
    payload = json.dumps(
        {"spec": spec, "config": repr(config), "sim_vectors": sim_vectors},
        sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def _run_point(spec: tuple[str, object], config: FlowConfig,
               sim_vectors: int,
               store: DiskArtifactCache | None) -> ExplorationPoint:
    cache = store if store is not None else _PROCESS_CACHE
    hits0 = cache.stats.hits
    misses0 = cache.stats.misses
    graph = _load_spec(spec)
    pipeline = Pipeline(cache=cache)
    ctx = pipeline.run_context(graph, config)
    result = ctx.result
    report = result.static_report()
    simulated = None
    chosen = None
    if sim_vectors > 0:
        from repro.power.simulated import compare_designs

        baseline = pipeline.run(graph, config.baseline())
        comparison = compare_designs(baseline.design, result.design,
                                     n_vectors=sim_vectors,
                                     backend=config.sim_backend)
        simulated = comparison.reduction_pct
        chosen = comparison.managed.chosen_backend
    return ExplorationPoint(
        circuit=graph.name,
        n_steps=config.n_steps,
        config_label=config.label,
        scheduler=config.scheduler,
        managed_muxes=result.pm.managed_count,
        power_reduction_pct=report.reduction_pct,
        area=result.design.area().total,
        controller_literals=result.design.controller.literal_count,
        allocation=tuple(sorted(result.allocation.as_dict().items())),
        cache_hits=len(ctx.cache_hits),
        cache_misses=len(ctx.cache_misses),
        simulated_reduction_pct=simulated,
        store_hits=(cache.stats.hits - hits0) if store is not None else 0,
        store_misses=(cache.stats.misses - misses0)
        if store is not None else 0,
        chosen_backend=chosen,
    )


#: One plannable unit of a sweep: ``(index, job key, circuit spec,
#: config, sim_vectors)``.  ``index`` restores grid order in results.
ExploreJob = tuple[int, str, tuple[str, object], FlowConfig, int]


def run_chunk(job: tuple[DiskArtifactCache | None, list[ExploreJob]],
              ) -> list[tuple[int, str, ExplorationPoint]]:
    """Worker task: one chunk of jobs against one (shared) store.

    Public because chunk-level submission is the unit the job server
    (:mod:`repro.serve`) multiplexes over its persistent worker pool.
    """
    store, chunk = job
    return [(index, key, _run_point(spec, config, sim_vectors, store))
            for index, key, spec, config, sim_vectors in chunk]


def plan_jobs(circuits: Iterable[str | CDFG],
              budgets: Iterable[int] | Mapping[str, Iterable[int]],
              configs: Sequence[FlowConfig] | None = None,
              sim_vectors: int = 0) -> list[ExploreJob]:
    """The full (circuit x budget x config) grid as submittable jobs.

    This is the planning half of :func:`explore`, exposed so callers
    that own their scheduling — the :mod:`repro.serve` job server — can
    plan once, diff against a resume journal, and submit chunks at
    their own pace with :func:`run_chunk`.
    """
    configs = tuple(configs) if configs else (FlowConfig(),)
    specs = [_as_spec(c) for c in circuits]
    if not specs:
        raise ValueError("explore() needs at least one circuit")
    jobs: list[ExploreJob] = []
    for spec in specs:
        if isinstance(budgets, Mapping):
            name = spec[1] if spec[0] == "name" else spec[1]["name"]
            circuit_budgets = budgets[name]
        else:
            circuit_budgets = budgets
        for steps in circuit_budgets:
            for config in configs:
                job_config = replace(config, n_steps=steps)
                jobs.append((len(jobs), job_key(spec, job_config,
                                                sim_vectors),
                             spec, job_config, sim_vectors))
    return jobs


# -- resume journal ------------------------------------------------------


def load_point_journal(path: Path) -> dict[str, ExplorationPoint]:
    """Completed points by job key; tolerates a torn trailing record."""
    completed: dict[str, ExplorationPoint] = {}
    for key, record in load_journal(path).items():
        try:
            completed[key] = ExplorationPoint.from_dict(record["point"])
        except (KeyError, TypeError, ValueError):
            continue
    return completed


def open_point_journal(path: Path, durability: str = "batch"):
    """Append handle for a sweep journal (meta line written when fresh).

    Group-commits by default; pass ``durability="record"`` to fsync
    every point (the serve crash-recovery contract)."""
    return open_journal(path, kind="explore-journal", durability=durability)


def journal_point(handle, key: str, point: ExplorationPoint) -> None:
    """Durably append one finished point under its job key."""
    append_record(handle, key, {"point": point.to_dict()})


# -- the sweep -----------------------------------------------------------


def _search_explore(
    specs: list[tuple[str, object]],
    budgets: Iterable[int] | Mapping[str, Iterable[int]],
    configs: tuple[FlowConfig, ...],
    search,
    sim_vectors: int,
    store: DiskArtifactCache | None,
    resume: str | os.PathLike | None,
    workers: int = 1,
    durability: str = "batch",
) -> ExplorationResult:
    """``explore(search=...)``: one optimizer run + one point per circuit."""
    from repro.opt.search import SearchSpec, optimize

    spec_obj = SearchSpec(driver=search) if isinstance(search, str) \
        else search
    schedulers = tuple(dict.fromkeys(c.scheduler for c in configs))
    base = configs[0]
    points = []
    resumed = 0
    extra: dict[str, object] = {}
    if spec_obj.driver == "portfolio":
        # The island-model driver parallelizes *within* one circuit, so
        # explore's worker count flows through instead of being ignored.
        extra["workers"] = max(1, workers)
    for spec in specs:
        graph = _load_spec(spec)
        if isinstance(budgets, Mapping):
            circuit_budgets = budgets[graph.name]
        else:
            circuit_budgets = budgets
        outcome = optimize(
            graph, spec_obj, budgets=tuple(circuit_budgets),
            schedulers=schedulers, store=store, journal=resume,
            pm_base=base.pm, durability=durability,
            sim_vectors=sim_vectors if sim_vectors > 0 else 128, **extra)
        resumed += outcome.resumed
        config = outcome.flow_config(base)
        points.append(_run_point(spec, config, sim_vectors, store))
    return ExplorationResult(points=tuple(points), resumed=resumed)


def explore(
    circuits: Iterable[str | CDFG],
    budgets: Iterable[int] | Mapping[str, Iterable[int]],
    configs: Sequence[FlowConfig] | None = None,
    workers: int = 1,
    sim_vectors: int = 0,
    store: DiskArtifactCache | str | os.PathLike | None = None,
    resume: str | os.PathLike | None = None,
    chunk_size: int | None = None,
    search=None,
    progress: Callable[[ExplorationPoint], None] | None = None,
    durability: str = "batch",
) -> ExplorationResult:
    """Synthesize every (circuit, budget, config) point of a sweep.

    ``budgets`` is either one list applied to every circuit or a mapping
    ``circuit name -> budgets`` (the paper's per-circuit Table II shape).
    ``configs`` defaults to a single paper-defaults :class:`FlowConfig`;
    each config's ``n_steps`` is overridden per budget.  ``workers > 1``
    distributes job chunks over that many worker processes
    (``chunk_size`` jobs per task; default balances ~4 chunks per
    worker).  ``sim_vectors > 0`` additionally simulates every point
    (baseline vs managed, on the batch engine) and fills
    ``simulated_reduction_pct``.

    ``store`` (a :class:`DiskArtifactCache` or a directory path) makes
    stage artifacts persistent and shared across workers and runs;
    ``resume`` (a JSONL path) journals finished points and skips them on
    re-runs.  See the module docstring for the semantics of both.

    ``search`` (an :mod:`repro.opt` driver name or
    :class:`~repro.opt.search.SearchSpec`) switches from sweeping the
    grid to *searching* it: per circuit, the optimizer explores the
    joint (MUX ordering, budget, scheduler) space — budgets from
    ``budgets``, schedulers from ``configs``, other config fields from
    ``configs[0]`` — and the result holds the single optimizer-chosen
    point per circuit.  In search mode single-chain drivers run
    sequentially (``workers``/``chunk_size`` are ignored), while
    ``search="portfolio"`` parallelizes *within* each circuit across
    ``workers`` island processes; ``store=`` additionally backs
    candidate evaluation, ``resume=`` journals evaluations rather than
    finished points, and ``result.resumed`` counts evaluations replayed
    from that journal.

    ``durability`` sets the resume journal's fsync policy: ``"batch"``
    (default) group-commits; ``"record"`` fsyncs every record, as the
    serve crash-recovery path requires.

    ``progress`` (grid mode only) is called in the submitting process
    with every :class:`ExplorationPoint` as it becomes available —
    journal-resumed points first, then computed points in completion
    order — which is what lets a caller stream incremental results
    instead of waiting for the sweep to finish.
    """
    if isinstance(store, (str, os.PathLike)):
        store = DiskArtifactCache(store)
    if search is not None:
        configs = tuple(configs) if configs else (FlowConfig(),)
        specs = [_as_spec(c) for c in circuits]
        if not specs:
            raise ValueError("explore() needs at least one circuit")
        return _search_explore(specs, budgets, configs, search,
                               sim_vectors, store, resume,
                               workers=workers, durability=durability)

    jobs = plan_jobs(circuits, budgets, configs, sim_vectors)

    def announce(point: ExplorationPoint) -> None:
        if progress is not None:
            progress(point)

    points: dict[int, ExplorationPoint] = {}
    completed = load_point_journal(Path(resume)) if resume is not None else {}
    pending = []
    for index, key, spec, config, n_sim in jobs:
        if key in completed:
            points[index] = completed[key]
            announce(completed[key])
        else:
            pending.append((index, key, spec, config, n_sim))
    resumed = len(jobs) - len(pending)

    journal = open_point_journal(Path(resume), durability=durability) \
        if resume is not None else None
    try:
        if workers > 1 and len(pending) > 1:
            if chunk_size is None:
                chunk_size = max(1, -(-len(pending) // (workers * 4)))
            chunks = [pending[i:i + chunk_size]
                      for i in range(0, len(pending), chunk_size)]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(run_chunk, (store, chunk))
                           for chunk in chunks]
                for future in as_completed(futures):
                    for index, key, point in future.result():
                        points[index] = point
                        if journal is not None:
                            journal_point(journal, key, point)
                        announce(point)
        else:
            for index, key, spec, config, n_sim in pending:
                point = _run_point(spec, config, n_sim, store)
                points[index] = point
                if journal is not None:
                    journal_point(journal, key, point)
                announce(point)
    finally:
        if journal is not None:
            journal.close()

    return ExplorationResult(
        points=tuple(points[index] for index in sorted(points)),
        resumed=resumed)
