"""Scheduler-strategy registry.

The schedule stage looks its strategy up by name from
:attr:`FlowConfig.scheduler`.  The three built-in strategies cover the
repo's schedulers; third parties register their own with
:func:`register_scheduler` and select them the same way — the registry is
what makes the base scheduler a configuration axis instead of a code
change (cf. the paper's claim that the PM pass composes with any
resource-minimizing time-constrained scheduler).

A strategy is ``fn(graph, config) -> (Schedule, Allocation)`` where
``graph`` is the (possibly PM-augmented) CDFG to schedule.
"""

from __future__ import annotations

from typing import Callable

from repro.ir.graph import CDFG
from repro.pipeline.config import FlowConfig
from repro.sched.resources import Allocation
from repro.sched.schedule import Schedule

SchedulerStrategy = Callable[[CDFG, FlowConfig], tuple[Schedule, Allocation]]

_SCHEDULERS: dict[str, SchedulerStrategy] = {}
_II_CAPABLE: set[str] = set()


class UnknownSchedulerError(KeyError):
    """``FlowConfig.scheduler`` named a strategy nobody registered."""


def register_scheduler(name: str,
                       fn: SchedulerStrategy | None = None,
                       *, supports_ii: bool = False):
    """Register a strategy under ``name`` (usable as a decorator).

    Re-registering a name replaces the previous strategy, so tests and
    downstream packages can override the built-ins.  ``supports_ii``
    declares that the strategy honours
    :attr:`FlowConfig.initiation_interval`; strategies that do not should
    reject pipelined configs with :func:`reject_initiation_interval`, so
    the error always names the capable alternatives.
    """
    def _register(strategy: SchedulerStrategy) -> SchedulerStrategy:
        _SCHEDULERS[name] = strategy
        if supports_ii:
            _II_CAPABLE.add(name)
        else:
            _II_CAPABLE.discard(name)
        return strategy

    return _register(fn) if fn is not None else _register


def unregister_scheduler(name: str) -> None:
    _SCHEDULERS.pop(name, None)
    _II_CAPABLE.discard(name)


def get_scheduler(name: str) -> SchedulerStrategy:
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise UnknownSchedulerError(
            f"unknown scheduler strategy {name!r}; registered: "
            f"{', '.join(available_schedulers())}") from None


def available_schedulers() -> tuple[str, ...]:
    return tuple(sorted(_SCHEDULERS))


def ii_capable_schedulers() -> tuple[str, ...]:
    """Strategies that honour ``FlowConfig.initiation_interval``."""
    return tuple(sorted(_II_CAPABLE))


def supports_initiation_interval(name: str) -> bool:
    return name in _II_CAPABLE


def reject_initiation_interval(name: str) -> None:
    """Raise the canonical error for a non-pipelining strategy handed an
    ``initiation_interval`` — always listing the capable alternatives, so
    the message cannot rot as strategies come and go."""
    capable = ", ".join(repr(n) for n in ii_capable_schedulers())
    raise ValueError(
        f"the {name!r} scheduler does not support pipelining; drop "
        f"initiation_interval or use an II-capable strategy ({capable})")


@register_scheduler("list", supports_ii=True)
def _list_strategy(graph: CDFG, config: FlowConfig):
    """List scheduling inside the minimum-resource search (the default;
    this is the paper's step 11)."""
    from repro.sched.minimize import minimize_resources

    found = minimize_resources(
        graph, config.require_steps(),
        initiation_interval=config.initiation_interval)
    return found.schedule, found.allocation


@register_scheduler("force_directed")
def _force_directed_strategy(graph: CDFG, config: FlowConfig):
    """Force-directed scheduling (Paulin & Knight)."""
    from repro.sched.force_directed import force_directed_schedule

    if config.initiation_interval is not None:
        reject_initiation_interval("force_directed")
    schedule = force_directed_schedule(graph, config.require_steps())
    return schedule, schedule.resource_usage()


@register_scheduler("exact")
def _exact_strategy(graph: CDFG, config: FlowConfig):
    """Provably minimum-cost branch-and-bound schedule (small graphs)."""
    from repro.sched.exact import exact_minimum_schedule

    if config.initiation_interval is not None:
        reject_initiation_interval("exact")
    found = exact_minimum_schedule(graph, config.require_steps())
    return found.schedule, found.allocation


@register_scheduler("pipeline", supports_ii=True)
def _pipeline_strategy(graph: CDFG, config: FlowConfig):
    """Iterative modulo scheduling with II minimization (paper §IV-B).

    ``config.initiation_interval`` is an *upper bound*: the strategy
    searches down from it toward MII and returns the smallest feasible
    II (never worse than the ceil-division list schedule).  When unset,
    the cap is the step budget itself — an unpipelined incumbent the
    search then tries to overlap.
    """
    from repro.sched.modulo import minimize_initiation_interval

    found = minimize_initiation_interval(
        graph, config.require_steps(), max_ii=config.initiation_interval)
    return found.schedule, found.allocation
