"""The pipeline driver.

``Pipeline`` owns an ordered stage list (wired and checked at
construction) and an optional :class:`ArtifactCache`.  ``run`` executes
the stages against a fresh :class:`FlowContext`; cacheable stages whose
(fingerprint, config-subset) key is warm are spliced in from the cache
instead of recomputed.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.ir.graph import CDFG
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.config import FlowConfig
from repro.pipeline.context import FlowContext
from repro.pipeline.result import SynthesisPair, SynthesisResult
from repro.pipeline.stages import Stage, StageError, default_stages


class PipelineWiringError(Exception):
    """A stage list whose artifact dataflow cannot work."""


class Pipeline:
    """An ordered, introspectable sequence of synthesis stages."""

    def __init__(self, stages: Iterable[Stage] | None = None,
                 cache: ArtifactCache | None = None) -> None:
        self.stages: tuple[Stage, ...] = (
            tuple(stages) if stages is not None else default_stages())
        self.cache = cache
        self._check_wiring()

    def _check_wiring(self) -> None:
        seen: set[str] = set()
        available: set[str] = set()
        for stage in self.stages:
            if not stage.name:
                raise PipelineWiringError(
                    f"stage {stage!r} has no name")
            if stage.name in seen:
                raise PipelineWiringError(
                    f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)
            missing = [r for r in stage.requires if r not in available]
            if missing:
                raise PipelineWiringError(
                    f"stage {stage.name!r} requires {missing} but earlier "
                    f"stages only provide {sorted(available)}")
            available.update(stage.provides)

    # -- introspection ---------------------------------------------------

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(
            f"no stage named {name!r}; have {list(self.stage_names)}")

    def describe(self) -> str:
        """Human-readable wiring table: stage, requires -> provides."""
        header = (f"{'stage':<14s} {'requires':<24s}    "
                  f"{'provides':<22s} caching")
        return "\n".join([header] + [s.describe() for s in self.stages])

    # -- execution -------------------------------------------------------

    def run_context(self, graph: CDFG, config: FlowConfig) -> FlowContext:
        """Run every stage; return the full artifact store."""
        config.require_steps()
        ctx = FlowContext(graph=graph, config=config)
        for stage in self.stages:
            self._run_stage(stage, ctx)
        return ctx

    def run(self, graph: CDFG, config: FlowConfig) -> SynthesisResult:
        """Run the flow and return its final ``result`` artifact.

        Use :meth:`run_context` instead for custom pipelines that do not
        end in a report stage.
        """
        ctx = self.run_context(graph, config)
        if not ctx.has("result"):
            raise StageError(
                "pipeline produced no 'result' artifact; add a ReportStage "
                "or use run_context()")
        return ctx.result

    def run_many(self, jobs: Sequence[tuple[CDFG, FlowConfig]],
                 ) -> list[FlowContext]:
        """Run several (graph, config) jobs through this one pipeline.

        Sequential — cache reuse across jobs is the point.  For process
        parallelism over a design space use :func:`repro.pipeline.explore`.
        """
        return [self.run_context(graph, config) for graph, config in jobs]

    def _run_stage(self, stage: Stage, ctx: FlowContext) -> None:
        use_cache = self.cache is not None and stage.cacheable
        key = stage.cache_key(ctx) if use_cache else None
        if use_cache:
            cached = self.cache.lookup(key)
            if cached is not None:
                for name, value in cached.items():
                    ctx.put(name, value, stage.name)
                ctx.cache_hits.append(stage.name)
                ctx.stage_seconds[stage.name] = 0.0
                return
        started = time.perf_counter()
        produced = stage.run(ctx)
        ctx.stage_seconds[stage.name] = time.perf_counter() - started
        if set(produced) != set(stage.provides):
            raise StageError(
                f"stage {stage.name!r} returned artifacts "
                f"{sorted(produced)} but declared {sorted(stage.provides)}")
        for name, value in produced.items():
            ctx.put(name, value, stage.name)
        if use_cache:
            self.cache.store(key, produced)
            ctx.cache_misses.append(stage.name)


def run_flow(graph: CDFG, config: FlowConfig,
             pipeline: Pipeline | None = None) -> SynthesisResult:
    """One-shot convenience: run the default pipeline on one config."""
    return (pipeline or Pipeline()).run(graph, config)


def run_pair(graph: CDFG, config: FlowConfig,
             pipeline: Pipeline | None = None) -> SynthesisPair:
    """Synthesize the baseline and power-managed designs of one config.

    With a caching pipeline the two runs share the config-independent
    stages (validate/analyze), which is the Table II/III access pattern.
    """
    pipeline = pipeline or Pipeline(cache=ArtifactCache())
    baseline = pipeline.run(graph, config.baseline())
    managed = pipeline.run(graph, config)
    return SynthesisPair(baseline=baseline, managed=managed)
