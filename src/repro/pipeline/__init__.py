"""Composable synthesis pipeline: the public flow API.

Quick start::

    from repro.pipeline import FlowConfig, Pipeline

    result = Pipeline().run(gcd(), FlowConfig(n_steps=7))

Sweeps::

    from repro.pipeline import explore

    space = explore(["dealer", "gcd", "vender"], budgets=[5, 6, 7])
    print(space.table())
"""

from repro.pipeline.cache import ArtifactCache, CacheStats, graph_fingerprint
from repro.pipeline.config import FlowConfig
from repro.pipeline.context import FlowContext, MissingArtifactError
from repro.pipeline.engine import (
    Pipeline,
    PipelineWiringError,
    run_flow,
    run_pair,
)
from repro.pipeline.explore import (
    PARETO_OBJECTIVES,
    ExplorationPoint,
    ExplorationResult,
    clear_explore_cache,
    explore,
    job_key,
    journal_point,
    load_point_journal,
    open_point_journal,
    plan_jobs,
    run_chunk,
)
from repro.pipeline.index import IndexedArtifactStore
from repro.pipeline.registry import (
    UnknownSchedulerError,
    available_schedulers,
    get_scheduler,
    ii_capable_schedulers,
    register_scheduler,
    supports_initiation_interval,
    unregister_scheduler,
)
from repro.pipeline.result import SynthesisPair, SynthesisResult
from repro.pipeline.store import DiskArtifactCache, StageStore
from repro.pipeline.stages import (
    AllocateStage,
    AnalyzeStage,
    ElaborateStage,
    PowerManageStage,
    ReportStage,
    ScheduleStage,
    Stage,
    StageError,
    ValidateStage,
    VerifyStage,
    default_stages,
)

__all__ = [
    "AllocateStage",
    "AnalyzeStage",
    "ArtifactCache",
    "CacheStats",
    "DiskArtifactCache",
    "ElaborateStage",
    "ExplorationPoint",
    "ExplorationResult",
    "FlowConfig",
    "FlowContext",
    "IndexedArtifactStore",
    "MissingArtifactError",
    "PARETO_OBJECTIVES",
    "Pipeline",
    "PipelineWiringError",
    "PowerManageStage",
    "ReportStage",
    "ScheduleStage",
    "Stage",
    "StageError",
    "StageStore",
    "SynthesisPair",
    "SynthesisResult",
    "UnknownSchedulerError",
    "ValidateStage",
    "VerifyStage",
    "available_schedulers",
    "clear_explore_cache",
    "default_stages",
    "explore",
    "get_scheduler",
    "graph_fingerprint",
    "ii_capable_schedulers",
    "job_key",
    "journal_point",
    "load_point_journal",
    "open_point_journal",
    "plan_jobs",
    "register_scheduler",
    "run_chunk",
    "run_flow",
    "run_pair",
    "supports_initiation_interval",
    "unregister_scheduler",
]
