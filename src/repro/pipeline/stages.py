"""The named stages of the synthesis flow.

Each stage is a small class declaring the artifacts it consumes
(``requires``), the artifacts it publishes (``provides``), and the
:class:`~repro.pipeline.FlowConfig` fields its output depends on
(``config_fields`` — the basis of its cache key).  The default pipeline
runs them in the paper's order::

    validate -> analyze -> power_manage -> schedule -> allocate
             -> elaborate -> verify -> report

Splitting the flow this way keeps every stage independently cacheable
and replaceable: swapping the scheduler is a config change, and a custom
stage only has to honour the artifact contract.
"""

from __future__ import annotations

from repro.pipeline.context import FlowContext
from repro.pipeline.registry import get_scheduler
from repro.pipeline.result import SynthesisResult


class StageError(Exception):
    """A stage broke its artifact contract."""


class Stage:
    """Base class: one named, introspectable step of the flow.

    Subclasses override :meth:`run` to return a dict with exactly the
    keys named in ``provides``.  ``cacheable`` stages must be pure
    functions of the input graph plus their ``config_fields``.
    """

    name: str = ""
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    config_fields: tuple[str, ...] = ()
    cacheable: bool = False

    def run(self, ctx: FlowContext) -> dict[str, object]:
        raise NotImplementedError

    def cache_key(self, ctx: FlowContext) -> tuple:
        return (self.name, ctx.fingerprint,
                ctx.config.cache_key(self.config_fields))

    def describe(self) -> str:
        requires = ", ".join(self.requires) or "-"
        provides = ", ".join(self.provides) or "-"
        return (f"{self.name:<14s} {requires:<24s} -> {provides:<22s} "
                f"[{'cached' if self.cacheable else 'always'}]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def effective_pm(ctx: FlowContext):
    """The PM result downstream stages should build on: the schedule
    stage's overlap-adjusted one when the run is pipelined (identical to
    the original outside ``pipelined_gating="drop"``), else the PM pass
    output itself."""
    report = ctx.get("pipelined_gating") if ctx.has("pipelined_gating") \
        else None
    return report.adjusted if report is not None else ctx.get("pm")


class ValidateStage(Stage):
    """Structural well-formedness of the input CDFG."""

    name = "validate"
    provides = ("validated",)

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.ir.validate import validate

        validate(ctx.graph)
        return {"validated": True}


class AnalyzeStage(Stage):
    """Circuit statistics (Table I numbers) for reports and exploration."""

    name = "analyze"
    provides = ("stats",)
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.analysis.stats import circuit_stats

        return {"stats": circuit_stats(ctx.graph)}


class PowerManageStage(Stage):
    """The paper's Figure-3 PM pass: commit control edges per MUX."""

    name = "power_manage"
    provides = ("pm",)
    config_fields = ("n_steps", "pm")
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.core.pm_pass import apply_power_management

        pm = apply_power_management(ctx.graph, ctx.config.require_steps(),
                                    ctx.config.pm_options)
        return {"pm": pm}


class ScheduleStage(Stage):
    """Resource-minimizing scheduling via the registered strategy.

    For pipelined schedules (an II on the result) this stage also
    re-checks every PM gating decision against the overlap condition
    (see :mod:`repro.core.pipelined_gating`) and publishes the analysis
    as the ``pipelined_gating`` artifact — ``None`` when unpipelined.
    """

    name = "schedule"
    requires = ("pm",)
    provides = ("schedule", "allocation", "pipelined_gating")
    # "pm" options shape the augmented graph this stage schedules, so
    # they are part of the key even though the stage reads them only
    # through the pm artifact.
    config_fields = ("n_steps", "pm", "scheduler", "initiation_interval",
                     "pipelined_gating")
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        strategy = get_scheduler(ctx.config.scheduler)
        pm = ctx.get("pm")
        schedule, allocation = strategy(pm.graph, ctx.config)
        gating = None
        if schedule.initiation_interval \
                and schedule.initiation_interval < schedule.n_steps:
            from repro.core.pipelined_gating import analyze_pipelined_gating

            gating = analyze_pipelined_gating(
                pm, schedule, mode=ctx.config.pipelined_gating)
        return {"schedule": schedule, "allocation": allocation,
                "pipelined_gating": gating}


class AllocateStage(Stage):
    """Bind operations to units and values to registers."""

    name = "allocate"
    requires = ("schedule",)
    provides = ("binding", "registers")
    config_fields = ("n_steps", "pm", "scheduler", "initiation_interval",
                     "mutex_sharing")
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.alloc.fu_binding import bind_operations
        from repro.alloc.register_alloc import allocate_registers

        schedule = ctx.get("schedule")
        binding = bind_operations(schedule,
                                  mutex_sharing=ctx.config.mutex_sharing)
        registers = allocate_registers(schedule)
        return {"binding": binding, "registers": registers}


class ElaborateStage(Stage):
    """Interconnect, guards, FSM controller: the finished RTL design.

    Elaborates from the overlap-adjusted PM result when the schedule is
    pipelined, so ``pipelined_gating="drop"`` actually removes the broken
    guards from the controller.
    """

    name = "elaborate"
    requires = ("pm", "schedule", "binding", "registers",
                "pipelined_gating")
    provides = ("design",)
    config_fields = ("n_steps", "pm", "scheduler", "initiation_interval",
                     "pipelined_gating", "mutex_sharing", "width")
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.rtl.design import elaborate

        design = elaborate(effective_pm(ctx), ctx.get("schedule"),
                           width=ctx.config.width,
                           binding=ctx.get("binding"),
                           registers=ctx.get("registers"))
        return {"design": design}


class VerifyStage(Stage):
    """Soundness checks (when ``config.verify``): the structural gating
    argument plus a functional differential — the compiled batch engine
    runs the elaborated design against the reference model on a seeded
    vector set, with power management on and off."""

    name = "verify"
    requires = ("pm", "design", "pipelined_gating")
    provides = ("verified",)

    #: Vectors simulated per power-management mode by the functional check.
    n_check_vectors = 16

    def run(self, ctx: FlowContext) -> dict[str, object]:
        if not ctx.config.verify:
            return {"verified": False}
        from repro.analysis.verify_gating import verify_gating
        from repro.sim.backend import create_engine
        from repro.sim.reference import evaluate
        from repro.sim.vectors import random_vectors

        verify_gating(effective_pm(ctx))
        design = ctx.get("design")
        vectors = random_vectors(ctx.graph, self.n_check_vectors,
                                 width=design.width, seed=1996)
        expected = [evaluate(ctx.graph, v, width=design.width)
                    for v in vectors]
        for pm in (True, False):
            engine = create_engine(design, power_management=pm,
                                   backend=ctx.config.sim_backend)
            outputs, _ = engine.run_many(vectors)
            if outputs != expected:
                raise StageError(
                    f"design {design.name!r} diverges from the reference "
                    f"model (power_management={pm})")
        return {"verified": True}


class ReportStage(Stage):
    """Assemble the public :class:`SynthesisResult`.

    ``result.pm`` is the PM result the design was elaborated from (the
    overlap-adjusted one for pipelined ``drop``-mode runs), so static
    power reports agree with the controller's actual guards.
    """

    name = "report"
    requires = ("pm", "schedule", "design", "pipelined_gating")
    provides = ("result",)

    def run(self, ctx: FlowContext) -> dict[str, object]:
        return {"result": SynthesisResult(
            design=ctx.get("design"),
            pm=effective_pm(ctx),
            schedule=ctx.get("schedule"),
            pipelined_gating=ctx.get("pipelined_gating"))}


def default_stages() -> tuple[Stage, ...]:
    """The full flow in its canonical order."""
    return (ValidateStage(), AnalyzeStage(), PowerManageStage(),
            ScheduleStage(), AllocateStage(), ElaborateStage(),
            VerifyStage(), ReportStage())
