"""The named stages of the synthesis flow.

Each stage is a small class declaring the artifacts it consumes
(``requires``), the artifacts it publishes (``provides``), and the
:class:`~repro.pipeline.FlowConfig` fields its output depends on
(``config_fields`` — the basis of its cache key).  The default pipeline
runs them in the paper's order::

    validate -> analyze -> power_manage -> schedule -> allocate
             -> elaborate -> verify -> report

Splitting the flow this way keeps every stage independently cacheable
and replaceable: swapping the scheduler is a config change, and a custom
stage only has to honour the artifact contract.
"""

from __future__ import annotations

from repro.pipeline.context import FlowContext
from repro.pipeline.registry import get_scheduler
from repro.pipeline.result import SynthesisResult


class StageError(Exception):
    """A stage broke its artifact contract."""


class Stage:
    """Base class: one named, introspectable step of the flow.

    Subclasses override :meth:`run` to return a dict with exactly the
    keys named in ``provides``.  ``cacheable`` stages must be pure
    functions of the input graph plus their ``config_fields``.
    """

    name: str = ""
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    config_fields: tuple[str, ...] = ()
    cacheable: bool = False

    def run(self, ctx: FlowContext) -> dict[str, object]:
        raise NotImplementedError

    def cache_key(self, ctx: FlowContext) -> tuple:
        return (self.name, ctx.fingerprint,
                ctx.config.cache_key(self.config_fields))

    def describe(self) -> str:
        requires = ", ".join(self.requires) or "-"
        provides = ", ".join(self.provides) or "-"
        return (f"{self.name:<14s} {requires:<24s} -> {provides:<22s} "
                f"[{'cached' if self.cacheable else 'always'}]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ValidateStage(Stage):
    """Structural well-formedness of the input CDFG."""

    name = "validate"
    provides = ("validated",)

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.ir.validate import validate

        validate(ctx.graph)
        return {"validated": True}


class AnalyzeStage(Stage):
    """Circuit statistics (Table I numbers) for reports and exploration."""

    name = "analyze"
    provides = ("stats",)
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.analysis.stats import circuit_stats

        return {"stats": circuit_stats(ctx.graph)}


class PowerManageStage(Stage):
    """The paper's Figure-3 PM pass: commit control edges per MUX."""

    name = "power_manage"
    provides = ("pm",)
    config_fields = ("n_steps", "pm")
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.core.pm_pass import apply_power_management

        pm = apply_power_management(ctx.graph, ctx.config.require_steps(),
                                    ctx.config.pm_options)
        return {"pm": pm}


class ScheduleStage(Stage):
    """Resource-minimizing scheduling via the registered strategy."""

    name = "schedule"
    requires = ("pm",)
    provides = ("schedule", "allocation")
    # "pm" options shape the augmented graph this stage schedules, so
    # they are part of the key even though the stage reads them only
    # through the pm artifact.
    config_fields = ("n_steps", "pm", "scheduler", "initiation_interval")
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        strategy = get_scheduler(ctx.config.scheduler)
        schedule, allocation = strategy(ctx.get("pm").graph, ctx.config)
        return {"schedule": schedule, "allocation": allocation}


class AllocateStage(Stage):
    """Bind operations to units and values to registers."""

    name = "allocate"
    requires = ("schedule",)
    provides = ("binding", "registers")
    config_fields = ("n_steps", "pm", "scheduler", "initiation_interval",
                     "mutex_sharing")
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.alloc.fu_binding import bind_operations
        from repro.alloc.register_alloc import allocate_registers

        schedule = ctx.get("schedule")
        binding = bind_operations(schedule,
                                  mutex_sharing=ctx.config.mutex_sharing)
        registers = allocate_registers(schedule)
        return {"binding": binding, "registers": registers}


class ElaborateStage(Stage):
    """Interconnect, guards, FSM controller: the finished RTL design."""

    name = "elaborate"
    requires = ("pm", "schedule", "binding", "registers")
    provides = ("design",)
    config_fields = ("n_steps", "pm", "scheduler", "initiation_interval",
                     "mutex_sharing", "width")
    cacheable = True

    def run(self, ctx: FlowContext) -> dict[str, object]:
        from repro.rtl.design import elaborate

        design = elaborate(ctx.get("pm"), ctx.get("schedule"),
                           width=ctx.config.width,
                           binding=ctx.get("binding"),
                           registers=ctx.get("registers"))
        return {"design": design}


class VerifyStage(Stage):
    """Soundness checks (when ``config.verify``): the structural gating
    argument plus a functional differential — the compiled batch engine
    runs the elaborated design against the reference model on a seeded
    vector set, with power management on and off."""

    name = "verify"
    requires = ("pm", "design")
    provides = ("verified",)

    #: Vectors simulated per power-management mode by the functional check.
    n_check_vectors = 16

    def run(self, ctx: FlowContext) -> dict[str, object]:
        if not ctx.config.verify:
            return {"verified": False}
        from repro.analysis.verify_gating import verify_gating
        from repro.sim.backend import create_engine
        from repro.sim.reference import evaluate
        from repro.sim.vectors import random_vectors

        verify_gating(ctx.get("pm"))
        design = ctx.get("design")
        vectors = random_vectors(ctx.graph, self.n_check_vectors,
                                 width=design.width, seed=1996)
        expected = [evaluate(ctx.graph, v, width=design.width)
                    for v in vectors]
        for pm in (True, False):
            engine = create_engine(design, power_management=pm,
                                   backend=ctx.config.sim_backend)
            outputs, _ = engine.run_many(vectors)
            if outputs != expected:
                raise StageError(
                    f"design {design.name!r} diverges from the reference "
                    f"model (power_management={pm})")
        return {"verified": True}


class ReportStage(Stage):
    """Assemble the public :class:`SynthesisResult`."""

    name = "report"
    requires = ("pm", "schedule", "design")
    provides = ("result",)

    def run(self, ctx: FlowContext) -> dict[str, object]:
        return {"result": SynthesisResult(design=ctx.get("design"),
                                          pm=ctx.get("pm"),
                                          schedule=ctx.get("schedule"))}


def default_stages() -> tuple[Stage, ...]:
    """The full flow in its canonical order."""
    return (ValidateStage(), AnalyzeStage(), PowerManageStage(),
            ScheduleStage(), AllocateStage(), ElaborateStage(),
            VerifyStage(), ReportStage())
