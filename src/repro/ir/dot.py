"""Graphviz DOT export for CDFGs and schedules (paper Figs. 1 and 2 style).

Data edges are solid; control edges (the PM pass's added precedence) are
dashed, matching the dashed arrows of paper Fig. 2(b).
"""

from __future__ import annotations

from repro.ir.graph import CDFG
from repro.ir.ops import Op

_SHAPES = {
    Op.INPUT: "ellipse",
    Op.OUTPUT: "ellipse",
    Op.CONST: "plaintext",
    Op.MUX: "trapezium",
}


def to_dot(graph: CDFG, schedule: dict[int, int] | None = None) -> str:
    """Render the CDFG as DOT.  If ``schedule`` (node id -> control step) is
    given, nodes are ranked into one cluster per control step, mirroring the
    paper's figures."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    by_step: dict[int, list[int]] = {}
    for node in graph:
        shape = _SHAPES.get(node.op, "box")
        label = node.label().replace('"', r"\"")
        if schedule and node.nid in schedule:
            step = schedule[node.nid]
            label += f"\\nstep {step + 1}"
            by_step.setdefault(step, []).append(node.nid)
        lines.append(f'  n{node.nid} [label="{label}", shape={shape}];')
    for node in graph:
        for pos, producer in enumerate(node.operands):
            attrs = ""
            if node.op is Op.MUX:
                port = ["sel", "0", "1"][pos]
                attrs = f' [label="{port}"]'
            lines.append(f"  n{producer} -> n{node.nid}{attrs};")
    for src, dst in graph.control_edges():
        lines.append(f"  n{src} -> n{dst} [style=dashed, color=red];")
    for step in sorted(by_step):
        same = "; ".join(f"n{nid}" for nid in by_step[step])
        lines.append(f"  {{ rank=same; {same}; }}")
    lines.append("}")
    return "\n".join(lines) + "\n"
