"""Operation types for CDFG nodes.

The paper's circuits are built from five resource classes (Table I):
multiplexors (MUX), comparators (COMP), adders (+), subtractors (-) and
multipliers (*).  In addition the IR carries structural node kinds (inputs,
outputs, constants) and zero-latency wiring operations (constant shifts,
pass-throughs) which do not occupy a control step and are not counted as
operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.Enum):
    """Every operation a CDFG node can perform."""

    # Structural.
    INPUT = "input"
    OUTPUT = "output"
    CONST = "const"

    # Arithmetic (one control step each, per the paper).
    ADD = "+"
    SUB = "-"
    MUL = "*"

    # Comparisons (all map to the COMP resource class).
    GT = ">"
    LT = "<"
    GE = ">="
    LE = "<="
    EQ = "=="
    NE = "!="

    # Selection: operands are [select, in0, in1]; select==0 routes in0.
    MUX = "mux"

    # Bitwise logic (scheduled like comparators on a LOGIC unit).
    AND = "&"
    OR = "|"
    XOR = "^"
    NOT = "~"

    # Zero-latency wiring: shift by a constant amount, sign negation wiring
    # is NOT free (NEG is implemented as 0 - x and must be built that way).
    SHL = "<<"
    SHR = ">>"
    PASS = "pass"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op.{self.name}"


class ResourceClass(enum.Enum):
    """Hardware execution-unit class an operation is mapped onto.

    These are the five columns of the paper's Tables I and II plus a LOGIC
    class for bitwise operations (not used by the paper's circuits but
    supported by the language frontend).
    """

    MUX = "MUX"
    COMP = "COMP"
    ADD = "+"
    SUB = "-"
    MUL = "*"
    LOGIC = "LOGIC"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResourceClass.{self.name}"


_COMPARISONS = frozenset({Op.GT, Op.LT, Op.GE, Op.LE, Op.EQ, Op.NE})
_LOGIC = frozenset({Op.AND, Op.OR, Op.XOR, Op.NOT})
_WIRING = frozenset({Op.SHL, Op.SHR, Op.PASS})
_STRUCTURAL = frozenset({Op.INPUT, Op.OUTPUT, Op.CONST})

_RESOURCE_OF = {
    Op.ADD: ResourceClass.ADD,
    Op.SUB: ResourceClass.SUB,
    Op.MUL: ResourceClass.MUL,
    Op.MUX: ResourceClass.MUX,
    **{op: ResourceClass.COMP for op in _COMPARISONS},
    **{op: ResourceClass.LOGIC for op in _LOGIC},
}

_ARITY = {
    Op.INPUT: 0,
    Op.CONST: 0,
    Op.OUTPUT: 1,
    Op.NOT: 1,
    Op.PASS: 1,
    Op.MUX: 3,
}
# Everything else is binary.

_COMMUTATIVE = frozenset({Op.ADD, Op.MUL, Op.EQ, Op.NE, Op.AND, Op.OR, Op.XOR})


def is_comparison(op: Op) -> bool:
    """True for the six relational operators (COMP resource class)."""
    return op in _COMPARISONS


def is_structural(op: Op) -> bool:
    """True for INPUT/OUTPUT/CONST nodes (graph boundary, not hardware)."""
    return op in _STRUCTURAL


def is_wiring(op: Op) -> bool:
    """True for zero-latency operations realized as wiring (shifts, pass)."""
    return op in _WIRING


def is_schedulable(op: Op) -> bool:
    """True if the operation occupies a control step and an execution unit."""
    return not is_structural(op) and not is_wiring(op)


def is_commutative(op: Op) -> bool:
    """True if operand order does not affect the result."""
    return op in _COMMUTATIVE


def arity(op: Op) -> int:
    """Number of operands the operation requires."""
    return _ARITY.get(op, 2)


def resource_class(op: Op) -> ResourceClass | None:
    """Execution-unit class for a schedulable op, None for others."""
    return _RESOURCE_OF.get(op)


def default_latency(op: Op) -> int:
    """Control steps the operation occupies (paper: one per operation)."""
    return 1 if is_schedulable(op) else 0


@dataclass(frozen=True)
class OpSemantics:
    """Bit-true evaluation semantics for a fixed-width two's complement
    datapath.  ``width`` bits; values are Python ints reduced into
    [-(2**(w-1)), 2**(w-1)-1] after every operation, matching the wrap-around
    behaviour of the paper's 8-bit datapath.
    """

    width: int = 8

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into signed two's complement range."""
        value &= self.mask
        sign_bit = 1 << (self.width - 1)
        return value - (1 << self.width) if value & sign_bit else value

    def evaluate(self, op: Op, operands: list[int]) -> int:
        """Evaluate ``op`` over integer ``operands`` bit-true at ``width``."""
        if op is Op.ADD:
            return self.wrap(operands[0] + operands[1])
        if op is Op.SUB:
            return self.wrap(operands[0] - operands[1])
        if op is Op.MUL:
            return self.wrap(operands[0] * operands[1])
        if op is Op.GT:
            return int(operands[0] > operands[1])
        if op is Op.LT:
            return int(operands[0] < operands[1])
        if op is Op.GE:
            return int(operands[0] >= operands[1])
        if op is Op.LE:
            return int(operands[0] <= operands[1])
        if op is Op.EQ:
            return int(operands[0] == operands[1])
        if op is Op.NE:
            return int(operands[0] != operands[1])
        if op is Op.MUX:
            select, in0, in1 = operands
            return in1 if select else in0
        if op is Op.AND:
            return self.wrap(operands[0] & operands[1])
        if op is Op.OR:
            return self.wrap(operands[0] | operands[1])
        if op is Op.XOR:
            return self.wrap(operands[0] ^ operands[1])
        if op is Op.NOT:
            return self.wrap(~operands[0])
        if op is Op.SHL:
            return self.wrap(operands[0] << operands[1])
        if op is Op.SHR:
            # Arithmetic shift right (sign preserving), as CORDIC needs.
            return self.wrap(operands[0] >> operands[1])
        if op is Op.PASS or op is Op.OUTPUT:
            return operands[0]
        raise ValueError(f"cannot evaluate {op!r}")
