"""Fluent construction API for CDFGs.

``GraphBuilder`` wraps a :class:`~repro.ir.graph.CDFG` with value handles so
circuits can be written as straight-line Python::

    b = GraphBuilder("abs_diff")
    a, bb = b.input("a"), b.input("b")
    c = b.gt(a, bb, name="c")
    d0 = b.sub(bb, a, name="b_minus_a")
    d1 = b.sub(a, bb, name="a_minus_b")
    out = b.mux(c, d0, d1, name="abs")
    b.output(out, "result")
    graph = b.build()

Handles support operator overloading (``a + b``, ``a > b`` ...), which the
benchmark circuit definitions and the language lowering both use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.ops import Op
from repro.ir.validate import validate


@dataclass(frozen=True)
class Value:
    """Handle to a node's result within a particular builder."""

    builder: "GraphBuilder"
    nid: int

    def _binary(self, op: Op, other: "Value | int", name: str = "") -> "Value":
        return self.builder._binary(op, self, other, name)

    def __add__(self, other):
        return self._binary(Op.ADD, other)

    def __sub__(self, other):
        return self._binary(Op.SUB, other)

    def __mul__(self, other):
        return self._binary(Op.MUL, other)

    def __gt__(self, other):
        return self._binary(Op.GT, other)

    def __lt__(self, other):
        return self._binary(Op.LT, other)

    def __ge__(self, other):
        return self._binary(Op.GE, other)

    def __le__(self, other):
        return self._binary(Op.LE, other)

    def __and__(self, other):
        return self._binary(Op.AND, other)

    def __or__(self, other):
        return self._binary(Op.OR, other)

    def __xor__(self, other):
        return self._binary(Op.XOR, other)

    def __lshift__(self, amount: int):
        return self.builder.shl(self, amount)

    def __rshift__(self, amount: int):
        return self.builder.shr(self, amount)

    # NOTE: __eq__/__ne__ stay identity comparisons so Values can live in
    # sets/dicts; use builder.eq()/builder.ne() for the dataflow operations.


class GraphBuilder:
    """Incrementally builds a CDFG; ``build()`` validates and returns it."""

    def __init__(self, name: str = "cdfg") -> None:
        self._graph = CDFG(name=name)
        self._const_cache: dict[int, int] = {}

    # -- leaves ---------------------------------------------------------

    def input(self, name: str) -> Value:
        return Value(self, self._graph.add_node(Op.INPUT, name=name))

    def const(self, value: int, name: str = "") -> Value:
        """Constants are hash-consed: one node per distinct value."""
        if not name and value in self._const_cache:
            return Value(self, self._const_cache[value])
        nid = self._graph.add_node(Op.CONST, value=value, name=name)
        if not name:
            self._const_cache[value] = nid
        return Value(self, nid)

    def output(self, value: "Value | int", name: str) -> Value:
        v = self._coerce(value)
        return Value(self, self._graph.add_node(Op.OUTPUT, [v.nid], name=name))

    # -- operations -----------------------------------------------------

    def _coerce(self, value: "Value | int") -> Value:
        if isinstance(value, Value):
            if value.builder is not self:
                raise ValueError("value belongs to a different builder")
            return value
        if isinstance(value, int):
            return self.const(value)
        raise TypeError(f"expected Value or int, got {type(value).__name__}")

    def _binary(self, op: Op, lhs, rhs, name: str = "") -> Value:
        a, b = self._coerce(lhs), self._coerce(rhs)
        return Value(self, self._graph.add_node(op, [a.nid, b.nid], name=name))

    def add(self, a, b, name: str = "") -> Value:
        return self._binary(Op.ADD, a, b, name)

    def sub(self, a, b, name: str = "") -> Value:
        return self._binary(Op.SUB, a, b, name)

    def mul(self, a, b, name: str = "") -> Value:
        return self._binary(Op.MUL, a, b, name)

    def gt(self, a, b, name: str = "") -> Value:
        return self._binary(Op.GT, a, b, name)

    def lt(self, a, b, name: str = "") -> Value:
        return self._binary(Op.LT, a, b, name)

    def ge(self, a, b, name: str = "") -> Value:
        return self._binary(Op.GE, a, b, name)

    def le(self, a, b, name: str = "") -> Value:
        return self._binary(Op.LE, a, b, name)

    def eq(self, a, b, name: str = "") -> Value:
        return self._binary(Op.EQ, a, b, name)

    def ne(self, a, b, name: str = "") -> Value:
        return self._binary(Op.NE, a, b, name)

    def and_(self, a, b, name: str = "") -> Value:
        return self._binary(Op.AND, a, b, name)

    def or_(self, a, b, name: str = "") -> Value:
        return self._binary(Op.OR, a, b, name)

    def xor(self, a, b, name: str = "") -> Value:
        return self._binary(Op.XOR, a, b, name)

    def not_(self, a, name: str = "") -> Value:
        v = self._coerce(a)
        return Value(self, self._graph.add_node(Op.NOT, [v.nid], name=name))

    def mux(self, select, in0, in1, name: str = "") -> Value:
        """``select == 0`` routes ``in0``; ``select == 1`` routes ``in1``."""
        s, a, b = self._coerce(select), self._coerce(in0), self._coerce(in1)
        nid = self._graph.add_node(Op.MUX, [s.nid, a.nid, b.nid], name=name)
        return Value(self, nid)

    def select(self, cond, if_true, if_false, name: str = "") -> Value:
        """C-style ternary ``cond ? if_true : if_false`` (sugar over mux)."""
        return self.mux(cond, if_false, if_true, name=name)

    def shl(self, a, amount: int, name: str = "") -> Value:
        return self._shift(Op.SHL, a, amount, name)

    def shr(self, a, amount: int, name: str = "") -> Value:
        """Arithmetic right shift by a constant — free wiring, latency 0."""
        return self._shift(Op.SHR, a, amount, name)

    def _shift(self, op: Op, a, amount: int, name: str) -> Value:
        if not isinstance(amount, int) or amount < 0:
            raise ValueError("shift amount must be a non-negative constant")
        v = self._coerce(a)
        amt = self.const(amount)
        nid = self._graph.add_node(op, [v.nid, amt.nid], name=name)
        return Value(self, nid)

    # -- finish ---------------------------------------------------------

    @property
    def graph(self) -> CDFG:
        """The graph under construction (not yet validated)."""
        return self._graph

    def build(self, validate_graph: bool = True) -> CDFG:
        if validate_graph:
            validate(self._graph)
        return self._graph
