"""The Control Data Flow Graph (CDFG).

Nodes are operations; data edges are implied by each node's ordered operand
list.  In addition the graph carries *control edges* — pure precedence
constraints with no data flow — which is exactly what the paper's step 10
inserts between a MUX's select driver and the top nodes of its data cones.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

from repro.ir.node import Node
from repro.ir.ops import Op


class CDFGError(Exception):
    """Raised for structurally invalid CDFG operations."""


class CDFG:
    """A directed acyclic graph of operations.

    Edge kinds:
        * data edges — ``u`` is an operand of ``v`` (implied by operands);
        * control edges — scheduling precedence only (added by the PM pass).

    Both kinds constrain scheduling; only data edges carry values.
    """

    def __init__(self, name: str = "cdfg") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._succs: dict[int, list[int]] = {}
        self._control_succs: dict[int, set[int]] = {}
        self._control_preds: dict[int, set[int]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(
        self,
        op: Op,
        operands: Iterable[int] = (),
        name: str = "",
        value: int | None = None,
        latency: int = -1,
    ) -> int:
        """Create a node and return its id.  Operands must already exist."""
        operands = list(operands)
        for producer in operands:
            if producer not in self._nodes:
                raise CDFGError(f"operand {producer} does not exist")
        nid = self._next_id
        self._next_id += 1
        node = Node(nid=nid, op=op, operands=operands, name=name, value=value,
                    latency=latency)
        self._nodes[nid] = node
        self._succs[nid] = []
        for producer in operands:
            self._succs[producer].append(nid)
        return nid

    def add_control_edge(self, src: int, dst: int) -> None:
        """Add a pure precedence edge ``src`` -> ``dst`` (paper step 10)."""
        if src not in self._nodes or dst not in self._nodes:
            raise CDFGError(f"control edge {src}->{dst}: unknown node")
        if src == dst:
            raise CDFGError(f"control self-edge on node {src}")
        self._control_succs.setdefault(src, set()).add(dst)
        self._control_preds.setdefault(dst, set()).add(src)
        if self._creates_cycle():
            self._control_succs[src].discard(dst)
            self._control_preds[dst].discard(src)
            raise CDFGError(f"control edge {src}->{dst} creates a cycle")

    def remove_control_edge(self, src: int, dst: int) -> None:
        self._control_succs.get(src, set()).discard(dst)
        self._control_preds.get(dst, set()).discard(src)

    def clear_control_edges(self) -> None:
        self._control_succs.clear()
        self._control_preds.clear()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def node(self, nid: int) -> Node:
        try:
            return self._nodes[nid]
        except KeyError:
            raise CDFGError(f"no node with id {nid}") from None

    def __contains__(self, nid: int) -> bool:
        return nid in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def node_ids(self) -> list[int]:
        return list(self._nodes)

    def nodes(self, predicate: Callable[[Node], bool] | None = None) -> list[Node]:
        """All nodes, optionally filtered."""
        if predicate is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if predicate(n)]

    def inputs(self) -> list[Node]:
        return self.nodes(lambda n: n.op is Op.INPUT)

    def outputs(self) -> list[Node]:
        return self.nodes(lambda n: n.op is Op.OUTPUT)

    def constants(self) -> list[Node]:
        return self.nodes(lambda n: n.op is Op.CONST)

    def muxes(self) -> list[Node]:
        return self.nodes(lambda n: n.op is Op.MUX)

    def operations(self) -> list[Node]:
        """Schedulable operation nodes (what Tables I/II count)."""
        return self.nodes(lambda n: n.is_schedulable)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def data_preds(self, nid: int) -> list[int]:
        """Operand producers (with duplicates collapsed, order preserved)."""
        seen: set[int] = set()
        result = []
        for producer in self.node(nid).operands:
            if producer not in seen:
                seen.add(producer)
                result.append(producer)
        return result

    def data_succs(self, nid: int) -> list[int]:
        """Consumers of this node's value (duplicates collapsed)."""
        seen: set[int] = set()
        result = []
        for consumer in self._succs[nid]:
            if consumer not in seen:
                seen.add(consumer)
                result.append(consumer)
        return result

    def control_preds(self, nid: int) -> set[int]:
        return set(self._control_preds.get(nid, ()))

    def control_succs(self, nid: int) -> set[int]:
        return set(self._control_succs.get(nid, ()))

    def control_edges(self) -> list[tuple[int, int]]:
        return [(u, v) for u, vs in self._control_succs.items() for v in sorted(vs)]

    def preds(self, nid: int) -> list[int]:
        """All predecessors: data + control (scheduling constraints)."""
        result = self.data_preds(nid)
        extra = self._control_preds.get(nid)
        if extra:
            result.extend(p for p in sorted(extra) if p not in result)
        return result

    def succs(self, nid: int) -> list[int]:
        """All successors: data + control."""
        result = self.data_succs(nid)
        extra = self._control_succs.get(nid)
        if extra:
            result.extend(s for s in sorted(extra) if s not in result)
        return result

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def topological_order(self, include_control: bool = True) -> list[int]:
        """Kahn topological sort; raises CDFGError on cycles."""
        indegree = {nid: 0 for nid in self._nodes}
        succs_of = self.succs if include_control else self.data_succs
        preds_of = self.preds if include_control else self.data_preds
        for nid in self._nodes:
            indegree[nid] = len(preds_of(nid))
        ready = deque(sorted(n for n, d in indegree.items() if d == 0))
        order: list[int] = []
        while ready:
            nid = ready.popleft()
            order.append(nid)
            for succ in succs_of(nid):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            raise CDFGError("graph contains a cycle")
        return order

    def _creates_cycle(self) -> bool:
        try:
            self.topological_order()
        except CDFGError:
            return True
        return False

    def transitive_fanin(self, nid: int, include_self: bool = False) -> set[int]:
        """All nodes from which ``nid`` is reachable via data edges."""
        return self._reach(nid, self.data_preds, include_self)

    def transitive_fanout(self, nid: int, include_self: bool = False) -> set[int]:
        """All nodes reachable from ``nid`` via data edges."""
        return self._reach(nid, self.data_succs, include_self)

    def _reach(self, start: int, step, include_self: bool) -> set[int]:
        self.node(start)  # validate
        seen: set[int] = set()
        frontier = deque(step(start))
        while frontier:
            nid = frontier.popleft()
            if nid in seen:
                continue
            seen.add(nid)
            frontier.extend(step(nid))
        if include_self:
            seen.add(start)
        return seen

    def longest_path_to_output(self) -> dict[int, int]:
        """Weighted longest path (sum of latencies) from each node to any
        graph sink, over data+control edges.  Used to order MUX processing
        (paper: closest to the outputs first = smallest distance)."""
        dist: dict[int, int] = {}
        for nid in reversed(self.topological_order()):
            succs = self.succs(nid)
            node = self._nodes[nid]
            if not succs:
                dist[nid] = node.latency
            else:
                dist[nid] = node.latency + max(dist[s] for s in succs)
        return dist

    # ------------------------------------------------------------------
    # Utility
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "CDFG":
        """Deep copy (nodes, data and control edges), preserving node ids."""
        clone = CDFG(name=name or self.name)
        clone._next_id = self._next_id
        for nid, node in self._nodes.items():
            clone._nodes[nid] = Node(
                nid=node.nid, op=node.op, operands=list(node.operands),
                name=node.name, value=node.value, latency=node.latency,
            )
            clone._succs[nid] = list(self._succs[nid])
        for src, dsts in self._control_succs.items():
            clone._control_succs[src] = set(dsts)
        for dst, srcs in self._control_preds.items():
            clone._control_preds[dst] = set(srcs)
        return clone

    def op_counts(self) -> dict[str, int]:
        """Schedulable operation counts by resource class (Table I columns)."""
        counts: dict[str, int] = {}
        for node in self.operations():
            key = node.resource.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CDFG({self.name!r}, {len(self._nodes)} nodes, "
                f"{len(self.control_edges())} control edges)")
