"""CDFG node: a single operation instance with ordered operands."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ops import Op, arity, default_latency, is_schedulable, resource_class

# Operand-port indices for MUX nodes (operands are [select, in0, in1]).
MUX_SELECT = 0
MUX_IN0 = 1
MUX_IN1 = 2


@dataclass
class Node:
    """One CDFG operation.

    Attributes:
        nid: Unique integer id within its graph.
        op: Operation performed.
        operands: Ordered producer node ids.  Order matters for SUB, shifts,
            comparisons and MUX (``[select, in0, in1]``).
        name: Human-readable name (variable the result is bound to).
        value: Constant value for CONST nodes, shift amount for SHL/SHR
            second operands folded at build time, else None.
        latency: Control steps occupied (0 for wiring/structural nodes).
    """

    nid: int
    op: Op
    operands: list[int] = field(default_factory=list)
    name: str = ""
    value: int | None = None
    latency: int = -1  # filled in __post_init__ if left at sentinel

    def __post_init__(self) -> None:
        if self.latency < 0:
            self.latency = default_latency(self.op)
        expected = arity(self.op)
        if self.op is not Op.CONST and self.op is not Op.INPUT:
            if len(self.operands) != expected:
                raise ValueError(
                    f"{self.op.value} node {self.nid} ({self.name!r}) expects "
                    f"{expected} operands, got {len(self.operands)}"
                )
        if self.op is Op.CONST and self.value is None:
            raise ValueError(f"CONST node {self.nid} requires a value")

    @property
    def is_schedulable(self) -> bool:
        """True if the node occupies a control step and an execution unit."""
        return is_schedulable(self.op)

    @property
    def is_mux(self) -> bool:
        return self.op is Op.MUX

    @property
    def resource(self):
        """ResourceClass for schedulable nodes, None otherwise."""
        return resource_class(self.op)

    @property
    def select_operand(self) -> int:
        """Producer id of the select input (MUX nodes only)."""
        if self.op is not Op.MUX:
            raise ValueError(f"node {self.nid} is not a MUX")
        return self.operands[MUX_SELECT]

    def data_operand(self, side: int) -> int:
        """Producer id of data input ``side`` (0 or 1) of a MUX node."""
        if self.op is not Op.MUX:
            raise ValueError(f"node {self.nid} is not a MUX")
        if side not in (0, 1):
            raise ValueError(f"MUX side must be 0 or 1, got {side}")
        return self.operands[MUX_IN0 + side]

    def label(self) -> str:
        """Short display label used by reports and DOT export."""
        if self.op is Op.CONST:
            return f"{self.value}"
        if self.name:
            return f"{self.name}:{self.op.value}"
        return f"n{self.nid}:{self.op.value}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = ",".join(str(o) for o in self.operands)
        return f"Node({self.nid}, {self.op.value!r}, [{ops}], name={self.name!r})"
