"""Graph composition: loop unrolling by feedback stitching.

The paper's introduction names loop unrolling (with pipelining) among the
throughput transformations that interact with power-aware synthesis.  For
circuits that implement one iteration of a loop (like the ``gcd`` step),
``unroll`` builds the k-iteration body by instantiating the graph k times
and wiring selected outputs of copy i into the matching inputs of copy
i+1.  All other inputs are shared across copies; intermediate fed-back
outputs become internal nodes, and the last copy's outputs (plus any
non-fed-back outputs of every copy, suffixed by iteration) are exported.
"""

from __future__ import annotations

from repro.ir.graph import CDFG, CDFGError
from repro.ir.ops import Op


def unroll(graph: CDFG, n: int, feedback: dict[str, str],
           name: str | None = None) -> CDFG:
    """Unroll ``graph`` ``n`` times, feeding output->input per ``feedback``.

    ``feedback`` maps *output port name* -> *input port name*.  Every input
    name must appear exactly once; shared (non-fed-back) inputs are created
    once and reused by every copy.
    """
    if n < 1:
        raise ValueError("unroll factor must be at least 1")
    out_names = {o.name for o in graph.outputs()}
    in_names = {i.name for i in graph.inputs()}
    for out_name, in_name in feedback.items():
        if out_name not in out_names:
            raise CDFGError(f"feedback source {out_name!r} is not an output")
        if in_name not in in_names:
            raise CDFGError(f"feedback target {in_name!r} is not an input")
    if len(set(feedback.values())) != len(feedback):
        raise CDFGError("two feedback outputs drive the same input")

    result = CDFG(name=name or f"{graph.name}_x{n}")
    shared_inputs: dict[str, int] = {}
    for node in graph.inputs():
        if node.name not in feedback.values():
            shared_inputs[node.name] = result.add_node(Op.INPUT,
                                                       name=node.name)

    fed_by = {in_name: out_name for out_name, in_name in feedback.items()}
    # Value feeding each fed-back input of the next copy: starts at a fresh
    # primary input (iteration 0 consumes the original inputs).
    current: dict[str, int] = {}
    for in_name in fed_by:
        current[in_name] = result.add_node(Op.INPUT, name=in_name)

    for k in range(n):
        mapping: dict[int, int] = {}
        copy_outputs: dict[str, int] = {}
        for nid in graph.topological_order(include_control=False):
            node = graph.node(nid)
            if node.op is Op.INPUT:
                if node.name in fed_by:
                    mapping[nid] = current[node.name]
                else:
                    mapping[nid] = shared_inputs[node.name]
                continue
            if node.op is Op.OUTPUT:
                copy_outputs[node.name] = mapping[node.operands[0]]
                continue
            operands = [mapping[p] for p in node.operands]
            suffix = f"_i{k}" if node.name else ""
            mapping[nid] = result.add_node(
                node.op, operands, name=f"{node.name}{suffix}",
                value=node.value, latency=node.latency)

        last = k == n - 1
        for out_name, producer in copy_outputs.items():
            if out_name in feedback and not last:
                current[feedback[out_name]] = producer
            elif out_name in feedback:
                result.add_node(Op.OUTPUT, [producer], name=out_name)
            else:
                # Non-fed-back outputs are observable per iteration.
                result.add_node(Op.OUTPUT, [producer],
                                name=f"{out_name}_i{k}")
    return result
