"""CDFG intermediate representation: operations, nodes, graphs, transforms."""

from repro.ir.builder import GraphBuilder, Value
from repro.ir.compose import unroll
from repro.ir.graph import CDFG, CDFGError
from repro.ir.node import MUX_IN0, MUX_IN1, MUX_SELECT, Node
from repro.ir.ops import (
    Op,
    OpSemantics,
    ResourceClass,
    arity,
    default_latency,
    is_commutative,
    is_comparison,
    is_schedulable,
    is_structural,
    is_wiring,
    resource_class,
)
from repro.ir.serialize import dumps as graph_dumps
from repro.ir.serialize import loads as graph_loads
from repro.ir.transform import eliminate_dead_nodes, fold_constants, rebuild
from repro.ir.validate import validate
from repro.ir.dot import to_dot

__all__ = [
    "CDFG",
    "CDFGError",
    "GraphBuilder",
    "MUX_IN0",
    "MUX_IN1",
    "MUX_SELECT",
    "Node",
    "Op",
    "OpSemantics",
    "ResourceClass",
    "Value",
    "arity",
    "default_latency",
    "eliminate_dead_nodes",
    "fold_constants",
    "graph_dumps",
    "graph_loads",
    "is_commutative",
    "is_comparison",
    "is_schedulable",
    "is_structural",
    "is_wiring",
    "rebuild",
    "resource_class",
    "to_dot",
    "unroll",
    "validate",
]
