"""Structural validation for CDFGs.

``validate`` is run by ``GraphBuilder.build`` and before synthesis; it
enforces the invariants the rest of the pipeline relies on.
"""

from __future__ import annotations

from repro.ir.graph import CDFG, CDFGError
from repro.ir.ops import Op, arity


def validate(graph: CDFG) -> None:
    """Raise :class:`CDFGError` if the graph violates a structural invariant.

    Checks:
        * acyclicity (over data + control edges);
        * operand arity per op;
        * OUTPUT nodes have no consumers; INPUT/CONST have no operands;
        * at least one OUTPUT exists and every OUTPUT is fed;
        * every non-structural node reaches some OUTPUT (no dead ops);
        * shift amounts are constant.
    """
    graph.topological_order()  # raises on cycles

    if not graph.outputs():
        raise CDFGError(f"graph {graph.name!r} has no outputs")

    for node in graph:
        expected = arity(node.op)
        if len(node.operands) != expected:
            raise CDFGError(
                f"node {node.nid} ({node.op.value}) has {len(node.operands)} "
                f"operands, expected {expected}"
            )
        if node.op is Op.OUTPUT and graph.data_succs(node.nid):
            raise CDFGError(f"OUTPUT node {node.nid} has consumers")
        if node.op in (Op.SHL, Op.SHR):
            amount = graph.node(node.operands[1])
            if amount.op is not Op.CONST:
                raise CDFGError(
                    f"shift node {node.nid} has non-constant amount; "
                    "variable shifts are not zero-latency wiring"
                )

    # Dead-operation check: every schedulable node must reach an output.
    live: set[int] = set()
    for out in graph.outputs():
        live |= graph.transitive_fanin(out.nid, include_self=True)
    for node in graph:
        if node.is_schedulable and node.nid not in live:
            raise CDFGError(
                f"node {node.nid} ({node.label()}) does not reach any output; "
                "run transform.eliminate_dead_nodes or fix the circuit"
            )
