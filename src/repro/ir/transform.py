"""CDFG-to-CDFG transforms.

These run before scheduling:

* :func:`eliminate_dead_nodes` — drop nodes that reach no output.
* :func:`fold_constants` — evaluate ops whose operands are all constants.
* :func:`rebuild` — produce a compact, freshly-numbered copy (used by the
  other transforms and by the pipelining expander).
"""

from __future__ import annotations

from repro.ir.graph import CDFG
from repro.ir.ops import Op, OpSemantics


def rebuild(graph: CDFG, keep: set[int] | None = None, name: str | None = None) -> CDFG:
    """Copy ``graph`` keeping only ``keep`` (default: all), renumbering ids
    densely in topological order.  Control edges between kept nodes survive.
    """
    if keep is None:
        keep = set(graph.node_ids)
    out = CDFG(name=name or graph.name)
    mapping: dict[int, int] = {}
    for nid in graph.topological_order():
        if nid not in keep:
            continue
        node = graph.node(nid)
        try:
            operands = [mapping[p] for p in node.operands]
        except KeyError as exc:
            raise ValueError(
                f"node {nid} kept but operand {exc.args[0]} dropped"
            ) from None
        mapping[nid] = out.add_node(node.op, operands, name=node.name,
                                    value=node.value, latency=node.latency)
    for src, dst in graph.control_edges():
        if src in mapping and dst in mapping:
            out.add_control_edge(mapping[src], mapping[dst])
    return out


def eliminate_dead_nodes(graph: CDFG) -> CDFG:
    """Remove every node that does not reach an OUTPUT."""
    live: set[int] = set()
    for out in graph.outputs():
        live |= graph.transitive_fanin(out.nid, include_self=True)
    return rebuild(graph, keep=live)


def fold_constants(graph: CDFG, width: int = 8) -> CDFG:
    """Evaluate operations whose operands are all CONST nodes.

    MUX nodes with a constant select are replaced by the selected operand.
    Returns a freshly-numbered graph; dead constants are swept afterwards.
    """
    semantics = OpSemantics(width=width)
    out = CDFG(name=graph.name)
    mapping: dict[int, int] = {}
    const_of: dict[int, int] = {}  # new id -> constant value
    const_by_value: dict[int, int] = {}  # constant value -> new id

    def make_const(value: int) -> int:
        if value in const_by_value:
            return const_by_value[value]
        nid = out.add_node(Op.CONST, value=value)
        const_by_value[value] = nid
        const_of[nid] = value
        return nid

    for nid in graph.topological_order():
        node = graph.node(nid)
        operands = [mapping[p] for p in node.operands]
        if node.op is Op.CONST:
            new = make_const(node.value)
        elif node.op is Op.MUX and operands[0] in const_of:
            new = operands[2] if const_of[operands[0]] else operands[1]
        elif (node.is_schedulable or node.op in (Op.SHL, Op.SHR, Op.PASS)) \
                and operands and all(p in const_of for p in operands):
            value = semantics.evaluate(node.op, [const_of[p] for p in operands])
            new = make_const(value)
        else:
            new = out.add_node(node.op, operands, name=node.name,
                               value=node.value, latency=node.latency)
        mapping[nid] = new
    for src, dst in graph.control_edges():
        ns, nd = mapping[src], mapping[dst]
        if ns != nd and ns not in const_of:
            try:
                out.add_control_edge(ns, nd)
            except Exception:
                pass  # edge collapsed onto itself or became redundant
    return eliminate_dead_nodes(out)
