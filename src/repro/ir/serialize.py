"""CDFG (de)serialization to JSON-compatible dictionaries.

Round-trips the complete graph — nodes with ordered operands, names,
constant values, latencies, and the PM pass's control edges — so designs
can be saved, diffed and reloaded across sessions or shipped to other
tools.
"""

from __future__ import annotations

import json

from repro.ir.graph import CDFG
from repro.ir.ops import Op

FORMAT_VERSION = 1


def graph_to_dict(graph: CDFG) -> dict:
    """Plain-data representation of ``graph``."""
    return {
        "format": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {
                "id": node.nid,
                "op": node.op.name,
                "operands": list(node.operands),
                **({"name": node.name} if node.name else {}),
                **({"value": node.value} if node.value is not None else {}),
                **({"latency": node.latency}
                   if node.latency != _default_latency(node.op) else {}),
            }
            for node in sorted(graph, key=lambda n: n.nid)
        ],
        "control_edges": [list(edge) for edge in graph.control_edges()],
    }


def _default_latency(op: Op) -> int:
    from repro.ir.ops import default_latency
    return default_latency(op)


def graph_from_dict(data: dict) -> CDFG:
    """Rebuild a CDFG from :func:`graph_to_dict` output.

    Node ids are renumbered densely in the stored order; operand
    references are remapped accordingly.
    """
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported CDFG format {data.get('format')!r} "
            f"(expected {FORMAT_VERSION})")
    graph = CDFG(name=data.get("name", "cdfg"))
    mapping: dict[int, int] = {}
    for entry in data["nodes"]:
        try:
            op = Op[entry["op"]]
        except KeyError:
            raise ValueError(f"unknown op {entry['op']!r}") from None
        operands = [mapping[ref] for ref in entry["operands"]]
        mapping[entry["id"]] = graph.add_node(
            op,
            operands,
            name=entry.get("name", ""),
            value=entry.get("value"),
            latency=entry.get("latency", -1),
        )
    for src, dst in data.get("control_edges", ()):
        graph.add_control_edge(mapping[src], mapping[dst])
    return graph


def dumps(graph: CDFG, indent: int | None = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> CDFG:
    """Deserialize from a JSON string."""
    return graph_from_dict(json.loads(text))
