"""Simulation backend selection.

Three interchangeable, bit-identical batch engines exist:

* ``"compiled"`` — :class:`~repro.sim.engine.CompiledEngine`, generated
  straight-line Python executed per vector.  No dependencies; the
  fallback everywhere.
* ``"vectorized"`` — :class:`~repro.sim.vectorized.VectorizedEngine`,
  generated NumPy array programs executed per *block*, with a hybrid
  scalar micro-loop covering recurrent guarded state.  Total over valid
  designs up to the int64 width headroom; needs ``numpy``.
* ``"packed"`` — :class:`~repro.sim.packed.PackedEngine`, bit-sliced
  word-parallel logic: 64 Monte Carlo vectors per machine word with
  popcount activity reduction.  Fastest on pure-logic-dominated
  circuits; recurrent designs transparently run hybrid-vectorized.
* ``"auto"`` — vectorized when NumPy is importable and the design's
  width fits the array backend's headroom, else compiled.  This is a
  capability check, not a try/except: since the hybrid plan landed, no
  valid design is refused by the vectorized backend, so nothing is
  swallowed silently.

Every engine handed out carries a ``chosen_backend`` attribute naming
the engine actually constructed (``auto`` and ``packed`` may resolve to
a different engine than their argument); fallbacks are logged on the
``repro.sim.backend`` logger.

:func:`create_engine` is the single construction point the power
estimator, the pipeline's verify stage and ``explore()`` go through.
"""

from __future__ import annotations

import logging

from repro.rtl.design import SynthesizedDesign
from repro.sim.engine import CompiledEngine

BACKENDS = ("compiled", "vectorized", "packed", "auto")

# Widest design the vectorized backend accepts: intermediate products
# need 2*width bits inside int64 plus sign headroom.
VECTOR_WIDTH_LIMIT = 62

logger = logging.getLogger("repro.sim.backend")


def numpy_available() -> bool:
    """True when the vectorized backend's only dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a declared dep
        return False
    return True


def _tag(engine, chosen: str):
    engine.chosen_backend = chosen
    return engine


def create_engine(design: SynthesizedDesign, power_management: bool = True,
                  backend: str = "auto"):
    """Build the batch engine ``backend`` names for ``design``.

    ``"auto"`` selects the vectorized backend whenever NumPy is
    importable and the design's word width fits its numeric envelope,
    else the compiled one — a decidable capability check with no
    exception swallowing.  ``"packed"`` tries the bit-parallel engine
    and drops to the hybrid vectorized engine (logged) for designs whose
    recurrent state the packed kernels cannot close.  The returned
    engine's ``chosen_backend`` attribute records the resolution.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; "
            f"choose one of {', '.join(BACKENDS)}")
    if backend == "compiled":
        return _tag(CompiledEngine(design, power_management=power_management),
                    "compiled")
    if backend == "vectorized":
        from repro.sim.vectorized import VectorizedEngine

        return _tag(VectorizedEngine(design,
                                     power_management=power_management),
                    "vectorized")
    if backend == "packed":
        from repro.sim.packed import PackedEngine, PackingError

        try:
            return _tag(PackedEngine(design,
                                     power_management=power_management),
                        "packed")
        except PackingError as exc:
            from repro.sim.vectorized import VectorizedEngine

            logger.info("packed backend unavailable for %r (%s); "
                        "running hybrid vectorized",
                        design.graph.name, exc)
            return _tag(VectorizedEngine(design,
                                         power_management=power_management),
                        "vectorized")
    # auto: pure capability check — no VectorizationError to swallow
    # since the hybrid plan made the vectorized backend total.
    if numpy_available() and design.width <= VECTOR_WIDTH_LIMIT:
        from repro.sim.vectorized import VectorizedEngine

        return _tag(VectorizedEngine(design,
                                     power_management=power_management),
                    "vectorized")
    logger.info("auto backend resolved to compiled for %r (width %d)",
                design.graph.name, design.width)
    return _tag(CompiledEngine(design, power_management=power_management),
                "compiled")
