"""Simulation backend selection.

Two interchangeable, bit-identical batch engines exist:

* ``"compiled"`` — :class:`~repro.sim.engine.CompiledEngine`, generated
  straight-line Python executed per vector.  No dependencies; the
  fallback everywhere.
* ``"vectorized"`` — :class:`~repro.sim.vectorized.VectorizedEngine`,
  generated NumPy array programs executed per *block*.  The fast path
  for Monte Carlo power estimation and sweeps; needs ``numpy``.
* ``"auto"`` — vectorized when NumPy is importable and the design's
  guarded state has a closed-form batch formulation, else compiled.

:func:`create_engine` is the single construction point the power
estimator, the pipeline's verify stage and ``explore()`` go through.
"""

from __future__ import annotations

from repro.rtl.design import SynthesizedDesign
from repro.sim.engine import CompiledEngine

BACKENDS = ("compiled", "vectorized", "auto")


def numpy_available() -> bool:
    """True when the vectorized backend's only dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a declared dep
        return False
    return True


def create_engine(design: SynthesizedDesign, power_management: bool = True,
                  backend: str = "auto"):
    """Build the batch engine ``backend`` names for ``design``.

    ``"auto"`` prefers the vectorized backend and silently falls back to
    the compiled one when NumPy is missing or the design cannot be
    vectorized (:class:`~repro.sim.vectorized.VectorizationError`);
    ``"vectorized"`` propagates those failures instead.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {backend!r}; "
            f"choose one of {', '.join(BACKENDS)}")
    if backend == "compiled":
        return CompiledEngine(design, power_management=power_management)
    if backend == "vectorized":
        from repro.sim.vectorized import VectorizedEngine

        return VectorizedEngine(design, power_management=power_management)
    if numpy_available():
        from repro.sim.vectorized import VectorizationError, VectorizedEngine

        try:
            return VectorizedEngine(design, power_management=power_management)
        except VectorizationError:
            pass
    return CompiledEngine(design, power_management=power_management)
