"""Reference functional model: evaluate a CDFG directly.

The golden model every synthesized design is checked against — with and
without power management the RTL must produce exactly these outputs.
"""

from __future__ import annotations

from repro.ir.graph import CDFG
from repro.ir.ops import Op, OpSemantics


def evaluate(graph: CDFG, inputs: dict[str, int],
             width: int = 8) -> dict[str, int]:
    """Outputs of ``graph`` for named ``inputs`` on a ``width``-bit datapath."""
    values = evaluate_all(graph, inputs, width)
    return {
        out.name: values[out.nid] for out in graph.outputs()
    }


def evaluate_all(graph: CDFG, inputs: dict[str, int],
                 width: int = 8) -> dict[int, int]:
    """Value of every node (keyed by node id)."""
    semantics = OpSemantics(width=width)
    values: dict[int, int] = {}
    for nid in graph.topological_order(include_control=False):
        node = graph.node(nid)
        if node.op is Op.INPUT:
            if node.name not in inputs:
                raise KeyError(f"missing input {node.name!r}")
            values[nid] = semantics.wrap(inputs[node.name])
        elif node.op is Op.CONST:
            values[nid] = semantics.wrap(node.value)
        else:
            operands = [values[p] for p in node.operands]
            values[nid] = semantics.evaluate(node.op, operands)
    return values
