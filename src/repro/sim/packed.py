"""Bit-parallel word-packed simulation backend.

Classic gate-level simulators evaluate 64 test vectors at once by
storing one machine word per circuit net: lane ``j`` of every word
belongs to vector ``j``, and one bitwise instruction advances all 64
vectors through a gate.  This module lifts that idiom to the
word-level :class:`~repro.sim.engine.ExecutionPlan`: every state slot
becomes a **bit-sliced** ``(width, nwords)`` uint64 array — slice ``i``
holds bit ``i`` of the value for 64 Monte Carlo vectors per word — and
the arithmetic operators lower to slice-level carry chains:

* ADD/SUB are ``width``-step ripple-carry chains over slices
  (``carry = (a & b) | (carry & (a ^ b))``), SUB via complement with an
  all-ones injected carry.
* MUL is the shift-add expansion (``width`` masked adds).
* Comparisons are borrow chains; signed order falls out of complementing
  the sign slice.  MUX is a lane blend ``(a & m) | (b & ~m)``.
* Pure logic (AND/OR/XOR/NOT) — the sweet spot — is a *single* bitwise
  instruction per slice, 64 vectors wide.

Activity tallies never unpack: a toggle count is one XOR plus one
population count per word (:func:`repro.sim.activity.packed_toggles`),
masked by the valid-lane tail mask and the op's guard mask.

The whole symbolic pass — guarded write folds, value-read implication,
masked-scan/shift closed forms, DCE, topological ordering — is
inherited from :class:`~repro.sim.vectorized._VectorCodegen`; only the
expression renderers differ.  Designs whose guarded writes form an
irreducible cross-vector recurrence raise :class:`PackingError` (there
is no packed scalar micro-loop); ``create_engine(backend="packed")``
then runs the hybrid vectorized engine instead and records the choice.
"""

from __future__ import annotations

import numpy as np

from repro.ir.ops import Op
from repro.rtl.design import SynthesizedDesign
from repro.sim.activity import packed_toggles
from repro.sim.engine import (
    _lru_get,
    _lru_put,
    _make_lru,
    cached_plan,
    design_fingerprint,
)
from repro.sim.vectorized import VectorizedEngine, _VectorCodegen


class PackingError(Exception):
    """The design cannot run on the packed backend (recurrent guarded
    state, or width beyond 64 bits); run it hybrid-vectorized instead."""


_ONES = ~np.uint64(0)
_ONE = np.uint64(1)
_S63 = np.uint64(63)
_S56 = np.uint64(56)
#: Bit 0 of each byte in a word.
_LSBS = np.uint64(0x0101010101010101)
#: Multiply-gather constant: with the bit-``i`` plane isolated at byte
#: positions ``8k``, one multiply slides bit ``8k`` to bit ``56 + k``,
#: so the high byte of the product is the 8 lanes' bit ``i`` in lane
#: order — one 8x8 bit-matrix transpose step (Hacker's Delight 7-3).
_GATHER = np.uint64(0x0102040810204080)


# -- packed kernels --------------------------------------------------------


def _valid_mask(n: int) -> np.ndarray:
    """Lane mask with the ``n`` valid vector lanes set, tail zeroed."""
    nw = (n + 63) // 64
    m = np.full(nw, _ONES, dtype=np.uint64)
    r = n % 64
    if r:
        m[-1] = (_ONE << np.uint64(r)) - _ONE
    return m


def _pack(col: np.ndarray, width: int) -> np.ndarray:
    """Pack an int64 ``(n,)`` column into ``(width, nwords)`` bit slices
    (little-endian lanes: vector ``j`` -> word ``j // 64``, bit
    ``j % 64``).  Only the low ``width`` bits survive — the same
    two's-complement wrap the other backends apply on input load.

    This is the hot input-boundary path of the backend, so it is an
    in-register SWAR bit transpose, not ``unpackbits``/``packbits``
    (which materialize one byte per *bit* — ~10x slower here): each
    relevant byte plane of the column, viewed as words of 8 vectors'
    bytes, has its 8x8 bit blocks transposed with the
    shift/mask/multiply gather (:data:`_GATHER`), one row per bit.
    """
    n = col.shape[0]
    nw = (n + 63) // 64
    nbytes = (width + 7) // 8
    raw = np.ascontiguousarray(col, dtype="<i8").view(np.uint8).reshape(n, 8)
    out = np.zeros((width, nw * 8), dtype=np.uint8)
    plane = np.zeros(nw * 64, dtype=np.uint8)
    for b in range(nbytes):
        plane[:n] = raw[:, b]
        w = plane.view(np.uint64)                    # 8 vectors per word
        for i in range(min(8, width - 8 * b)):
            g = ((w >> np.uint64(i)) & _LSBS) * _GATHER >> _S56
            out[8 * b + i] = g                       # low byte survives
    return out.view(np.uint64)


def _punpack(col: np.ndarray, n: int) -> np.ndarray:
    """Unpack ``(width, nwords)`` bit slices back into a sign-extended
    int64 ``(n,)`` column — the inverse SWAR transpose of :func:`_pack`.

    Per byte plane, words are assembled from 8 slice bytes (slices past
    the top repeat the sign slice, so the top byte arrives
    sign-extended) and the same multiply-gather pulls lane ``j``'s bits
    out as that vector's value byte; upper int64 bytes then broadcast
    the top byte's sign."""
    w, nw = col.shape
    npad = nw * 64
    sbytes = np.ascontiguousarray(col).view(np.uint8).reshape(w, npad // 8)
    nbytes = (w + 7) // 8
    raw = np.empty((npad, 8), dtype=np.uint8)
    blk = np.empty((npad // 8, 8), dtype=np.uint8)
    for b in range(nbytes):
        for i in range(8):
            blk[:, i] = sbytes[min(8 * b + i, w - 1)]
        words = blk.reshape(-1).view(np.uint64)
        for j in range(8):
            g = ((words >> np.uint64(j)) & _LSBS) * _GATHER >> _S56
            raw[j::8, b] = g
    raw[:, nbytes:] = (raw[:, nbytes - 1].astype(np.int8) >> 7)[:, None]
    return raw.view("<i8").ravel()[:n]


def _pconst(value: int, width: int, nw: int) -> np.ndarray:
    """Broadcast one two's-complement constant across all lanes."""
    out = np.zeros((width, nw), dtype=np.uint64)
    for i in range(width):
        if (value >> i) & 1:
            out[i] = _ONES
    return out


def _pbool(mask: np.ndarray, width: int, nw: int) -> np.ndarray:
    """Value column 0/1 from a lane mask (comparison results)."""
    out = np.zeros((width, nw), dtype=np.uint64)
    out[0] = mask
    return out


def _pnz(col: np.ndarray) -> np.ndarray:
    """Lane mask: value != 0 (OR-reduce over bit slices)."""
    return np.bitwise_or.reduce(col, axis=0)


def _pblend(mask: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-lane select: ``mask ? a : b`` on every slice, as the 3-op
    xor form (one pass fewer than ``(a & m) | (b & ~m)``)."""
    return b ^ ((a ^ b) & mask)


def _padd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ripple-carry add over bit slices, wrap-around mod ``2**width``."""
    w = a.shape[0]
    out = np.empty_like(a)
    carry = np.zeros_like(a[0])
    for i in range(w):
        s = a[i] ^ b[i]
        out[i] = s ^ carry
        carry = (a[i] & b[i]) | (carry & s)
    return out


def _psub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a - b`` as ``a + ~b + 1`` (all-ones initial carry)."""
    w = a.shape[0]
    out = np.empty_like(a)
    carry = np.full_like(a[0], _ONES)
    for i in range(w):
        nb = ~b[i]
        s = a[i] ^ nb
        out[i] = s ^ carry
        carry = (a[i] & nb) | (carry & s)
    return out


def _pmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Shift-add multiply; two's complement is sign-agnostic mod
    ``2**width``."""
    w = a.shape[0]
    out = np.zeros_like(a)
    part = np.empty_like(a)
    for i in range(w):
        m = b[i]
        if not m.any():
            continue
        part[:] = 0
        part[i:] = a[:w - i] & m
        out = _padd(out, part)
    return out


def _plt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lane mask: ``a < b`` signed — the borrow-out of ``a - b`` with
    both sign slices complemented (biasing to unsigned order)."""
    w = a.shape[0]
    carry = np.full_like(a[0], _ONES)
    for i in range(w):
        ai = a[i] if i < w - 1 else ~a[i]
        nb = ~b[i] if i < w - 1 else b[i]
        s = ai ^ nb
        carry = (ai & nb) | (carry & s)
    return ~carry


def _peq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lane mask: ``a == b`` (AND-reduce of slicewise XNOR)."""
    m = ~(a[0] ^ b[0])
    for i in range(1, a.shape[0]):
        m = m & ~(a[i] ^ b[i])
    return m


def _pshl(a: np.ndarray, k: int) -> np.ndarray:
    """Left shift by ``k``: slice reindex with zero fill."""
    out = np.zeros_like(a)
    w = a.shape[0]
    if k < w:
        out[k:] = a[:w - k]
    return out


def _pshr(a: np.ndarray, k: int) -> np.ndarray:
    """Arithmetic right shift by ``k`` (``k <= width - 1``): slice
    reindex with sign-slice fill."""
    w = a.shape[0]
    out = np.empty_like(a)
    out[:w - k] = a[k:]
    out[w - k:] = a[w - 1]
    return out


def _pffill(value: np.ndarray, mask: np.ndarray, carry: int) -> np.ndarray:
    """Masked forward fill across lanes: lane ``j`` takes the value of
    the last mask-enabled lane ``<= j``, bottoming out at the scalar
    ``carry`` — the packed twin of the vectorized backend's
    ``maximum.accumulate`` scan.  Within words: six Hillis-Steele
    doubling steps on the defined-lane mask; across words: a sequential
    carry of one bit per slice."""
    w, nw = value.shape
    cur = value & mask
    have = mask.copy()
    for s in (1, 2, 4, 8, 16, 32):
        sh = np.uint64(s)
        hs = have << sh
        take = hs & ~have
        cur |= (cur << sh) & take
        have |= hs
    out = np.empty_like(value)
    cbits = [(carry >> i) & 1 for i in range(w)]
    zero = np.uint64(0)
    for k in range(nw):
        undef = ~have[k]
        for i in range(w):
            out[i, k] = cur[i, k] | (undef & (_ONES if cbits[i] else zero))
        if int(have[k] >> _S63) & 1:
            cbits = [int(cur[i, k] >> _S63) & 1 for i in range(w)]
    return out


def _pshift1(end: np.ndarray, carry: int) -> np.ndarray:
    """Lane shift-by-one with cross-word bit carry: lane ``j`` reads the
    end column's lane ``j - 1``; lane 0 reads the scalar ``carry``."""
    w = end.shape[0]
    out = end << _ONE
    out[:, 1:] |= end[:, :-1] >> _S63
    cbits = (np.uint64(carry & ((1 << w) - 1))
             >> np.arange(w, dtype=np.uint64)) & _ONE
    out[:, 0] |= cbits
    return out


def _planes(mask: np.ndarray, vm: np.ndarray | None) -> int:
    """Number of set lanes in a lane mask, restricted to the valid tail
    mask when one is needed (``vm is None`` = all lanes valid)."""
    if vm is not None:
        mask = mask & vm
    return int(np.bitwise_count(mask).sum())


def _plast(col: np.ndarray, n: int) -> np.ndarray:
    """Sign-extended Python int of the last valid lane (vector
    ``n - 1``) of a packed column."""
    w = col.shape[0]
    j, b = divmod(n - 1, 64)
    b = np.uint64(b)
    v = 0
    for i in range(w - 1):
        v |= (int(col[i, j] >> b) & 1) << i
    v -= (int(col[w - 1, j] >> b) & 1) << (w - 1)
    return v


_NAMESPACE = {
    "_np": np, "_valid_mask": _valid_mask, "_pack": _pack,
    "_punpack": _punpack, "_pconst": _pconst, "_pbool": _pbool,
    "_pnz": _pnz, "_pblend": _pblend, "_padd": _padd, "_psub": _psub,
    "_pmul": _pmul, "_plt": _plt, "_peq": _peq, "_pshl": _pshl,
    "_pshr": _pshr, "_pffill": _pffill, "_pshift1": _pshift1,
    "_plast": _plast, "_planes": _planes, "_ptoggles": packed_toggles,
}


# -- code generation -------------------------------------------------------


class _PackedCodegen(_VectorCodegen):
    """The vectorized symbolic pass re-rendered onto bit-sliced packed
    words: only the representation hooks change."""

    backend_tag = "packed"

    def _check_width(self) -> None:
        if self.plan.width > 64:
            raise PackingError(
                f"width {self.plan.width} exceeds one machine word; "
                "use backend='vectorized' or 'compiled'")

    # -- representation hooks -------------------------------------------

    def cond_expr(self, expr: str, value: int) -> str:
        return f"_pnz({expr})" if value else f"~_pnz({expr})"

    def where_expr(self, guard: str, then: str, other: str) -> str:
        return f"_pblend({guard}, {then}, {other})"

    def count_true(self, guard: str) -> str:
        return f"_planes({guard}, _vm)"

    def count_false(self, guard: str) -> str:
        return f"_planes(~{guard}, _vm)"

    def const_column(self, expr: str) -> str:
        return f"_pconst({expr}, {self.plan.width}, _nw)"

    def zero_column(self) -> str:
        return f"_np.zeros(({self.plan.width}, _nw), dtype=_np.uint64)"

    def input_expr(self, k: int) -> str:
        return f"_pack(_m[:, {k}], {self.plan.width})"

    def ffill_expr(self, value: str, mask: str,
                   slot: str) -> tuple[str, tuple[str, ...]]:
        return f"_pffill({value}, {mask}, {slot}__in)", (value, mask)

    def state_last(self, end: str) -> str:
        return f"_plast({end}, _n)"

    def state_const_expr(self, slot: str) -> str:
        return f"_pconst({slot}__in, {self.plan.width}, _nw)"

    def state_shift_expr(self, slot: str, end: str) -> str:
        return f"_pshift1({end}, {slot}__in)"

    def prelude_lines(self) -> list[str]:
        # _vm is None when every lane of every word is valid (n a
        # multiple of 64, the common Monte-Carlo block shape): the
        # activity popcounts then skip their broadcast AND per call.
        return ["    _nw = (_n + 63) // 64",
                "    _vm = _valid_mask(_n) if _n % 64 else None"]

    def result_expr(self, name: str) -> str:
        return f"_punpack({name}, _n)"

    # -- expression rendering -------------------------------------------

    def shift_chain(self, expr: str, shifts) -> str:
        width = self.plan.width
        for op, amount in shifts:
            if op is Op.SHL:
                expr = f"_pshl({expr}, {min(amount, width)})"
            else:
                expr = f"_pshr({expr}, {min(amount, width - 1)})"
        return expr

    def op_expr(self, op: Op, ts: list[str]) -> str:
        w = self.plan.width
        a = ts[0]
        b = ts[1] if len(ts) > 1 else None
        if op is Op.ADD:
            return f"_padd({a}, {b})"
        if op is Op.SUB:
            return f"_psub({a}, {b})"
        if op is Op.MUL:
            return f"_pmul({a}, {b})"
        if op is Op.GT:
            return f"_pbool(_plt({b}, {a}), {w}, _nw)"
        if op is Op.LT:
            return f"_pbool(_plt({a}, {b}), {w}, _nw)"
        if op is Op.GE:
            return f"_pbool(~_plt({a}, {b}), {w}, _nw)"
        if op is Op.LE:
            return f"_pbool(~_plt({b}, {a}), {w}, _nw)"
        if op is Op.EQ:
            return f"_pbool(_peq({a}, {b}), {w}, _nw)"
        if op is Op.NE:
            return f"_pbool(~_peq({a}, {b}), {w}, _nw)"
        if op is Op.MUX:
            return f"_pblend(_pnz({a}), {ts[2]}, {ts[1]})"
        if op is Op.AND:
            return f"{a} & {b}"
        if op is Op.OR:
            return f"{a} | {b}"
        if op is Op.XOR:
            return f"{a} ^ {b}"
        if op is Op.NOT:
            return f"~{a}"
        raise ValueError(f"cannot pack {op!r}")  # pragma: no cover

    def popcount(self, prev: str, new: str, guard: str | None,
                 deps: tuple[str, ...]) -> tuple[str, tuple[str, ...]]:
        # Counting each diff immediately keeps it cache-hot; deferring
        # the popcounts into one bulk pass was measured 2.5x slower —
        # the live diff arrays overflow cache and every lane is re-read
        # through (slow) memory.
        if guard is not None:
            return (f"_ptoggles({prev}, {new}, {guard} if _vm is None "
                    f"else {guard} & _vm)", deps + (guard,))
        return f"_ptoggles({prev}, {new}, _vm)", deps

    # -- assembly --------------------------------------------------------

    def _assemble_hybrid(self, kept, by_target, out_names, state_out) -> str:
        raise PackingError(
            f"design {self.plan.name!r} has a cross-vector recurrence; "
            "the packed backend has no scalar micro-loop — "
            "use the hybrid vectorized backend")


def generate_packed_source(plan, power_management: bool) -> str:
    """Packed-kernel source of the specialized ``_run(matrix, state)``
    runner; raises :class:`PackingError` for recurrent or over-wide
    plans."""
    return _PackedCodegen(plan, power_management).run()


# -- the engine ------------------------------------------------------------


# (fingerprint, power_management) ->
# (plan, source, runner, hybrid, scalar_slots) — compile-once.
_PACKED_CACHE = _make_lru()


class PackedEngine(VectorizedEngine):
    """Bit-parallel batch engine: 64 vectors per machine word.

    Drop-in for :class:`~repro.sim.vectorized.VectorizedEngine` (same
    ``run_array`` / ``run_batch`` / ``run_many``, bit-exact outputs and
    activity), fastest on pure-logic-dominated circuits where one slice
    instruction replaces 64 lane evaluations.  Raises
    :class:`PackingError` for recurrent designs —
    ``create_engine(backend="packed")`` falls back to hybrid vectorized
    and records the resolution on ``chosen_backend``."""

    backend = "packed"

    #: 64k lanes/tile: every packed value is then 8 KiB per bit slice,
    #: so a statement's operands and result stay cache-resident even on
    #: million-vector Monte-Carlo blocks (the win over the vectorized
    #: backend's 8-bytes-per-lane temporaries).  Multiple of 64, so
    #: only the final ragged tile ever needs a valid-lane mask.
    _tile_rows = 1 << 16

    def __init__(self, design: SynthesizedDesign,
                 power_management: bool = True) -> None:
        self.design = design
        self.power_management = power_management
        key = (design_fingerprint(design), power_management)
        cached = _lru_get(_PACKED_CACHE, key)
        if cached is None:
            plan = cached_plan(design)
            codegen = _PackedCodegen(plan, power_management)
            source = codegen.run()
            namespace: dict[str, object] = dict(_NAMESPACE)
            exec(compile(source, f"<packed:{design.graph.name}>", "exec"),
                 namespace)
            cached = (plan, source, namespace["_run"], codegen.hybrid,
                      codegen.scalar_slots)
            _lru_put(_PACKED_CACHE, key, cached)
        self.plan, self.source, self._run, self.hybrid, self.scalar_slots = \
            cached
        self._init_state()
