"""Cycle-accurate simulation of a synthesized design.

Executes the FSM step by step against the datapath structure: operand
values are read from the register file (through wiring), latched into the
execution unit's input latches, evaluated, and the result written back to
the value's register on the closing clock edge.

Power management is honoured exactly as the controller would: a gated
operation whose guard evaluates false keeps its input latches disabled —
no latch toggles, no evaluation, no result-register write — which is the
shut-down mechanism of the paper (and of precomputation [1]/guarded
evaluation [9] at the logic level).

State persists across samples, so switching activity between consecutive
input vectors is modelled the same way the paper's "timing simulation with
random input vectors" does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.lifetimes import resolve_source
from repro.ir.ops import Op, OpSemantics
from repro.rtl.design import SynthesizedDesign
from repro.sim.activity import ActivityCounter, hamming


@dataclass
class SampleResult:
    """Outputs and activity of simulating one input sample."""

    outputs: dict[str, int]
    activity: ActivityCounter


class RTLSimulator:
    """Simulates a :class:`SynthesizedDesign`, cycle by cycle.

    ``power_management=False`` ignores every guard (the paper's "Orig"
    designs in Table III): the same datapath executes every operation.
    """

    def __init__(self, design: SynthesizedDesign,
                 power_management: bool = True) -> None:
        self.design = design
        self.power_management = power_management
        self.semantics = OpSemantics(width=design.width)
        graph = design.graph
        self._input_ids = {n.name: n.nid for n in graph.inputs()}
        # Persistent hardware state.
        self._registers: dict[int, int] = {
            reg.index: 0 for reg in set(design.registers.assignment.values())
        }
        self._fu_inputs: dict[tuple[object, int], int] = {}
        self._fu_outputs: dict[object, int] = {}
        # Events per step.
        self._starts: dict[int, list[int]] = {}
        self._ends: dict[int, list[int]] = {}
        for node in graph.operations():
            start = design.schedule.step_of(node.nid)
            self._starts.setdefault(start, []).append(node.nid)
            self._ends.setdefault(start + node.latency - 1, []).append(node.nid)
        self._latched_operands: dict[int, list[int]] = {}
        self._active: set[int] = set()

    # -- register / value access ---------------------------------------

    def _register_index(self, root: int) -> int:
        return self.design.registers.register_of(root).index

    def _read_value(self, operand: int) -> int:
        """Value of ``operand`` as seen on the interconnect right now."""
        graph = self.design.graph
        ref = resolve_source(graph, operand)
        root = graph.node(ref.root)
        if root.op is Op.CONST:
            value = self.semantics.wrap(root.value)
        else:
            value = self._registers[self._register_index(ref.root)]
        for op, amount in ref.shifts:
            value = self.semantics.evaluate(op, [value, amount])
        return value

    def _write_register(self, root: int, value: int,
                        activity: ActivityCounter) -> None:
        index = self._register_index(root)
        old = self._registers[index]
        activity.record_register_write(hamming(old, value, self.design.width))
        self._registers[index] = value

    # -- execution -------------------------------------------------------

    def _guard_values(self) -> dict[int, int]:
        """Current values of every guard driver register."""
        values: dict[int, int] = {}
        for guard in self.design.guards.values():
            for term in guard.terms:
                if term.driver not in values:
                    values[term.driver] = self._read_value(term.driver)
        return values

    def run(self, inputs: dict[str, int]) -> SampleResult:
        """Process one input sample through all control steps."""
        design = self.design
        graph = design.graph
        activity = ActivityCounter(width=design.width)

        # Clock edge into state 0: input registers load.
        for name, nid in self._input_ids.items():
            if name not in inputs:
                raise KeyError(f"missing input {name!r}")
            self._write_register(nid, self.semantics.wrap(inputs[name]),
                                 activity)

        self._active.clear()
        self._latched_operands.clear()

        for step in range(design.schedule.n_steps):
            activity.record_controller_cycle(design.controller.literal_count)
            guard_values = self._guard_values()
            pending_writes: list[tuple[int, int]] = []

            # Operand latching at op start.
            for nid in self._starts.get(step, ()):
                node = graph.node(nid)
                guard = design.guards[nid]
                enabled = (not self.power_management) \
                    or guard.evaluate(guard_values)
                if not enabled:
                    activity.record_idle(node.resource)
                    continue
                unit = design.binding.unit_of(nid)
                operands = [self._read_value(p) for p in node.operands]
                toggles = 0
                for port, value in enumerate(operands):
                    key = (unit, port)
                    old = self._fu_inputs.get(key, 0)
                    toggles += hamming(old, value, design.width)
                    self._fu_inputs[key] = value
                self._latched_operands[nid] = operands
                self._active.add(nid)
                activity.fu_input_toggles[node.resource] = \
                    activity.fu_input_toggles.get(node.resource, 0) + toggles

            # Evaluation + result write-back at op end.
            for nid in self._ends.get(step, ()):
                if nid not in self._active:
                    continue
                node = graph.node(nid)
                unit = design.binding.unit_of(nid)
                operands = self._latched_operands.pop(nid)
                result = self.semantics.evaluate(node.op, operands)
                old_out = self._fu_outputs.get(unit, 0)
                out_toggles = hamming(old_out, result, design.width)
                self._fu_outputs[unit] = result
                activity.fu_activations[node.resource] = \
                    activity.fu_activations.get(node.resource, 0) + 1
                activity.fu_output_toggles[node.resource] = \
                    activity.fu_output_toggles.get(node.resource, 0) + out_toggles
                pending_writes.append((nid, result))
                self._active.discard(nid)

            # Closing clock edge: commit result registers.
            for nid, value in pending_writes:
                self._write_register(nid, value, activity)

        outputs = {
            out.name: self._read_value(out.operands[0])
            for out in graph.outputs()
        }
        return SampleResult(outputs=outputs, activity=activity)

    def run_many(self, vectors: list[dict[str, int]]) -> tuple[
            list[dict[str, int]], ActivityCounter]:
        """Run a vector sequence; returns outputs and merged activity."""
        total = ActivityCounter(width=self.design.width)
        outputs = []
        for vector in vectors:
            sample = self.run(vector)
            outputs.append(sample.outputs)
            total.merge(sample.activity)
        return outputs, total
