"""Vectorized NumPy batch simulation backend.

The :class:`~repro.sim.engine.CompiledEngine` removed interpreter
overhead but still executes Python bytecode per vector, per step.  This
module lowers the same :class:`~repro.sim.engine.ExecutionPlan` into a
NumPy *array program*: every register / FU-input-latch / FU-output state
slot becomes an ``int64`` column of shape ``(batch,)``, guards become
boolean masks applied with ``np.where``, masked wrap-around arithmetic
and shift chains are emitted as array expressions, and every
:class:`~repro.sim.activity.ActivityCounter` tally is reduced with
vectorized popcount/XOR over consecutive rows — so one generated function
call simulates a whole vector block at once, bit-identically to the
compiled and interpreted backends.

Cross-vector state
------------------

Hardware state persists between consecutive vectors, which makes the
batch axis a recurrence, not an embarrassingly-parallel dimension.  The
code generator resolves it in closed form:

* A slot written **unconditionally** during a vector's pass carries no
  state into the next vector beyond its end-of-pass column; toggles
  between consecutive vectors are XORs of a column against its
  shift-by-one (``start = concat([carry], end[:-1])``).
* A slot whose writes are all **guarded** (power-managed ops that may be
  shut down) keeps its previous value when disabled.  Its end-of-pass
  column is the masked scan ``end[i] = mask[i] ? value[i] : end[i-1]``,
  computed without a Python loop via a ``maximum.accumulate`` index
  trick (:func:`_masked_ffill`) — the same way d-MC verification work
  batches candidate checks instead of walking them one by one.

Reads that observe a stale slot (a consumer latching the dest register
of a shut-down producer) read the shifted end column of that slot.  The
generator emits all columns as SSA statements, topologically sorts them,
and raises :class:`VectorizationError` if the guarded writes form a
genuine cross-vector cycle with no closed form (``backend="auto"`` then
falls back to the compiled backend; no registered benchmark needs it).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.ir.ops import Op, ResourceClass
from repro.rtl.design import SynthesizedDesign
from repro.sim.activity import ActivityCounter
from repro.sim.engine import (
    ExecutionPlan,
    SourcePlan,
    _EngineBase,
    _lru_get,
    _lru_put,
    _make_lru,
    _state_names,
    cached_plan,
    design_fingerprint,
)


class VectorizationError(Exception):
    """The design's guarded state forms a cross-vector recurrence with no
    closed-form masked-scan solution; use the compiled backend instead."""


def _masked_ffill(values: np.ndarray, mask: np.ndarray, carry: int,
                  idx1: np.ndarray) -> np.ndarray:
    """Solve ``out[i] = mask[i] ? values[i] : out[i-1]`` with ``out[-1] =
    carry`` — the end-of-pass column of a slot whose writes are all
    guarded — as pure array code.  ``idx1`` is ``arange(1, n + 1)``."""
    idx = np.maximum.accumulate(np.where(mask, idx1, 0))
    gathered = values[np.maximum(idx, 1) - 1]
    return np.where(idx > 0, gathered, carry)


# -- code generation -------------------------------------------------------


def _contradictory(implied: frozenset) -> bool:
    """True when a term set requires a driver to be both 0 and 1 —
    i.e. the guarded observation can never happen at runtime."""
    required: dict = {}
    for sp, value in implied:
        if required.setdefault(sp, value) != value:
            return True
    return False


@dataclass(frozen=True)
class _Stmt:
    target: str
    expr: str
    deps: tuple[str, ...]


class _VectorCodegen:
    """Symbolically executes one vector pass over the plan, emitting SSA
    array statements, then resolves cross-vector state and orders the
    statements topologically."""

    def __init__(self, plan: ExecutionPlan, power_management: bool) -> None:
        self.plan = plan
        self.pm = power_management
        self.mask = (1 << plan.width) - 1
        self.sign = 1 << (plan.width - 1)
        if plan.width > 62:
            raise VectorizationError(
                f"width {plan.width} exceeds the array backend's int64 "
                "headroom; use backend='compiled'")
        # Smallest element type with full product headroom (2w bits).
        # Wrap-around ops are congruent mod 2**dtype_bits ⊇ mod 2**width
        # and every column is rewrapped into signed range immediately, so
        # narrow dtypes stay bit-exact while halving memory traffic.
        self.dtype = "_np.int64"
        for bits, name in ((16, "_np.int16"), (32, "_np.int32")):
            if 2 * plan.width <= bits:
                self.dtype = name
                break
        # For power-of-two widths a signed downcast/upcast pair is the
        # cheapest exact rewrap (truncating two's complement cast).
        self.narrow = {8: "_np.int8", 16: "_np.int16",
                       32: "_np.int32"}.get(plan.width)
        self.stmts: list[_Stmt] = []
        # slot -> write history this pass: (guard name | None, guard term
        # set | None, written column).
        self.writes: dict[str, list[
            tuple[str | None, frozenset | None, str]]] = {}
        self.cur: dict[str, str] = {}       # slot -> current true column
        self.start_used: set[str] = set()   # slots read before first write
        self.contribs: dict[str, list[str]] = {}  # counter -> contrib names
        self._serial = 0
        self._cse: dict[str, str] = {}      # expr -> existing SSA name

    # -- statement plumbing ---------------------------------------------

    def name(self, stem: str) -> str:
        self._serial += 1
        return f"_{stem}{self._serial}"

    def stmt(self, target: str, expr: str, deps: tuple[str, ...]) -> str:
        self.stmts.append(_Stmt(target, expr, deps))
        return target

    def cse_stmt(self, stem: str, expr: str, deps: tuple[str, ...]) -> str:
        cached = self._cse.get(expr)
        if cached is not None:
            return cached
        name = self.stmt(self.name(stem), expr, deps)
        self._cse[expr] = name
        return name

    def contrib(self, counter: str, expr: str,
                deps: tuple[str, ...] = ()) -> None:
        name = self.stmt(self.name("k"), expr, deps)
        self.contribs.setdefault(counter, []).append(name)

    # -- slot state ------------------------------------------------------
    #
    # Two read modes keep the batch formulation acyclic:
    #
    # * ``read_slot`` (observation): the value a latch or toggle counter
    #   actually sees, including values left stale by shut-down
    #   producers.  Folds the true write chain; bottoms out at the
    #   shifted end-of-pass column ``S_<slot>``.
    # * ``value_read`` (value path): the operand value a *guarded* op
    #   reads, valid only at positions where its guard holds.  When the
    #   producer's guard terms are a subset of the consumer's implied
    #   terms, the producer provably ran, so the fold can anchor on the
    #   producer's fresh column instead of the stale ``S_`` column —
    #   which is what breaks read-modify-write recurrences through
    #   guarded mux networks.

    def read_slot(self, slot: str) -> str:
        current = self.cur.get(slot)
        if current is not None:
            return current
        self.start_used.add(slot)
        return f"S_{slot}"

    def write_slot(self, slot: str, value: str,
                   guard: str | None, terms: frozenset | None) -> None:
        self.writes.setdefault(slot, []).append((guard, terms, value))
        if guard is None:
            self.cur[slot] = value
        else:
            prev = self.read_slot(slot)
            self.cur[slot] = self.cse_stmt(
                "c", f"_np.where({guard}, {value}, {prev})",
                (guard, value, prev))

    def value_read(self, sp: SourcePlan, implied: frozenset) -> str:
        """Column name for an operand read on the value path (see above);
        falls back to the stale-capable observation fold when no write's
        guard is implied."""
        slot = f"r{sp.register}"
        suffix: list[tuple[str, str]] = []
        base = None
        for guard, terms, value in reversed(self.writes.get(slot, [])):
            if guard is None or (terms is not None and terms <= implied):
                base = value
                break
            suffix.append((guard, value))
        if base is None:
            self.start_used.add(slot)
            base = f"S_{slot}"
        expr, deps = base, (base,)
        for guard, value in reversed(suffix):
            expr = f"_np.where({guard}, {value}, {expr})"
            deps += (guard, value)
        return self.cse_stmt("w", self.shift_chain(expr, sp.shifts), deps)

    # -- expression rendering -------------------------------------------

    def wrap(self, expr: str) -> str:
        """Rewrap an intermediate into signed ``width``-bit range."""
        if self.narrow is not None:
            return f"({expr}).astype({self.narrow}).astype({self.dtype})"
        return f"((({expr}) & {self.mask}) ^ {self.sign}) - {self.sign}"

    def shift_chain(self, expr: str, shifts) -> str:
        for op, amount in shifts:
            if op is Op.SHL:
                if amount >= self.plan.width:  # shifted fully out: zero
                    expr = f"_np.zeros(_n, dtype={self.dtype})"
                else:
                    expr = self.wrap(f"({expr}) << {amount}")
            else:  # arithmetic shift right of an in-range value
                # Clamp: beyond width-1 bits the result saturates to the
                # sign (identical to Python's unbounded >>), and numpy
                # shifts past the element width are undefined.
                expr = f"(({expr}) >> {min(amount, self.plan.width - 1)})"
        return expr

    def render_source(self, sp: SourcePlan) -> tuple[str, tuple[str, ...]]:
        """Array expression for a pre-resolved operand source (register
        column plus shift chain); constants stay scalar here."""
        if sp.const is not None:
            return repr(sp.const), ()
        name = self.read_slot(f"r{sp.register}")
        return self.shift_chain(name, sp.shifts), (name,)

    def op_expr(self, op: Op, ts: list[str]) -> str:
        wrap = self.wrap
        a = ts[0]
        b = ts[1] if len(ts) > 1 else None
        if op is Op.ADD:
            return wrap(f"{a} + {b}")
        if op is Op.SUB:
            return wrap(f"{a} - {b}")
        if op is Op.MUL:
            return wrap(f"{a} * {b}")
        if op is Op.GT:
            return f"({a} > {b}).astype({self.dtype})"
        if op is Op.LT:
            return f"({a} < {b}).astype({self.dtype})"
        if op is Op.GE:
            return f"({a} >= {b}).astype({self.dtype})"
        if op is Op.LE:
            return f"({a} <= {b}).astype({self.dtype})"
        if op is Op.EQ:
            return f"({a} == {b}).astype({self.dtype})"
        if op is Op.NE:
            return f"({a} != {b}).astype({self.dtype})"
        if op is Op.MUX:
            return f"_np.where({a} != 0, {ts[2]}, {ts[1]})"
        if op is Op.AND:
            return wrap(f"{a} & {b}")
        if op is Op.OR:
            return wrap(f"{a} | {b}")
        if op is Op.XOR:
            return wrap(f"{a} ^ {b}")
        if op is Op.NOT:
            return wrap(f"~{a}")
        raise ValueError(f"cannot vectorize {op!r}")  # pragma: no cover

    def popcount(self, prev: str, new: str, guard: str | None,
                 deps: tuple[str, ...]) -> tuple[str, tuple[str, ...]]:
        expr = f"_np.bitwise_count(({prev} ^ {new}) & {self.mask})"
        if guard is not None:
            # Multiplying by the mask is ~7x cheaper than boolean
            # fancy-indexing at 4k-element blocks.
            return f"int(({expr} * {guard}).sum())", deps + (guard,)
        return f"int({expr}.sum())", deps

    # -- pass symbolic execution ----------------------------------------

    def guard_mask(self, guard) -> tuple[str | None | bool, frozenset]:
        """(mask column name, live term set) for a guard; ``None`` =
        unconditional, ``False`` = provably never enabled (constant
        terms fold at compile time, like the scalar generator's
        short-circuit does at run time)."""
        if not self.pm or guard.unconditional:
            return None, frozenset()
        if guard.never:
            return False, frozenset()
        conds = []
        live = []
        deps: tuple[str, ...] = ()
        for sp, value in guard.terms:
            if sp.const is not None:
                if bool(sp.const) != bool(value):
                    return False, frozenset()  # contradiction: never
                continue  # term always true: fold away
            expr, d = self.render_source(sp)
            conds.append(f"(({expr}) != 0)" if value else f"(({expr}) == 0)")
            live.append((sp, 1 if value else 0))
            deps += d
        if not conds:
            return None, frozenset()
        return self.stmt(self.name("g"), " & ".join(conds),
                         deps), frozenset(live)

    def run(self) -> str:
        plan = self.plan
        mask, sign = self.mask, self.sign

        # Clock edge into state 0: input registers load (unconditional).
        for k, (_name, reg) in enumerate(plan.inputs):
            if self.narrow is not None:
                in_expr = (f"_m[:, {k}].astype({self.narrow})"
                           f".astype({self.dtype})")
            else:
                in_expr = (f"(((_m[:, {k}] & {mask}) ^ {sign}) - {sign})"
                           f".astype({self.dtype})")
            col = self.stmt(f"in{k}", in_expr, ())
            slot = f"r{reg}"
            prev = self.read_slot(slot)
            self.contrib("_rt", *self.popcount(prev, col, None, (prev, col)))
            self.write_slot(slot, col, None, None)

        # Controller: one FSM cycle per control step, every sample.
        self.contrib("_cc", f"{plan.n_steps} * _n")
        self.contrib("_cl", f"{plan.n_steps * plan.controller_literals} * _n")

        guards: dict[int, str | None | bool] = {}
        gterms: dict[int, frozenset] = {}
        tvalues: dict[int, list[str]] = {}
        for step in plan.steps:
            for start in step.starts:
                g, terms = self.guard_mask(start.guard)
                guards[start.nid], gterms[start.nid] = g, terms
                cls = start.resource.name
                if g is False:
                    self.contrib(f"_id_{cls}", "_n")
                    continue
                if g is not None:
                    self.contrib(f"_id_{cls}", f"int((~{g}).sum())", (g,))
                is_mux = start.resource is ResourceClass.MUX
                select = start.sources[0] if is_mux else None
                tvs = []
                for port, sp in enumerate(start.sources):
                    expr, deps = self.render_source(sp)
                    if sp.const is not None:
                        expr = f"_np.full(_n, {expr}, dtype={self.dtype})"
                    t = self.stmt(f"t{start.nid}_{port}", expr, deps)
                    # Value-path operand: a mux data port is additionally
                    # guarded by its own selection (the port's value only
                    # reaches the result when the select picks its side),
                    # so its producer is provably fresh there even for an
                    # unguarded mux.  A contradictory implied set (guard
                    # requires select==0 while the port needs select==1)
                    # means the port is never observed at all — any
                    # column is valid, so substitute zeros instead of
                    # chasing a stale read into a false recurrence.
                    implied = terms
                    if is_mux and port in (1, 2) and select.const is None:
                        implied = terms | {(select, port - 1)}
                    if sp.const is not None or \
                            (g is None and implied == terms):
                        tvs.append(t)
                    elif _contradictory(implied):
                        tvs.append(self.cse_stmt(
                            "z", f"_np.zeros(_n, dtype={self.dtype})", ()))
                    else:
                        tvs.append(self.value_read(sp, implied))
                    # Latches are observation-only leaves: their fold can
                    # (and must) carry the true, stale-capable column.
                    latch = f"l{start.unit}_{port}"
                    prev = self.read_slot(latch)
                    self.contrib(f"_ai_{cls}",
                                 *self.popcount(prev, t, g, (prev, t)))
                    self.write_slot(latch, t, g, terms)
                tvalues[start.nid] = tvs
            for end in step.ends:
                g = guards[end.nid]
                if g is False:
                    continue  # never-enabled op: no end event
                cls = end.resource.name
                terms = gterms[end.nid]
                # The result column folds over the value-path operands:
                # identical to folding over the latched columns wherever
                # the result is observed (the op's own guard positions,
                # and — for mux data ports — the selected side).
                x = self.stmt(f"x{end.nid}",
                              self.op_expr(end.op, tvalues[end.nid]),
                              tuple(tvalues[end.nid]))
                fo = f"fo{end.unit}"
                prev = self.read_slot(fo)
                self.contrib(f"_ao_{cls}", *self.popcount(prev, x, g,
                                                          (prev, x)))
                self.write_slot(fo, x, g, terms)
                self.contrib(f"_aa_{cls}",
                             "_n" if g is None else f"int({g}.sum())",
                             () if g is None else (g,))
                dest = f"r{end.dest_register}"
                prev = self.read_slot(dest)
                self.contrib("_rt", *self.popcount(prev, x, g, (prev, x)))
                self.write_slot(dest, x, g, terms)

        # Output columns, read at end of pass.
        out_names = []
        for k, (_name, sp) in enumerate(plan.outputs):
            expr, deps = self.render_source(sp)
            if sp.const is not None:
                expr = f"_np.full(_n, {expr}, dtype={self.dtype})"
            out_names.append(self.stmt(f"o{k}", expr, deps))

        state_out = self._resolve_state()
        return self._assemble(out_names, state_out)

    # -- cross-vector state resolution ----------------------------------

    def _end_column(self, slot: str) -> str | None:
        """Name of the slot's end-of-pass column (None: never written)."""
        writes = self.writes.get(slot)
        if not writes:
            return None
        if any(guard is None for guard, _t, _v in writes):
            # An unconditional write anchors the pass: the final
            # where-chain is a pure column with no cross-vector term.
            return self.cur[slot]
        # All writes guarded: masked-scan recurrence over the batch
        # (each written column is valid at its own guard's positions —
        # all the masked scan ever reads).
        value = writes[0][2]
        for g, _terms, v in writes[1:]:
            value = self.stmt(self.name("v"),
                              f"_np.where({g}, {v}, {value})", (g, v, value))
        guards = [g for g, _t, _v in writes]
        mask = self.stmt(self.name("m"), " | ".join(guards), tuple(guards))
        return self.stmt(f"E_{slot}",
                         f"_ffill({value}, {mask}, {slot}__in, _ar1)",
                         (value, mask, "_ar1"))

    def _resolve_state(self) -> list[str]:
        self.stmt("_ar1", "_np.arange(1, _n + 1)", ())
        state_out = []
        for slot in _state_names(self.plan):
            if slot.startswith(("_rt", "_cc", "_cl", "_ai", "_ao", "_aa",
                                "_id")):
                contribs = self.contribs.get(slot)
                if not contribs:
                    state_out.append(f"{slot}__in")
                    continue
                total = " + ".join([f"{slot}__in"] + contribs)
                state_out.append(self.stmt(f"{slot}__out", total,
                                           tuple(contribs)))
                continue
            end = self._end_column(slot)
            if end is None:
                state_out.append(f"{slot}__in")
            else:
                state_out.append(self.stmt(f"{slot}__out",
                                           f"int(({end})[-1])", (end,)))
            if slot in self.start_used:
                if end is None:
                    # Never written this pass: constant across the batch.
                    self.stmt(f"S_{slot}",
                              f"_np.full(_n, {slot}__in, dtype={self.dtype})",
                              ())
                else:
                    self.stmt(
                        f"S_{slot}",
                        f"_np.concatenate((_np.asarray([{slot}__in], "
                        f"dtype={self.dtype}), ({end})[:-1]))", (end,))
        return state_out

    # -- ordering + assembly --------------------------------------------

    def _assemble(self, out_names: list[str], state_out: list[str]) -> str:
        plan = self.plan
        by_target = {s.target: i for i, s in enumerate(self.stmts)}
        if len(by_target) != len(self.stmts):  # pragma: no cover - invariant
            raise VectorizationError(f"duplicate SSA target in {plan.name!r}")

        # Dead-code elimination: keep only statements reachable from the
        # outputs and the returned state tuple.
        roots = [n for n in out_names + state_out if n in by_target]
        live: set[str] = set()
        stack = list(roots)
        while stack:
            target = stack.pop()
            if target in live:
                continue
            live.add(target)
            stack.extend(d for d in self.stmts[by_target[target]].deps
                         if d in by_target and d not in live)

        # Kahn topological sort, stable on emission order.  A leftover
        # statement means the guarded writes form a genuine cross-vector
        # recurrence cycle (no closed-form masked scan): refuse.
        kept = [s for s in self.stmts if s.target in live]
        indegree = {s.target: 0 for s in kept}
        dependants: dict[str, list[str]] = {s.target: [] for s in kept}
        for s in kept:
            for d in set(s.deps):
                if d in indegree:
                    indegree[s.target] += 1
                    dependants[d].append(s.target)
        ready = [by_target[t] for t, n in indegree.items() if n == 0]
        heapq.heapify(ready)
        ordered: list[_Stmt] = []
        while ready:
            s = self.stmts[heapq.heappop(ready)]
            ordered.append(s)
            for t in dependants[s.target]:
                indegree[t] -= 1
                if indegree[t] == 0:
                    heapq.heappush(ready, by_target[t])
        if len(ordered) != len(kept):
            raise VectorizationError(
                f"design {plan.name!r} has a cross-vector state recurrence "
                "the array backend cannot close; use backend='compiled'")

        names = _state_names(plan)
        lines = [f"def _run(_m, _state):  # vectorized from {plan.name!r}",
                 f"    ({', '.join(f'{n}__in' for n in names)},) = _state",
                 "    _n = _m.shape[0]"]
        lines += [f"    {s.target} = {s.expr}" for s in ordered]
        outs = ", ".join(out_names)
        if out_names:
            outs += ","
        lines.append(f"    return ({outs}), ({', '.join(state_out)},)")
        return "\n".join(lines) + "\n"


def generate_vector_source(plan: ExecutionPlan,
                           power_management: bool) -> str:
    """NumPy source of the specialized ``_run(matrix, state)`` runner.

    Raises :class:`VectorizationError` when the plan's guarded state has
    no closed-form batch formulation.
    """
    return _VectorCodegen(plan, power_management).run()


# -- the engine ------------------------------------------------------------


@dataclass(frozen=True)
class ArrayBatchResult:
    """Column outputs and merged switching activity of one array batch."""

    outputs: dict[str, np.ndarray]
    activity: ActivityCounter
    samples: int


# (fingerprint, power_management) -> (plan, source, runner) — compile-once.
_VECTOR_CACHE = _make_lru()


class VectorizedEngine(_EngineBase):
    """Executes whole vector blocks as NumPy array programs.

    Drop-in for :class:`~repro.sim.engine.CompiledEngine`: same persistent
    state semantics (splitting a sequence into blocks is indistinguishable
    from one long run), same bit-exact outputs and
    :class:`~repro.sim.activity.ActivityCounter`.  Prefer
    :meth:`run_array` with a pre-generated ``(batch, n_inputs)`` matrix
    (see the ``array_*`` builders in :mod:`repro.sim.vectors` /
    :mod:`repro.sim.workloads`) — :meth:`run_batch` accepts vector dicts
    for API parity and converts.
    """

    backend = "vectorized"

    def __init__(self, design: SynthesizedDesign,
                 power_management: bool = True) -> None:
        self.design = design
        self.power_management = power_management
        key = (design_fingerprint(design), power_management)
        cached = _lru_get(_VECTOR_CACHE, key)
        if cached is None:
            plan = cached_plan(design)
            source = generate_vector_source(plan, power_management)
            namespace: dict[str, object] = {"_np": np, "_ffill": _masked_ffill}
            exec(compile(source, f"<vectorized:{design.graph.name}>", "exec"),
                 namespace)
            cached = (plan, source, namespace["_run"])
            _lru_put(_VECTOR_CACHE, key, cached)
        self.plan, self.source, self._run = cached
        self._init_state()

    def run_array(self, matrix: np.ndarray) -> ArrayBatchResult:
        """Run a ``(batch, n_inputs)`` int64 matrix (column order =
        ``plan.inputs`` order = ``self.input_names``)."""
        matrix = np.asarray(matrix)
        if not np.issubdtype(matrix.dtype, np.integer):
            # The compiled backend rejects non-integer vectors too; a
            # silent float truncation here would break backend parity.
            raise TypeError(
                f"input matrix must have an integer dtype, "
                f"got {matrix.dtype}")
        matrix = np.ascontiguousarray(matrix, dtype=np.int64)
        n_inputs = len(self.plan.inputs)
        if matrix.ndim != 2 or matrix.shape[1] != n_inputs:
            raise ValueError(
                f"expected a (batch, {n_inputs}) input matrix, "
                f"got shape {matrix.shape}")
        if matrix.shape[0] == 0:
            return ArrayBatchResult(
                outputs={name: np.empty(0, dtype=np.int64)
                         for name, _sp in self.plan.outputs},
                activity=ActivityCounter(width=self.plan.width), samples=0)
        before = self._state
        cols, after = self._run(matrix, before)
        self._state = after
        self.samples += matrix.shape[0]
        return ArrayBatchResult(
            outputs={name: col for (name, _sp), col
                     in zip(self.plan.outputs, cols)},
            activity=self._activity_delta(before, after),
            samples=matrix.shape[0])

    def run_batch(self, vectors) -> "BatchResult":
        """Run vector dicts (any iterable); converts to one matrix."""
        from repro.sim.engine import BatchResult
        from repro.sim.vectors import vectors_to_array

        matrix = vectors_to_array(vectors, self.input_names)
        result = self.run_array(matrix)
        columns = [col.tolist() for col in result.outputs.values()]
        names = list(result.outputs)
        outputs = [dict(zip(names, row)) for row in zip(*columns)] \
            if columns else [{} for _ in range(result.samples)]
        return BatchResult(outputs=outputs, activity=result.activity)

    def run_many(self, vectors) -> tuple[list[dict[str, int]],
                                         ActivityCounter]:
        """Drop-in signature twin of :meth:`CompiledEngine.run_many`."""
        result = self.run_batch(vectors)
        return result.outputs, result.activity
