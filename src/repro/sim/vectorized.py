"""Vectorized NumPy batch simulation backend.

The :class:`~repro.sim.engine.CompiledEngine` removed interpreter
overhead but still executes Python bytecode per vector, per step.  This
module lowers the same :class:`~repro.sim.engine.ExecutionPlan` into a
NumPy *array program*: every register / FU-input-latch / FU-output state
slot becomes an ``int64`` column of shape ``(batch,)``, guards become
boolean masks applied with ``np.where``, masked wrap-around arithmetic
and shift chains are emitted as array expressions, and every
:class:`~repro.sim.activity.ActivityCounter` tally is reduced with
vectorized popcount/XOR over consecutive rows — so one generated function
call simulates a whole vector block at once, bit-identically to the
compiled and interpreted backends.

Cross-vector state
------------------

Hardware state persists between consecutive vectors, which makes the
batch axis a recurrence, not an embarrassingly-parallel dimension.  The
code generator resolves it in closed form:

* A slot written **unconditionally** during a vector's pass carries no
  state into the next vector beyond its end-of-pass column; toggles
  between consecutive vectors are XORs of a column against its
  shift-by-one (``start = concat([carry], end[:-1])``).
* A slot whose writes are all **guarded** (power-managed ops that may be
  shut down) keeps its previous value when disabled.  Its end-of-pass
  column is the masked scan ``end[i] = mask[i] ? value[i] : end[i-1]``,
  computed without a Python loop via a ``maximum.accumulate`` index
  trick (:func:`_masked_ffill`) — the same way d-MC verification work
  batches candidate checks instead of walking them one by one.

Reads that observe a stale slot (a consumer latching the dest register
of a shut-down producer) read the shifted end column of that slot.  The
generator emits all columns as SSA statements and topologically sorts
them.  When the guarded writes form a genuine cross-vector cycle with no
closed form, the generator does not refuse: it splits the program into
the acyclic array prefix, a scalar micro-loop over just the recurrent
statements (one running carry per recurrent slot, exact Python-int
expressions), and an array suffix over the materialized core columns —
so every valid design runs through this backend, bit-identically to the
compiled engine.  :class:`VectorizationError` remains only for widths
beyond the int64 headroom (``backend="auto"`` then selects the compiled
backend).
"""

from __future__ import annotations

import heapq
import re
from dataclasses import dataclass, field

import numpy as np

from repro.ir.ops import Op, ResourceClass
from repro.rtl.design import SynthesizedDesign
from repro.sim.activity import ActivityCounter
from repro.sim.engine import (
    ExecutionPlan,
    SourcePlan,
    _EngineBase,
    _lru_get,
    _lru_put,
    _make_lru,
    _state_names,
    cached_plan,
    design_fingerprint,
)


class VectorizationError(Exception):
    """The plan exceeds the array backend's numeric envelope (width past
    the int64 headroom); use the compiled backend instead.  Recurrent
    guarded state no longer raises — it lowers to a hybrid plan."""


def _masked_ffill(values: np.ndarray, mask: np.ndarray, carry: int,
                  idx1: np.ndarray) -> np.ndarray:
    """Solve ``out[i] = mask[i] ? values[i] : out[i-1]`` with ``out[-1] =
    carry`` — the end-of-pass column of a slot whose writes are all
    guarded — as pure array code.  ``idx1`` is ``arange(1, n + 1)``."""
    idx = np.maximum.accumulate(np.where(mask, idx1, 0))
    gathered = values[np.maximum(idx, 1) - 1]
    return np.where(idx > 0, gathered, carry)


# -- code generation -------------------------------------------------------


def _contradictory(implied: frozenset) -> bool:
    """True when a term set requires a driver to be both 0 and 1 —
    i.e. the guarded observation can never happen at runtime."""
    required: dict = {}
    for sp, value in implied:
        if required.setdefault(sp, value) != value:
            return True
    return False


@dataclass(frozen=True)
class _Stmt:
    """One SSA statement: an array expression plus (when the statement
    can participate in a recurrent core) a scalar twin evaluating the
    same value for one batch row with plain Python ints.

    ``kind`` marks the two cross-vector closures: ``"shift"`` statements
    read a slot's previous-row end value (``S_<slot>``) and ``"ffill"``
    statements are masked-scan end columns (``E_<slot>``); both read the
    slot's running carry when lowered into the scalar micro-loop."""

    target: str
    expr: str
    deps: tuple[str, ...]
    sexpr: str | None = field(default=None, compare=False)
    kind: str = field(default="plain", compare=False)
    slot: str | None = field(default=None, compare=False)
    bool_: bool = field(default=False, compare=False)


class _VectorCodegen:
    """Symbolically executes one vector pass over the plan, emitting SSA
    array statements, then resolves cross-vector state and orders the
    statements topologically."""

    def __init__(self, plan: ExecutionPlan, power_management: bool) -> None:
        self.plan = plan
        self.pm = power_management
        self.mask = (1 << plan.width) - 1
        self.sign = 1 << (plan.width - 1)
        self._check_width()
        # Smallest element type with full product headroom (2w bits).
        # Wrap-around ops are congruent mod 2**dtype_bits ⊇ mod 2**width
        # and every column is rewrapped into signed range immediately, so
        # narrow dtypes stay bit-exact while halving memory traffic.
        self.dtype = "_np.int64"
        for bits, name in ((16, "_np.int16"), (32, "_np.int32")):
            if 2 * plan.width <= bits:
                self.dtype = name
                break
        # For power-of-two widths a signed downcast/upcast pair is the
        # cheapest exact rewrap (truncating two's complement cast).
        self.narrow = {8: "_np.int8", 16: "_np.int16",
                       32: "_np.int32"}.get(plan.width)
        self.stmts: list[_Stmt] = []
        # slot -> write history this pass: (guard name | None, guard term
        # set | None, written column).
        self.writes: dict[str, list[
            tuple[str | None, frozenset | None, str]]] = {}
        self.cur: dict[str, str] = {}       # slot -> current true column
        self.start_used: set[str] = set()   # slots read before first write
        self.contribs: dict[str, list[str]] = {}  # counter -> contrib names
        self.end_of: dict[str, str] = {}    # slot -> end-of-pass column name
        self.hybrid = False                 # set by _assemble
        self.scalar_slots: tuple[str, ...] = ()
        self._serial = 0
        self._cse: dict[str, str] = {}      # expr -> existing SSA name

    def _check_width(self) -> None:
        if self.plan.width > 62:
            raise VectorizationError(
                f"width {self.plan.width} exceeds the array backend's "
                "int64 headroom; use backend='compiled'")

    # -- representation hooks -------------------------------------------
    #
    # Everything the symbolic pass knows about the column representation
    # funnels through these small renderers, so the packed backend
    # (:mod:`repro.sim.packed`) can reuse the whole structural pass —
    # write folds, guard implication, closed-form state resolution, DCE,
    # topo sort — by overriding only how a column is spelled.

    def cond_expr(self, expr: str, value: int) -> str:
        """Boolean mask column: ``expr`` nonzero (value=1) / zero (0)."""
        return f"(({expr}) != 0)" if value else f"(({expr}) == 0)"

    def where_expr(self, guard: str, then: str, other: str) -> str:
        return f"_np.where({guard}, {then}, {other})"

    def count_true(self, guard: str) -> str:
        return f"int({guard}.sum())"

    def count_false(self, guard: str) -> str:
        return f"int((~{guard}).sum())"

    def const_column(self, expr: str) -> str:
        return f"_np.full(_n, {expr}, dtype={self.dtype})"

    def zero_column(self) -> str:
        return f"_np.zeros(_n, dtype={self.dtype})"

    def input_expr(self, k: int) -> str:
        """Load + wrap input column ``k`` of the batch matrix."""
        if self.narrow is not None:
            return f"_m[:, {k}].astype({self.narrow}).astype({self.dtype})"
        return (f"(((_m[:, {k}] & {self.mask}) ^ {self.sign}) - {self.sign})"
                f".astype({self.dtype})")

    def ffill_expr(self, value: str, mask: str,
                   slot: str) -> tuple[str, tuple[str, ...]]:
        """Masked-scan end column of an all-guarded slot."""
        return (f"_ffill({value}, {mask}, {slot}__in, _ar1)",
                (value, mask, "_ar1"))

    def state_last(self, end: str) -> str:
        """Scalar end-of-batch value of a column (last vector's lane)."""
        return f"int(({end})[-1])"

    def state_const_expr(self, slot: str) -> str:
        """Column of a slot never written this pass (constant)."""
        return f"_np.full(_n, {slot}__in, dtype={self.dtype})"

    def state_shift_expr(self, slot: str, end: str) -> str:
        """Shift-by-one start column: ``concat([carry], end[:-1])``."""
        return (f"_np.concatenate((_np.asarray([{slot}__in], "
                f"dtype={self.dtype}), ({end})[:-1]))")

    def prelude_lines(self) -> list[str]:
        """Extra setup lines after the state unpack."""
        return []

    def result_expr(self, name: str) -> str:
        """Rendering of an output column in the return tuple."""
        return name

    # -- statement plumbing ---------------------------------------------

    def name(self, stem: str) -> str:
        self._serial += 1
        return f"_{stem}{self._serial}"

    def stmt(self, target: str, expr: str, deps: tuple[str, ...],
             sexpr: str | None = None, kind: str = "plain",
             slot: str | None = None, bool_: bool = False) -> str:
        self.stmts.append(_Stmt(target, expr, deps, sexpr, kind, slot, bool_))
        return target

    def cse_stmt(self, stem: str, expr: str, deps: tuple[str, ...],
                 sexpr: str | None = None, bool_: bool = False) -> str:
        cached = self._cse.get(expr)
        if cached is not None:
            return cached
        name = self.stmt(self.name(stem), expr, deps, sexpr, bool_=bool_)
        self._cse[expr] = name
        return name

    def contrib(self, counter: str, expr: str,
                deps: tuple[str, ...] = ()) -> None:
        name = self.stmt(self.name("k"), expr, deps)
        self.contribs.setdefault(counter, []).append(name)

    # -- slot state ------------------------------------------------------
    #
    # Two read modes keep the batch formulation acyclic:
    #
    # * ``read_slot`` (observation): the value a latch or toggle counter
    #   actually sees, including values left stale by shut-down
    #   producers.  Folds the true write chain; bottoms out at the
    #   shifted end-of-pass column ``S_<slot>``.
    # * ``value_read`` (value path): the operand value a *guarded* op
    #   reads, valid only at positions where its guard holds.  When the
    #   producer's guard terms are a subset of the consumer's implied
    #   terms, the producer provably ran, so the fold can anchor on the
    #   producer's fresh column instead of the stale ``S_`` column —
    #   which is what breaks read-modify-write recurrences through
    #   guarded mux networks.

    def read_slot(self, slot: str) -> str:
        current = self.cur.get(slot)
        if current is not None:
            return current
        self.start_used.add(slot)
        return f"S_{slot}"

    def write_slot(self, slot: str, value: str,
                   guard: str | None, terms: frozenset | None) -> None:
        self.writes.setdefault(slot, []).append((guard, terms, value))
        if guard is None:
            self.cur[slot] = value
        else:
            prev = self.read_slot(slot)
            self.cur[slot] = self.cse_stmt(
                "c", self.where_expr(guard, value, prev),
                (guard, value, prev),
                sexpr=f"({value} if {guard} else {prev})")

    def value_read(self, sp: SourcePlan, implied: frozenset) -> str:
        """Column name for an operand read on the value path (see above);
        falls back to the stale-capable observation fold when no write's
        guard is implied."""
        slot = f"r{sp.register}"
        suffix: list[tuple[str, str]] = []
        base = None
        for guard, terms, value in reversed(self.writes.get(slot, [])):
            if guard is None or (terms is not None and terms <= implied):
                base = value
                break
            suffix.append((guard, value))
        if base is None:
            self.start_used.add(slot)
            base = f"S_{slot}"
        expr, sexpr, deps = base, base, (base,)
        for guard, value in reversed(suffix):
            expr = self.where_expr(guard, value, expr)
            sexpr = f"({value} if {guard} else {sexpr})"
            deps += (guard, value)
        return self.cse_stmt("w", self.shift_chain(expr, sp.shifts), deps,
                             sexpr=self.shift_chain_scalar(sexpr, sp.shifts))

    # -- expression rendering -------------------------------------------

    def wrap(self, expr: str) -> str:
        """Rewrap an intermediate into signed ``width``-bit range."""
        if self.narrow is not None:
            return f"({expr}).astype({self.narrow}).astype({self.dtype})"
        return f"((({expr}) & {self.mask}) ^ {self.sign}) - {self.sign}"

    def wrap_scalar(self, expr: str) -> str:
        """Scalar twin of :meth:`wrap` over plain Python ints."""
        return f"((({expr}) & {self.mask}) ^ {self.sign}) - {self.sign}"

    def shift_chain(self, expr: str, shifts) -> str:
        for op, amount in shifts:
            if op is Op.SHL:
                if amount >= self.plan.width:  # shifted fully out: zero
                    expr = f"_np.zeros(_n, dtype={self.dtype})"
                else:
                    expr = self.wrap(f"({expr}) << {amount}")
            else:  # arithmetic shift right of an in-range value
                # Clamp: beyond width-1 bits the result saturates to the
                # sign (identical to Python's unbounded >>), and numpy
                # shifts past the element width are undefined.
                expr = f"(({expr}) >> {min(amount, self.plan.width - 1)})"
        return expr

    def shift_chain_scalar(self, expr: str, shifts) -> str:
        for op, amount in shifts:
            if op is Op.SHL:
                if amount >= self.plan.width:
                    expr = "0"
                else:
                    expr = self.wrap_scalar(f"({expr}) << {amount}")
            else:
                expr = f"(({expr}) >> {min(amount, self.plan.width - 1)})"
        return expr

    def render_source(self, sp: SourcePlan) -> tuple[str, str,
                                                     tuple[str, ...]]:
        """(array expression, scalar expression, deps) for a pre-resolved
        operand source (register column plus shift chain); constants stay
        scalar in both renderings."""
        if sp.const is not None:
            return repr(sp.const), repr(sp.const), ()
        name = self.read_slot(f"r{sp.register}")
        return (self.shift_chain(name, sp.shifts),
                self.shift_chain_scalar(name, sp.shifts), (name,))

    def op_expr(self, op: Op, ts: list[str]) -> str:
        wrap = self.wrap
        a = ts[0]
        b = ts[1] if len(ts) > 1 else None
        if op is Op.ADD:
            return wrap(f"{a} + {b}")
        if op is Op.SUB:
            return wrap(f"{a} - {b}")
        if op is Op.MUL:
            return wrap(f"{a} * {b}")
        if op is Op.GT:
            return f"({a} > {b}).astype({self.dtype})"
        if op is Op.LT:
            return f"({a} < {b}).astype({self.dtype})"
        if op is Op.GE:
            return f"({a} >= {b}).astype({self.dtype})"
        if op is Op.LE:
            return f"({a} <= {b}).astype({self.dtype})"
        if op is Op.EQ:
            return f"({a} == {b}).astype({self.dtype})"
        if op is Op.NE:
            return f"({a} != {b}).astype({self.dtype})"
        if op is Op.MUX:
            return f"_np.where({a} != 0, {ts[2]}, {ts[1]})"
        if op is Op.AND:
            return wrap(f"{a} & {b}")
        if op is Op.OR:
            return wrap(f"{a} | {b}")
        if op is Op.XOR:
            return wrap(f"{a} ^ {b}")
        if op is Op.NOT:
            return wrap(f"~{a}")
        raise ValueError(f"cannot vectorize {op!r}")  # pragma: no cover

    def op_expr_scalar(self, op: Op, ts: list[str]) -> str:
        """Scalar twin of :meth:`op_expr` for the hybrid micro-loop."""
        wrap = self.wrap_scalar
        a = ts[0]
        b = ts[1] if len(ts) > 1 else None
        if op is Op.ADD:
            return wrap(f"{a} + {b}")
        if op is Op.SUB:
            return wrap(f"{a} - {b}")
        if op is Op.MUL:
            return wrap(f"{a} * {b}")
        if op is Op.GT:
            return f"int({a} > {b})"
        if op is Op.LT:
            return f"int({a} < {b})"
        if op is Op.GE:
            return f"int({a} >= {b})"
        if op is Op.LE:
            return f"int({a} <= {b})"
        if op is Op.EQ:
            return f"int({a} == {b})"
        if op is Op.NE:
            return f"int({a} != {b})"
        if op is Op.MUX:
            return f"({ts[2]} if {a} != 0 else {ts[1]})"
        if op is Op.AND:
            return wrap(f"{a} & {b}")
        if op is Op.OR:
            return wrap(f"{a} | {b}")
        if op is Op.XOR:
            return wrap(f"{a} ^ {b}")
        if op is Op.NOT:
            return wrap(f"~{a}")
        raise ValueError(f"cannot vectorize {op!r}")  # pragma: no cover

    def popcount(self, prev: str, new: str, guard: str | None,
                 deps: tuple[str, ...]) -> tuple[str, tuple[str, ...]]:
        expr = f"_np.bitwise_count(({prev} ^ {new}) & {self.mask})"
        if guard is not None:
            # Multiplying by the mask is ~7x cheaper than boolean
            # fancy-indexing at 4k-element blocks.
            return f"int(({expr} * {guard}).sum())", deps + (guard,)
        return f"int({expr}.sum())", deps

    def counter_total(self, slot: str,
                      contribs: list[str]) -> tuple[str, tuple[str, ...]]:
        """Expression summing a counter's carried-in value with this
        pass's contributions — a representation hook: a subclass whose
        :meth:`popcount` emits deferred values rather than ints can
        reduce them here in one pass."""
        return " + ".join([f"{slot}__in"] + contribs), tuple(contribs)

    # -- pass symbolic execution ----------------------------------------

    def guard_mask(self, guard) -> tuple[str | None | bool, frozenset]:
        """(mask column name, live term set) for a guard; ``None`` =
        unconditional, ``False`` = provably never enabled (constant
        terms fold at compile time, like the scalar generator's
        short-circuit does at run time)."""
        if not self.pm or guard.unconditional:
            return None, frozenset()
        if guard.never:
            return False, frozenset()
        conds = []
        sconds = []
        live = []
        deps: tuple[str, ...] = ()
        for sp, value in guard.terms:
            if sp.const is not None:
                if bool(sp.const) != bool(value):
                    return False, frozenset()  # contradiction: never
                continue  # term always true: fold away
            expr, sexpr, d = self.render_source(sp)
            conds.append(self.cond_expr(expr, value))
            sconds.append(f"(({sexpr}) != 0)" if value
                          else f"(({sexpr}) == 0)")
            live.append((sp, 1 if value else 0))
            deps += d
        if not conds:
            return None, frozenset()
        return self.stmt(self.name("g"), " & ".join(conds), deps,
                         sexpr=" & ".join(sconds),
                         bool_=True), frozenset(live)

    def run(self) -> str:
        plan = self.plan

        # Clock edge into state 0: input registers load (unconditional).
        for k, (_name, reg) in enumerate(plan.inputs):
            col = self.stmt(f"in{k}", self.input_expr(k), ())
            slot = f"r{reg}"
            prev = self.read_slot(slot)
            self.contrib("_rt", *self.popcount(prev, col, None, (prev, col)))
            self.write_slot(slot, col, None, None)

        # Controller: one FSM cycle per control step, every sample.
        self.contrib("_cc", f"{plan.n_steps} * _n")
        self.contrib("_cl", f"{plan.n_steps * plan.controller_literals} * _n")

        guards: dict[int, str | None | bool] = {}
        gterms: dict[int, frozenset] = {}
        tvalues: dict[int, list[str]] = {}
        for step in plan.steps:
            for start in step.starts:
                g, terms = self.guard_mask(start.guard)
                guards[start.nid], gterms[start.nid] = g, terms
                cls = start.resource.name
                if g is False:
                    self.contrib(f"_id_{cls}", "_n")
                    continue
                if g is not None:
                    self.contrib(f"_id_{cls}", self.count_false(g), (g,))
                is_mux = start.resource is ResourceClass.MUX
                select = start.sources[0] if is_mux else None
                tvs = []
                for port, sp in enumerate(start.sources):
                    expr, sexpr, deps = self.render_source(sp)
                    if sp.const is not None:
                        expr = self.const_column(expr)
                    t = self.stmt(f"t{start.nid}_{port}", expr, deps,
                                  sexpr=sexpr)
                    # Value-path operand: a mux data port is additionally
                    # guarded by its own selection (the port's value only
                    # reaches the result when the select picks its side),
                    # so its producer is provably fresh there even for an
                    # unguarded mux.  A contradictory implied set (guard
                    # requires select==0 while the port needs select==1)
                    # means the port is never observed at all — any
                    # column is valid, so substitute zeros instead of
                    # chasing a stale read into a false recurrence.
                    implied = terms
                    if is_mux and port in (1, 2) and select.const is None:
                        implied = terms | {(select, port - 1)}
                    if sp.const is not None or \
                            (g is None and implied == terms):
                        tvs.append(t)
                    elif _contradictory(implied):
                        tvs.append(self.cse_stmt(
                            "z", self.zero_column(), (), sexpr="0"))
                    else:
                        tvs.append(self.value_read(sp, implied))
                    # Latches are observation-only leaves: their fold can
                    # (and must) carry the true, stale-capable column.
                    latch = f"l{start.unit}_{port}"
                    prev = self.read_slot(latch)
                    self.contrib(f"_ai_{cls}",
                                 *self.popcount(prev, t, g, (prev, t)))
                    self.write_slot(latch, t, g, terms)
                tvalues[start.nid] = tvs
            for end in step.ends:
                g = guards[end.nid]
                if g is False:
                    continue  # never-enabled op: no end event
                cls = end.resource.name
                terms = gterms[end.nid]
                # The result column folds over the value-path operands:
                # identical to folding over the latched columns wherever
                # the result is observed (the op's own guard positions,
                # and — for mux data ports — the selected side).
                x = self.stmt(f"x{end.nid}",
                              self.op_expr(end.op, tvalues[end.nid]),
                              tuple(tvalues[end.nid]),
                              sexpr=self.op_expr_scalar(end.op,
                                                        tvalues[end.nid]))
                fo = f"fo{end.unit}"
                prev = self.read_slot(fo)
                self.contrib(f"_ao_{cls}", *self.popcount(prev, x, g,
                                                          (prev, x)))
                self.write_slot(fo, x, g, terms)
                self.contrib(f"_aa_{cls}",
                             "_n" if g is None else self.count_true(g),
                             () if g is None else (g,))
                dest = f"r{end.dest_register}"
                prev = self.read_slot(dest)
                self.contrib("_rt", *self.popcount(prev, x, g, (prev, x)))
                self.write_slot(dest, x, g, terms)

        # Output columns, read at end of pass.
        out_names = []
        for k, (_name, sp) in enumerate(plan.outputs):
            expr, _sexpr, deps = self.render_source(sp)
            if sp.const is not None:
                expr = self.const_column(expr)
            out_names.append(self.stmt(f"o{k}", expr, deps))

        state_out = self._resolve_state()
        return self._assemble(out_names, state_out)

    # -- cross-vector state resolution ----------------------------------

    def _end_column(self, slot: str) -> str | None:
        """Name of the slot's end-of-pass column (None: never written)."""
        writes = self.writes.get(slot)
        if not writes:
            return None
        if any(guard is None for guard, _t, _v in writes):
            # An unconditional write anchors the pass: the final
            # where-chain is a pure column with no cross-vector term.
            self.end_of[slot] = self.cur[slot]
            return self.cur[slot]
        # All writes guarded: masked-scan recurrence over the batch
        # (each written column is valid at its own guard's positions —
        # all the masked scan ever reads).
        value = writes[0][2]
        for g, _terms, v in writes[1:]:
            value = self.stmt(self.name("v"),
                              self.where_expr(g, v, value), (g, v, value),
                              sexpr=f"({v} if {g} else {value})")
        guards = [g for g, _t, _v in writes]
        mask = self.stmt(self.name("m"), " | ".join(guards), tuple(guards),
                         sexpr=" | ".join(guards), bool_=True)
        expr, deps = self.ffill_expr(value, mask, slot)
        end = self.stmt(f"E_{slot}", expr, deps,
                        sexpr=f"({value} if {mask} else _cy_{slot})",
                        kind="ffill", slot=slot)
        self.end_of[slot] = end
        return end

    def _resolve_state(self) -> list[str]:
        self.stmt("_ar1", "_np.arange(1, _n + 1)", ())
        state_out = []
        for slot in _state_names(self.plan):
            if slot.startswith(("_rt", "_cc", "_cl", "_ai", "_ao", "_aa",
                                "_id")):
                contribs = self.contribs.get(slot)
                if not contribs:
                    state_out.append(f"{slot}__in")
                    continue
                total, deps = self.counter_total(slot, contribs)
                state_out.append(self.stmt(f"{slot}__out", total, deps))
                continue
            end = self._end_column(slot)
            if end is None:
                state_out.append(f"{slot}__in")
            else:
                state_out.append(self.stmt(f"{slot}__out",
                                           self.state_last(end), (end,)))
            if slot in self.start_used:
                if end is None:
                    # Never written this pass: constant across the batch.
                    self.stmt(f"S_{slot}", self.state_const_expr(slot),
                              (), sexpr=f"{slot}__in")
                else:
                    self.stmt(f"S_{slot}", self.state_shift_expr(slot, end),
                              (end,), kind="shift", slot=slot)
        return state_out

    # -- ordering + assembly --------------------------------------------

    def _kahn(self, kept: list[_Stmt], by_target: dict[str, int],
              drop: frozenset = frozenset()) -> list[_Stmt]:
        """Kahn topological sort over ``kept``, stable on emission order.
        Dep edges of statements whose target is in ``drop`` are ignored
        (used to cut recurrent ``S_`` shift statements loose).  Returns
        fewer statements than given when the graph is cyclic."""
        indegree = {s.target: 0 for s in kept}
        dependants: dict[str, list[str]] = {s.target: [] for s in kept}
        for s in kept:
            if s.target in drop:
                continue
            for d in set(s.deps):
                if d in indegree:
                    indegree[s.target] += 1
                    dependants[d].append(s.target)
        ready = [by_target[t] for t, n in indegree.items() if n == 0]
        heapq.heapify(ready)
        ordered: list[_Stmt] = []
        while ready:
            s = self.stmts[heapq.heappop(ready)]
            ordered.append(s)
            for t in dependants[s.target]:
                indegree[t] -= 1
                if indegree[t] == 0:
                    heapq.heappush(ready, by_target[t])
        return ordered

    def _assemble(self, out_names: list[str], state_out: list[str]) -> str:
        plan = self.plan
        by_target = {s.target: i for i, s in enumerate(self.stmts)}
        if len(by_target) != len(self.stmts):  # pragma: no cover - invariant
            raise VectorizationError(f"duplicate SSA target in {plan.name!r}")

        # Dead-code elimination: keep only statements reachable from the
        # outputs and the returned state tuple.
        roots = [n for n in out_names + state_out if n in by_target]
        live: set[str] = set()
        stack = list(roots)
        while stack:
            target = stack.pop()
            if target in live:
                continue
            live.add(target)
            stack.extend(d for d in self.stmts[by_target[target]].deps
                         if d in by_target and d not in live)

        # A leftover statement after the full topological sort means the
        # guarded writes form a genuine cross-vector recurrence cycle: no
        # closed-form masked scan exists, so the recurrent core runs as a
        # scalar micro-loop stitched between two array sections instead.
        kept = [s for s in self.stmts if s.target in live]
        ordered = self._kahn(kept, by_target)
        if len(ordered) != len(kept):
            return self._assemble_hybrid(kept, by_target, out_names,
                                         state_out)

        lines = self._prologue()
        lines += [f"    {s.target} = {s.expr}" for s in ordered]
        return self._epilogue(lines, out_names, state_out)

    backend_tag = "vectorized"

    def _prologue(self) -> list[str]:
        names = _state_names(self.plan)
        return [f"def _run(_m, _state):  "
                f"# {self.backend_tag} from {self.plan.name!r}",
                f"    ({', '.join(f'{n}__in' for n in names)},) = _state",
                "    _n = _m.shape[0]"] + self.prelude_lines()

    def _epilogue(self, lines: list[str], out_names: list[str],
                  state_out: list[str]) -> str:
        outs = ", ".join(self.result_expr(n) for n in out_names)
        if out_names:
            outs += ","
        lines.append(f"    return ({outs}), ({', '.join(state_out)},)")
        return "\n".join(lines) + "\n"

    def _assemble_hybrid(self, kept: list[_Stmt], by_target: dict[str, int],
                         out_names: list[str],
                         state_out: list[str]) -> str:
        """Emit the hybrid array/scalar program for a plan whose guarded
        writes form a cross-vector recurrence.

        Every dependency cycle passes through at least one ``S_<slot>``
        shift statement (the only forward references the symbolic pass
        emits), so the statements split three ways:

        * **prefix** — statements with no transitive dependency on any
          cycle: emitted as array code, exactly as the pure path would.
        * **core** — the cycles plus everything squeezed between them
          (ancestors-of-a-cycle among the cycle-dependent set): lowered
          to scalar Python-int expressions and run row by row, with one
          running carry per recurrent slot replacing the ``S_``/ffill
          closed forms.
        * **suffix** — statements downstream of the core that nothing in
          the core depends on (activity popcounts, output reads, state
          extraction): array code again, over core columns materialized
          from the micro-loop.

        Outputs and every counter stay bit-identical to the compiled
        engine because the scalar expressions are exact unbounded-int
        twins of the wrapped array expressions and the carries replay
        the per-vector sequence the closed forms summarize."""
        plan = self.plan
        # Full-graph sort: what it orders is exactly the acyclic prefix.
        prefix = self._kahn(kept, by_target)
        prefix_targets = {s.target for s in prefix}
        leftover = {s.target for s in kept if s.target not in prefix_targets}

        # Peel the leftover from below (statements no other leftover
        # statement depends on): whatever survives is an ancestor of a
        # cycle — the recurrent core.  The peeled remainder only consumes
        # core values and becomes the array suffix.
        dependants: dict[str, set[str]] = {t: set() for t in leftover}
        for t in leftover:
            for d in set(self.stmts[by_target[t]].deps):
                if d in leftover:
                    dependants[d].add(t)
        stack = [t for t in leftover if not dependants[t]]
        peeled: set[str] = set()
        while stack:
            t = stack.pop()
            peeled.add(t)
            for d in set(self.stmts[by_target[t]].deps):
                if d in leftover and d not in peeled:
                    dependants[d].discard(t)
                    if not dependants[d]:
                        stack.append(d)
        core = leftover - peeled

        # Cutting the core shift statements loose (their scalar form
        # reads the previous row's carry, not this row's end column)
        # breaks every cycle; one stable sort then orders all three
        # sections consistently.
        cut = frozenset(s.target for s in kept
                        if s.kind == "shift" and s.target in core)
        full = self._kahn(kept, by_target, drop=cut)
        if len(full) != len(kept):  # pragma: no cover - invariant
            raise VectorizationError(
                f"design {plan.name!r} has a recurrence not closed by "
                "its shift statements")
        core_stmts = [s for s in full if s.target in core]
        down_stmts = [s for s in full if s.target in peeled]
        pre_stmts = [s for s in full if s.target in prefix_targets]
        for s in core_stmts:  # pragma: no branch
            if s.kind != "shift" and s.sexpr is None:  # pragma: no cover
                raise VectorizationError(
                    f"statement {s.target} in {plan.name!r} has no scalar "
                    "lowering for the recurrent core")

        # Slots whose cross-vector closure now runs in the micro-loop.
        slots = sorted({s.slot for s in core_stmts
                        if s.kind in ("shift", "ffill")})
        self.hybrid = True
        self.scalar_slots = tuple(slots)
        carry_after: dict[str, list[str]] = {}
        for slot in slots:
            end = self.end_of.get(slot)
            if end is None or end not in core:  # pragma: no cover
                raise VectorizationError(
                    f"recurrent slot {slot} of {plan.name!r} has no end "
                    "column inside the scalar core")
            carry_after.setdefault(end, []).append(slot)

        # Array columns the suffix (or the result tuple) reads from the
        # core are materialized row by row; prefix columns the core reads
        # cross the boundary as plain Python lists.
        need: set[str] = {n for n in out_names + state_out if n in core}
        for s in down_stmts:
            need.update(d for d in set(s.deps) if d in core)
        materialized = [s.target for s in core_stmts if s.target in need]
        bounds: list[str] = []
        seen: set[str] = set()
        for s in core_stmts:
            for d in s.deps:
                if d in prefix_targets and d not in seen:
                    seen.add(d)
                    bounds.append(d)

        mapping = {t: f"{t}_s" for t in core}
        mapping.update({d: f"{d}_l[_i]" for d in bounds})
        pattern = re.compile(
            r"\b(" + "|".join(map(re.escape, mapping)) + r")\b")

        def lower(sexpr: str) -> str:
            return pattern.sub(lambda m: mapping[m.group(0)], sexpr)

        lines = self._prologue()
        lines[0] = (f"def _run(_m, _state):  # hybrid vectorized from "
                    f"{plan.name!r}")
        lines += [f"    {s.target} = {s.expr}" for s in pre_stmts]
        lines += [f"    {d}_l = ({d}).tolist()" for d in bounds]
        lines += [f"    _cy_{slot} = {slot}__in" for slot in slots]
        lines += [f"    {t}_l = []" for t in materialized]
        lines.append("    for _i in range(_n):")
        # Shift reads first: they must observe the previous row's carry
        # before any end-column update this row.
        for s in core_stmts:
            if s.kind == "shift":
                lines.append(f"        {s.target}_s = _cy_{s.slot}")
        for s in core_stmts:
            if s.kind == "shift":
                continue
            lines.append(f"        {s.target}_s = {lower(s.sexpr)}")
            for slot in carry_after.get(s.target, ()):
                lines.append(f"        _cy_{slot} = {s.target}_s")
        lines += [f"        {t}_l.append({t}_s)" for t in materialized]
        for t in materialized:
            dtype = "bool" if self.stmts[by_target[t]].bool_ else self.dtype
            lines.append(f"    {t} = _np.asarray({t}_l, dtype={dtype})")
        lines += [f"    {s.target} = {s.expr}" for s in down_stmts]
        return self._epilogue(lines, out_names, state_out)


def generate_vector_source(plan: ExecutionPlan,
                           power_management: bool) -> str:
    """NumPy source of the specialized ``_run(matrix, state)`` runner.

    Plans whose guarded state has no closed-form batch formulation come
    back as a *hybrid* program: array code around a scalar micro-loop
    over just the recurrent statements.  Raises
    :class:`VectorizationError` only for plans beyond the backend's
    int64 width headroom.
    """
    return _VectorCodegen(plan, power_management).run()


# -- the engine ------------------------------------------------------------


@dataclass(frozen=True)
class ArrayBatchResult:
    """Column outputs and merged switching activity of one array batch."""

    outputs: dict[str, np.ndarray]
    activity: ActivityCounter
    samples: int


# (fingerprint, power_management) ->
# (plan, source, runner, hybrid, scalar_slots) — compile-once.
_VECTOR_CACHE = _make_lru()


class VectorizedEngine(_EngineBase):
    """Executes whole vector blocks as NumPy array programs.

    Drop-in for :class:`~repro.sim.engine.CompiledEngine`: same persistent
    state semantics (splitting a sequence into blocks is indistinguishable
    from one long run), same bit-exact outputs and
    :class:`~repro.sim.activity.ActivityCounter`.  Prefer
    :meth:`run_array` with a pre-generated ``(batch, n_inputs)`` matrix
    (see the ``array_*`` builders in :mod:`repro.sim.vectors` /
    :mod:`repro.sim.workloads`) — :meth:`run_batch` accepts vector dicts
    for API parity and converts.
    """

    backend = "vectorized"

    #: Rows per :meth:`run_array` execution chunk; ``None`` runs the
    #: whole batch in one pass.  Subclasses whose working set per value
    #: is compact enough that a tile stays cache-resident (the packed
    #: backend) set this to keep huge Monte-Carlo blocks off main
    #: memory; tiles carry state exactly like consecutive batch calls.
    _tile_rows: int | None = None

    def __init__(self, design: SynthesizedDesign,
                 power_management: bool = True) -> None:
        self.design = design
        self.power_management = power_management
        key = (design_fingerprint(design), power_management)
        cached = _lru_get(_VECTOR_CACHE, key)
        if cached is None:
            plan = cached_plan(design)
            codegen = _VectorCodegen(plan, power_management)
            source = codegen.run()
            namespace: dict[str, object] = {"_np": np, "_ffill": _masked_ffill}
            exec(compile(source, f"<vectorized:{design.graph.name}>", "exec"),
                 namespace)
            cached = (plan, source, namespace["_run"], codegen.hybrid,
                      codegen.scalar_slots)
            _lru_put(_VECTOR_CACHE, key, cached)
        self.plan, self.source, self._run, self.hybrid, self.scalar_slots = \
            cached
        self._init_state()

    def run_array(self, matrix: np.ndarray) -> ArrayBatchResult:
        """Run a ``(batch, n_inputs)`` int64 matrix (column order =
        ``plan.inputs`` order = ``self.input_names``)."""
        matrix = np.asarray(matrix)
        if not np.issubdtype(matrix.dtype, np.integer):
            # The compiled backend rejects non-integer vectors too; a
            # silent float truncation here would break backend parity.
            raise TypeError(
                f"input matrix must have an integer dtype, "
                f"got {matrix.dtype}")
        matrix = np.ascontiguousarray(matrix, dtype=np.int64)
        n_inputs = len(self.plan.inputs)
        if matrix.ndim != 2 or matrix.shape[1] != n_inputs:
            raise ValueError(
                f"expected a (batch, {n_inputs}) input matrix, "
                f"got shape {matrix.shape}")
        if matrix.shape[0] == 0:
            return ArrayBatchResult(
                outputs={name: np.empty(0, dtype=np.int64)
                         for name, _sp in self.plan.outputs},
                activity=ActivityCounter(width=self.plan.width), samples=0)
        before = self._state
        tile = self._tile_rows
        n = matrix.shape[0]
        if tile and n > tile:
            # Chunked execution with state threaded across tiles — the
            # same carry semantics as consecutive run_array calls, so
            # results are bit-identical by construction.  Counters are
            # monotonic state slots, so one before/after delta covers
            # the whole span.
            state = before
            chunks = []
            for start in range(0, n, tile):
                cols, state = self._run(matrix[start:start + tile], state)
                chunks.append(cols)
            after = state
            cols = [np.concatenate([chunk[i] for chunk in chunks])
                    for i in range(len(self.plan.outputs))]
        else:
            cols, after = self._run(matrix, before)
        self._state = after
        self.samples += n
        return ArrayBatchResult(
            outputs={name: col for (name, _sp), col
                     in zip(self.plan.outputs, cols)},
            activity=self._activity_delta(before, after),
            samples=n)

    def run_batch(self, vectors) -> "BatchResult":
        """Run vector dicts (any iterable); converts to one matrix."""
        from repro.sim.engine import BatchResult
        from repro.sim.vectors import vectors_to_array

        matrix = vectors_to_array(vectors, self.input_names)
        result = self.run_array(matrix)
        columns = [col.tolist() for col in result.outputs.values()]
        names = list(result.outputs)
        outputs = [dict(zip(names, row)) for row in zip(*columns)] \
            if columns else [{} for _ in range(result.samples)]
        return BatchResult(outputs=outputs, activity=result.activity)

    def run_many(self, vectors) -> tuple[list[dict[str, int]],
                                         ActivityCounter]:
        """Drop-in signature twin of :meth:`CompiledEngine.run_many`."""
        result = self.run_batch(vectors)
        return result.outputs, result.activity
