"""Input-vector generation for simulation-based power estimation.

The paper validates with "random input vectors"; we provide a seeded
generator (reproducible runs) and an exhaustive enumerator for tiny
widths (used by equivalence tests).  The ``iter_*`` variant streams
vectors lazily — Monte Carlo power estimation draws from it block by
block without materializing a full list.  The ``array_*`` variant
materializes a block as a ``(batch, n_inputs)`` int64 matrix for the
vectorized backend; it draws from the same seeded stream, so the
``array_``, ``iter_`` and list forms produce identical value sequences
at the same seed (what keeps Monte Carlo estimates backend-independent).
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, Sequence

from repro.ir.graph import CDFG


def input_names(graph: CDFG) -> list[str]:
    """Input names of ``graph`` in declaration order (array column order)."""
    return [n.name for n in graph.inputs()]


def vectors_to_array(vectors: Iterable[dict[str, int]],
                     names: Sequence[str]):
    """Pack vector dicts into a ``(batch, len(names))`` int64 matrix.

    Raises the same ``KeyError`` as the batch engines when a vector is
    missing an input.
    """
    import numpy as np

    rows = []
    for vector in vectors:
        try:
            rows.append([vector[name] for name in names])
        except KeyError as e:
            raise KeyError("missing input %r" % (e.args[0],)) from None
    return np.array(rows, dtype=np.int64).reshape(len(rows), len(names))


def iter_random_vectors(graph: CDFG, count: int | None = None,
                        width: int = 8,
                        seed: int = 1996) -> Iterator[dict[str, int]]:
    """Stream uniform random input assignments for ``graph``.

    ``count=None`` streams forever (the Monte Carlo estimator's source);
    the first ``n`` draws are identical to ``random_vectors(graph, n)``
    at the same seed.
    """
    rng = random.Random(seed)
    names = [n.name for n in graph.inputs()]
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    counter = itertools.count() if count is None else range(count)
    for _ in counter:
        yield {name: rng.randint(lo, hi) for name in names}


def random_vectors(graph: CDFG, count: int, width: int = 8,
                   seed: int = 1996) -> list[dict[str, int]]:
    """``count`` uniform random input assignments for ``graph``."""
    return list(iter_random_vectors(graph, count, width=width, seed=seed))


def array_random_vectors(graph: CDFG, count: int, width: int = 8,
                         seed: int = 1996):
    """``count`` seeded random vectors as a ``(count, n_inputs)`` matrix.

    Row ``i`` holds the same values as ``random_vectors(graph, count)[i]``
    at the same seed, in :func:`input_names` column order.
    """
    return vectors_to_array(
        iter_random_vectors(graph, count, width=width, seed=seed),
        input_names(graph))


def exhaustive_vectors(graph: CDFG, width: int = 3) -> list[dict[str, int]]:
    """Every input assignment at a reduced width (keeps the count small)."""
    names = [n.name for n in graph.inputs()]
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    values = range(lo, hi + 1)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(values, repeat=len(names))
    ]


def array_exhaustive_vectors(graph: CDFG, width: int = 3):
    """Every input assignment at a reduced width, as an int64 matrix."""
    return vectors_to_array(exhaustive_vectors(graph, width=width),
                            input_names(graph))
