"""Input-vector generation for simulation-based power estimation.

The paper validates with "random input vectors"; we provide a seeded
generator (reproducible runs) and an exhaustive enumerator for tiny
widths (used by equivalence tests).
"""

from __future__ import annotations

import itertools
import random

from repro.ir.graph import CDFG


def random_vectors(graph: CDFG, count: int, width: int = 8,
                   seed: int = 1996) -> list[dict[str, int]]:
    """``count`` uniform random input assignments for ``graph``."""
    rng = random.Random(seed)
    names = [n.name for n in graph.inputs()]
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return [
        {name: rng.randint(lo, hi) for name in names}
        for _ in range(count)
    ]


def exhaustive_vectors(graph: CDFG, width: int = 3) -> list[dict[str, int]]:
    """Every input assignment at a reduced width (keeps the count small)."""
    names = [n.name for n in graph.inputs()]
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    values = range(lo, hi + 1)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(values, repeat=len(names))
    ]
