"""Input-vector generation for simulation-based power estimation.

The paper validates with "random input vectors"; we provide a seeded
generator (reproducible runs) and an exhaustive enumerator for tiny
widths (used by equivalence tests).  The ``iter_*`` variant streams
vectors lazily — Monte Carlo power estimation draws from it block by
block without materializing a full list.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from repro.ir.graph import CDFG


def iter_random_vectors(graph: CDFG, count: int | None = None,
                        width: int = 8,
                        seed: int = 1996) -> Iterator[dict[str, int]]:
    """Stream uniform random input assignments for ``graph``.

    ``count=None`` streams forever (the Monte Carlo estimator's source);
    the first ``n`` draws are identical to ``random_vectors(graph, n)``
    at the same seed.
    """
    rng = random.Random(seed)
    names = [n.name for n in graph.inputs()]
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    counter = itertools.count() if count is None else range(count)
    for _ in counter:
        yield {name: rng.randint(lo, hi) for name in names}


def random_vectors(graph: CDFG, count: int, width: int = 8,
                   seed: int = 1996) -> list[dict[str, int]]:
    """``count`` uniform random input assignments for ``graph``."""
    return list(iter_random_vectors(graph, count, width=width, seed=seed))


def exhaustive_vectors(graph: CDFG, width: int = 3) -> list[dict[str, int]]:
    """Every input assignment at a reduced width (keeps the count small)."""
    names = [n.name for n in graph.inputs()]
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    values = range(lo, hi + 1)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(values, repeat=len(names))
    ]
