"""Switching-activity accounting for the RTL simulator.

Dynamic power in CMOS is charged per toggled bit.  The counter tracks, per
execution-unit class: operand-latch toggles, output toggles and the number
of activations; plus register-file write toggles and controller cycles.
The power model (``repro.power.simulated``) converts these into weighted
energy the same way DesignPower converts gate toggles into mW.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ops import ResourceClass


def hamming(a: int, b: int, width: int) -> int:
    """Toggled bits between two ``width``-bit two's complement values."""
    mask = (1 << width) - 1
    return ((a ^ b) & mask).bit_count()


def packed_toggles(prev, new, lanes) -> int:
    """Total toggled bits between two bit-sliced packed columns.

    ``prev`` and ``new`` are ``(width, nwords)`` uint64 arrays holding 64
    vectors per word per bit-slice (:mod:`repro.sim.packed`); ``lanes``
    is the ``(nwords,)`` lane mask selecting which vectors count (the
    valid tail mask, optionally AND-ed with a guard mask) — or ``None``
    when every lane counts, which skips the broadcast AND entirely (this
    sits on the hottest per-statement path of the packed backend, and
    batch sizes are usually multiples of 64).  One XOR and one
    population count per word replaces the per-value :func:`hamming`
    loop — the packed backend's whole activity model reduces to this."""
    import numpy as np

    diff = prev ^ new
    if lanes is not None:
        diff &= lanes
    return int(np.bitwise_count(diff).sum())


@dataclass
class ActivityCounter:
    """Accumulated switching activity of one simulation run."""

    width: int = 8
    fu_input_toggles: dict[ResourceClass, int] = field(default_factory=dict)
    fu_output_toggles: dict[ResourceClass, int] = field(default_factory=dict)
    fu_activations: dict[ResourceClass, int] = field(default_factory=dict)
    fu_idles: dict[ResourceClass, int] = field(default_factory=dict)
    register_toggles: int = 0
    controller_cycles: int = 0
    controller_literals: int = 0

    def record_execution(self, cls: ResourceClass, input_toggles: int,
                         output_toggles: int) -> None:
        self.fu_activations[cls] = self.fu_activations.get(cls, 0) + 1
        self.fu_input_toggles[cls] = \
            self.fu_input_toggles.get(cls, 0) + input_toggles
        self.fu_output_toggles[cls] = \
            self.fu_output_toggles.get(cls, 0) + output_toggles

    def record_idle(self, cls: ResourceClass) -> None:
        """A scheduled op whose latches stayed disabled (shut down)."""
        self.fu_idles[cls] = self.fu_idles.get(cls, 0) + 1

    def record_register_write(self, toggles: int) -> None:
        self.register_toggles += toggles

    def record_controller_cycle(self, literals: int) -> None:
        self.controller_cycles += 1
        self.controller_literals += literals

    def total_activations(self) -> int:
        return sum(self.fu_activations.values())

    def total_idles(self) -> int:
        return sum(self.fu_idles.values())

    def merge(self, other: "ActivityCounter") -> None:
        """Accumulate another run's counts into this one."""
        for src, dst in (
            (other.fu_input_toggles, self.fu_input_toggles),
            (other.fu_output_toggles, self.fu_output_toggles),
            (other.fu_activations, self.fu_activations),
            (other.fu_idles, self.fu_idles),
        ):
            for cls, n in src.items():
                dst[cls] = dst.get(cls, 0) + n
        self.register_toggles += other.register_toggles
        self.controller_cycles += other.controller_cycles
        self.controller_literals += other.controller_literals
