"""Cycle-accurate RTL simulation with switching-activity accounting."""

from repro.sim.activity import ActivityCounter, hamming
from repro.sim.engine import (
    BatchResult,
    CompiledEngine,
    ExecutionPlan,
    compile_plan,
    generate_source,
)
from repro.sim.reference import evaluate, evaluate_all
from repro.sim.simulator import RTLSimulator, SampleResult
from repro.sim.vectors import (
    exhaustive_vectors,
    iter_random_vectors,
    random_vectors,
)
from repro.sim.workloads import (
    balanced_condition_vectors,
    gcd_trace_vectors,
    iter_balanced_condition_vectors,
    iter_gcd_trace_vectors,
)

__all__ = [
    "ActivityCounter",
    "BatchResult",
    "CompiledEngine",
    "ExecutionPlan",
    "RTLSimulator",
    "SampleResult",
    "balanced_condition_vectors",
    "compile_plan",
    "evaluate",
    "evaluate_all",
    "exhaustive_vectors",
    "gcd_trace_vectors",
    "generate_source",
    "hamming",
    "iter_balanced_condition_vectors",
    "iter_gcd_trace_vectors",
    "iter_random_vectors",
    "random_vectors",
]
