"""Cycle-accurate RTL simulation with switching-activity accounting."""

from repro.sim.activity import ActivityCounter, hamming
from repro.sim.reference import evaluate, evaluate_all
from repro.sim.simulator import RTLSimulator, SampleResult
from repro.sim.vectors import exhaustive_vectors, random_vectors
from repro.sim.workloads import balanced_condition_vectors, gcd_trace_vectors

__all__ = [
    "ActivityCounter",
    "RTLSimulator",
    "SampleResult",
    "balanced_condition_vectors",
    "evaluate",
    "evaluate_all",
    "exhaustive_vectors",
    "gcd_trace_vectors",
    "hamming",
    "random_vectors",
]
