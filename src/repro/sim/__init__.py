"""Cycle-accurate RTL simulation with switching-activity accounting."""

from repro.sim.activity import ActivityCounter, hamming, packed_toggles
from repro.sim.backend import BACKENDS, create_engine, numpy_available
from repro.sim.engine import (
    BatchResult,
    CompiledEngine,
    ExecutionPlan,
    clear_compile_caches,
    compile_plan,
    cached_plan,
    design_fingerprint,
    generate_source,
)
from repro.sim.reference import evaluate, evaluate_all
from repro.sim.simulator import RTLSimulator, SampleResult
from repro.sim.vectors import (
    array_exhaustive_vectors,
    array_random_vectors,
    exhaustive_vectors,
    input_names,
    iter_random_vectors,
    random_vectors,
    vectors_to_array,
)
from repro.sim.workloads import (
    array_balanced_condition_vectors,
    array_gcd_trace_vectors,
    balanced_condition_vectors,
    gcd_trace_vectors,
    iter_balanced_condition_vectors,
    iter_gcd_trace_vectors,
)

__all__ = [
    "ActivityCounter",
    "BACKENDS",
    "BatchResult",
    "CompiledEngine",
    "ExecutionPlan",
    "RTLSimulator",
    "SampleResult",
    "array_balanced_condition_vectors",
    "array_exhaustive_vectors",
    "array_gcd_trace_vectors",
    "array_random_vectors",
    "balanced_condition_vectors",
    "cached_plan",
    "clear_compile_caches",
    "compile_plan",
    "create_engine",
    "design_fingerprint",
    "evaluate",
    "evaluate_all",
    "exhaustive_vectors",
    "gcd_trace_vectors",
    "generate_source",
    "hamming",
    "input_names",
    "iter_balanced_condition_vectors",
    "iter_gcd_trace_vectors",
    "iter_random_vectors",
    "numpy_available",
    "packed_toggles",
    "random_vectors",
    "vectors_to_array",
]

try:  # the vectorized backend needs numpy; everything above does not
    from repro.sim.packed import (  # noqa: F401
        PackedEngine,
        PackingError,
        generate_packed_source,
    )
    from repro.sim.vectorized import (  # noqa: F401
        ArrayBatchResult,
        VectorizationError,
        VectorizedEngine,
        generate_vector_source,
    )
except ImportError:  # pragma: no cover - numpy is a declared dependency
    pass
else:
    __all__ += [
        "ArrayBatchResult",
        "PackedEngine",
        "PackingError",
        "VectorizationError",
        "VectorizedEngine",
        "generate_packed_source",
        "generate_vector_source",
    ]
