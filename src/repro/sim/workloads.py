"""Workload-shaped input vectors.

Uniform random vectors (the paper's validation method) are right for
dataflow circuits like dealer/vender/cordic, but iterative circuits see a
very particular input distribution: the values their own outputs feed back.
``gcd_trace_vectors`` replays real GCD runs — every (a, b) pair an
iterating implementation would actually present to the circuit, including
the terminating equal pair — which is the honest way to exercise gcd's
done-branch in power simulation.

Each workload comes in three forms: an ``iter_*`` generator that streams
vectors lazily (what the batch engine and the Monte Carlo estimator
consume), a list-returning wrapper, and an ``array_*`` builder that
materializes the identical sequence as a ``(batch, n_inputs)`` int64
matrix for the vectorized backend.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator

from repro.ir.graph import CDFG
from repro.sim.reference import evaluate
from repro.sim.vectors import input_names, vectors_to_array


def iter_gcd_trace_vectors(graph: CDFG, n_runs: int | None = 32,
                           seed: int = 1996, width: int = 8,
                           max_iterations: int = 64,
                           ) -> Iterator[dict[str, int]]:
    """Stream input pairs from complete GCD computations, run by run.

    ``graph`` must be the gcd benchmark (inputs ``a``/``b``; outputs
    ``gcd``/``next_b``/``done``).  Each run starts from random positive
    operands and iterates the circuit until the done flag rises, yielding
    every intermediate input pair (the terminating pair included twice:
    once when detected, once as the final state — matching how the FSM
    would see it).  A run is also cut off after ``max_iterations`` pairs.
    ``n_runs=None`` streams runs forever.
    """
    rng = random.Random(seed)
    hi = (1 << (width - 1)) - 1
    runs = itertools.count() if n_runs is None else range(n_runs)
    for _ in runs:
        a = rng.randint(1, hi)
        b = rng.randint(1, hi)
        for _ in range(max_iterations):
            yield {"a": a, "b": b}
            out = evaluate(graph, {"a": a, "b": b}, width=width)
            if out["done"]:
                break
            a, b = out["gcd"], out["next_b"]
            if a <= 0 or b <= 0:  # defensive: malformed circuit variant
                break


def gcd_trace_vectors(graph: CDFG, n_runs: int = 32, seed: int = 1996,
                      width: int = 8,
                      max_iterations: int = 64) -> list[dict[str, int]]:
    """Input pairs from ``n_runs`` complete GCD computations."""
    return list(iter_gcd_trace_vectors(
        graph, n_runs, seed=seed, width=width,
        max_iterations=max_iterations))


def iter_balanced_condition_vectors(
        graph: CDFG, count: int | None = None, seed: int = 1996,
        width: int = 8,
        equal_fraction: float = 0.5) -> Iterator[dict[str, int]]:
    """Stream two-input vectors where a chosen fraction of pairs are equal.

    Implements the paper's Table II assumption ("each multiplexor has equal
    probability of selecting any of its inputs") as an actual stimulus for
    equality-tested circuits like gcd: with ``equal_fraction=0.5`` the
    done-condition is true half the time, so the simulated savings should
    approach the static model's prediction.  ``count=None`` streams
    forever; bad ``equal_fraction`` raises eagerly, at call time.
    """
    if not 0.0 <= equal_fraction <= 1.0:
        raise ValueError(f"equal_fraction {equal_fraction} outside [0, 1]")
    names = [n.name for n in graph.inputs()]

    def generate() -> Iterator[dict[str, int]]:
        rng = random.Random(seed)
        hi = (1 << (width - 1)) - 1
        counter = itertools.count() if count is None else range(count)
        for _ in counter:
            base = rng.randint(1, hi)
            vector = {name: rng.randint(1, hi) for name in names}
            if rng.random() < equal_fraction:
                vector = {name: base for name in names}
            yield vector

    return generate()


def balanced_condition_vectors(graph: CDFG, count: int = 256,
                               seed: int = 1996, width: int = 8,
                               equal_fraction: float = 0.5) -> list[dict[str, int]]:
    """Two-input vectors where a chosen fraction of pairs are equal."""
    return list(iter_balanced_condition_vectors(
        graph, count, seed=seed, width=width,
        equal_fraction=equal_fraction))


def array_gcd_trace_vectors(graph: CDFG, n_runs: int = 32, seed: int = 1996,
                            width: int = 8, max_iterations: int = 64):
    """The :func:`gcd_trace_vectors` sequence as an int64 input matrix."""
    return vectors_to_array(
        iter_gcd_trace_vectors(graph, n_runs, seed=seed, width=width,
                               max_iterations=max_iterations),
        input_names(graph))


def array_balanced_condition_vectors(graph: CDFG, count: int = 256,
                                     seed: int = 1996, width: int = 8,
                                     equal_fraction: float = 0.5):
    """The :func:`balanced_condition_vectors` sequence as an input matrix."""
    return vectors_to_array(
        iter_balanced_condition_vectors(graph, count, seed=seed, width=width,
                                        equal_fraction=equal_fraction),
        input_names(graph))
