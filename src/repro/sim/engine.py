"""Compiled batch simulation engine.

The interpreted :class:`~repro.sim.simulator.RTLSimulator` resolves every
operand through the graph (``resolve_source``), evaluates guards against a
freshly built driver-value dict and dispatches each opcode through an
if-chain — per operand, per step, per vector.  That is the hot path of
``measure_power`` and every Table III regeneration.

This module compiles a :class:`~repro.rtl.design.SynthesizedDesign` once
into a flat :class:`ExecutionPlan` — pre-resolved operand sources
(register index / folded constant / shift chain), per-step start/end op
tuples, guard-term drivers and FU latch ports as state-array slots — and
then specializes the plan into straight-line Python (one generated
``_run`` function per design, built with :func:`exec`).  Register file,
input latches, FU outputs and all activity counters live in one flat
state tuple that persists across batches, so switching activity between
consecutive vectors — and between consecutive *batches* — is modelled
exactly like one long interpreted run.

The engine is bit-for-bit equivalent to the legacy simulator: the same
outputs and the same merged :class:`~repro.sim.activity.ActivityCounter`
(including which resource-class keys exist).  The differential property
tests in ``tests/sim/test_engine_differential.py`` pin that equivalence
against both the interpreter and the functional reference model.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.alloc.lifetimes import resolve_source
from repro.ir.ops import Op, OpSemantics, ResourceClass
from repro.rtl.design import SynthesizedDesign
from repro.sim.activity import ActivityCounter


# -- the flat execution plan ----------------------------------------------


@dataclass(frozen=True)
class SourcePlan:
    """One pre-resolved operand source.

    Either a compile-time constant (wiring shifts over CONST roots are
    folded away entirely) or a register index plus the shift chain to
    apply to the registered value at read time.
    """

    const: int | None = None
    register: int | None = None
    shifts: tuple[tuple[Op, int], ...] = ()


@dataclass(frozen=True)
class GuardPlan:
    """A node's load guard in source-plan terms.

    ``terms`` are (driver source, required truthiness) conjuncts;
    ``never`` marks a contradictory guard whose op is never enabled.
    """

    terms: tuple[tuple[SourcePlan, int], ...] = ()
    never: bool = False

    @property
    def unconditional(self) -> bool:
        return not self.terms and not self.never


@dataclass(frozen=True)
class OpStart:
    """Operand latching of one op at its start step."""

    nid: int
    resource: ResourceClass
    unit: int                        # ordinal into the design's unit list
    guard: GuardPlan
    sources: tuple[SourcePlan, ...]  # one per operand port


@dataclass(frozen=True)
class OpEnd:
    """Evaluation + result write-back of one op at its end step."""

    nid: int
    resource: ResourceClass
    unit: int
    op: Op
    n_operands: int
    dest_register: int


@dataclass(frozen=True)
class StepPlan:
    starts: tuple[OpStart, ...] = ()
    ends: tuple[OpEnd, ...] = ()


@dataclass(frozen=True)
class ExecutionPlan:
    """Everything the generated runner needs, flattened and index-bound."""

    name: str
    width: int
    n_steps: int
    controller_literals: int
    inputs: tuple[tuple[str, int], ...]          # (name, register index)
    outputs: tuple[tuple[str, SourcePlan], ...]  # (name, source)
    steps: tuple[StepPlan, ...] = ()
    registers: tuple[int, ...] = ()              # register indices in use
    n_units: int = 0
    latch_ports: tuple[tuple[int, int], ...] = ()  # (unit ordinal, port)
    classes: tuple[ResourceClass, ...] = ()      # in first-appearance order


def compile_plan(design: SynthesizedDesign) -> ExecutionPlan:
    """Flatten ``design`` into an :class:`ExecutionPlan`.

    All graph traversal — wiring resolution, guard lookup, schedule
    grouping, unit/register binding — happens here, once; the runner
    never touches the graph again.
    """
    graph = design.graph
    schedule = design.schedule
    semantics = OpSemantics(width=design.width)
    registers = tuple(sorted(
        {reg.index for reg in set(design.registers.assignment.values())}))
    unit_ordinal = {unit: i for i, unit in enumerate(design.binding.units)}

    def source_plan(operand: int) -> SourcePlan:
        ref = resolve_source(graph, operand)
        root = graph.node(ref.root)
        if root.op is Op.CONST:
            value = semantics.wrap(root.value)
            for op, amount in ref.shifts:
                value = semantics.evaluate(op, [value, amount])
            return SourcePlan(const=value)
        return SourcePlan(
            register=design.registers.register_of(ref.root).index,
            shifts=ref.shifts)

    def guard_plan(nid: int) -> GuardPlan:
        guard = design.guards[nid]
        if guard.never:
            return GuardPlan(never=True)
        return GuardPlan(terms=tuple(
            (source_plan(term.driver), term.value) for term in guard.terms))

    # Group ops by start/end step in graph-operations order, exactly like
    # the interpreter builds its event tables.
    starts: dict[int, list[OpStart]] = {}
    ends: dict[int, list[OpEnd]] = {}
    latch_ports: dict[tuple[int, int], None] = {}
    classes: dict[ResourceClass, None] = {}
    for node in graph.operations():
        step = schedule.step_of(node.nid)
        unit = unit_ordinal[design.binding.unit_of(node.nid)]
        classes.setdefault(node.resource, None)
        sources = tuple(source_plan(p) for p in node.operands)
        for port in range(len(sources)):
            latch_ports.setdefault((unit, port), None)
        starts.setdefault(step, []).append(OpStart(
            nid=node.nid, resource=node.resource, unit=unit,
            guard=guard_plan(node.nid), sources=sources))
        ends.setdefault(step + node.latency - 1, []).append(OpEnd(
            nid=node.nid, resource=node.resource, unit=unit, op=node.op,
            n_operands=len(sources),
            dest_register=design.registers.register_of(node.nid).index))

    steps = tuple(
        StepPlan(starts=tuple(starts.get(step, ())),
                 ends=tuple(ends.get(step, ())))
        for step in range(schedule.n_steps))
    return ExecutionPlan(
        name=graph.name,
        width=design.width,
        n_steps=schedule.n_steps,
        controller_literals=design.controller.literal_count,
        inputs=tuple((n.name, design.registers.register_of(n.nid).index)
                     for n in graph.inputs()),
        outputs=tuple((n.name, source_plan(n.operands[0]))
                      for n in graph.outputs()),
        steps=steps,
        registers=registers,
        n_units=len(unit_ordinal),
        latch_ports=tuple(latch_ports),
        classes=tuple(classes),
    )


# -- code generation -------------------------------------------------------

# Activity-counter state variables, in the order they appear per class.
_CLASS_COUNTERS = ("_ai", "_ao", "_aa", "_id")


def _state_names(plan: ExecutionPlan) -> tuple[str, ...]:
    names = [f"r{i}" for i in plan.registers]
    names += [f"l{u}_{p}" for u, p in plan.latch_ports]
    names += [f"fo{u}" for u in range(plan.n_units)]
    names += ["_rt", "_cc", "_cl"]
    for cls in plan.classes:
        names += [f"{prefix}_{cls.name}" for prefix in _CLASS_COUNTERS]
    return tuple(names)


def _render_source(sp: SourcePlan, mask: int, sign: int) -> str:
    if sp.const is not None:
        return repr(sp.const)
    expr = f"r{sp.register}"
    for op, amount in sp.shifts:
        if op is Op.SHL:
            expr = f"(((({expr}) << {amount}) & {mask}) ^ {sign}) - {sign}"
        else:  # arithmetic shift right of an in-range value stays in range
            expr = f"(({expr}) >> {amount})"
    return expr


def _render_op(op: Op, operands: list[str], mask: int, sign: int) -> str:
    def wrap(expr: str) -> str:
        return f"((({expr}) & {mask}) ^ {sign}) - {sign}"

    a = operands[0]
    b = operands[1] if len(operands) > 1 else None
    if op is Op.ADD:
        return wrap(f"{a} + {b}")
    if op is Op.SUB:
        return wrap(f"{a} - {b}")
    if op is Op.MUL:
        return wrap(f"{a} * {b}")
    if op is Op.GT:
        return f"(1 if {a} > {b} else 0)"
    if op is Op.LT:
        return f"(1 if {a} < {b} else 0)"
    if op is Op.GE:
        return f"(1 if {a} >= {b} else 0)"
    if op is Op.LE:
        return f"(1 if {a} <= {b} else 0)"
    if op is Op.EQ:
        return f"(1 if {a} == {b} else 0)"
    if op is Op.NE:
        return f"(1 if {a} != {b} else 0)"
    if op is Op.MUX:
        return f"({operands[2]} if {a} else {operands[1]})"
    if op is Op.AND:
        return wrap(f"{a} & {b}")
    if op is Op.OR:
        return wrap(f"{a} | {b}")
    if op is Op.XOR:
        return wrap(f"{a} ^ {b}")
    if op is Op.NOT:
        return wrap(f"~{a}")
    raise ValueError(f"cannot compile {op!r}")  # pragma: no cover


def generate_source(plan: ExecutionPlan, power_management: bool) -> str:
    """Python source of the specialized ``_run(vectors, state)`` runner."""
    mask = (1 << plan.width) - 1
    sign = 1 << (plan.width - 1)
    names = _state_names(plan)

    def render(sp: SourcePlan) -> str:
        return _render_source(sp, mask, sign)

    guards_by_nid = {start.nid: start.guard
                     for step in plan.steps for start in step.starts}
    lines: list[str] = []
    emit = lines.append
    emit(f"def _run(_vectors, _state):  # compiled from {plan.name!r}")
    emit(f"    ({', '.join(names)},) = _state")
    # Guard-activity flags for gated ops (reset by construction each run).
    guarded = {
        nid for nid, guard in guards_by_nid.items()
        if power_management and not guard.unconditional and not guard.never
    }
    if guarded:
        emit("    " + " = ".join(f"g{nid}" for nid in sorted(guarded))
             + " = False")
    emit("    _outs = []")
    emit("    _append = _outs.append")
    emit("    for _v in _vectors:")

    # Clock edge into state 0: input registers load.
    emit("        try:")
    for k, (name, _reg) in enumerate(plan.inputs):
        emit(f"            _in{k} = ((_v[{name!r}] & {mask}) ^ {sign})"
             f" - {sign}")
    if not plan.inputs:
        emit("            pass")
    emit("        except KeyError as _e:")
    emit("            raise KeyError('missing input %r' % (_e.args[0],))"
         " from None")
    for k, (_name, reg) in enumerate(plan.inputs):
        emit(f"        _rt += ((r{reg} ^ _in{k}) & {mask}).bit_count()"
             f"; r{reg} = _in{k}")

    # Controller: one FSM cycle per control step, every sample.
    emit(f"        _cc += {plan.n_steps}")
    emit(f"        _cl += {plan.n_steps * plan.controller_literals}")

    for step_index, step in enumerate(plan.steps):
        if step.starts or step.ends:
            emit(f"        # step {step_index}")
        for start in step.starts:
            gated = power_management and not start.guard.unconditional
            if power_management and start.guard.never:
                emit(f"        _id_{start.resource.name} += 1")
                continue
            indent = "        "
            if gated:
                cond = " and ".join(
                    f"({render(src)})" if value else f"(not ({render(src)}))"
                    for src, value in start.guard.terms)
                emit(f"        if {cond}:")
                indent += "    "
            ts = [f"t{start.nid}_{p}" for p in range(len(start.sources))]
            for t, src in zip(ts, start.sources):
                emit(f"{indent}{t} = {render(src)}")
            toggles = " + ".join(
                f"((l{start.unit}_{p} ^ {t}) & {mask}).bit_count()"
                for p, t in enumerate(ts))
            emit(f"{indent}_ai_{start.resource.name} += {toggles}")
            emit(indent + "; ".join(
                f"l{start.unit}_{p} = {t}" for p, t in enumerate(ts)))
            if gated:
                emit(f"{indent}g{start.nid} = True")
                emit(f"        else:")
                emit(f"            _id_{start.resource.name} += 1")
        for end in step.ends:
            if power_management and guards_by_nid[end.nid].never:
                continue  # never-enabled op: no end event
            indent = "        "
            if end.nid in guarded:
                emit(f"        if g{end.nid}:")
                indent += "    "
                emit(f"{indent}g{end.nid} = False")
            ts = [f"t{end.nid}_{p}" for p in range(end.n_operands)]
            emit(f"{indent}_x = {_render_op(end.op, ts, mask, sign)}")
            emit(f"{indent}_ao_{end.resource.name} += "
                 f"((fo{end.unit} ^ _x) & {mask}).bit_count()"
                 f"; fo{end.unit} = _x")
            emit(f"{indent}_aa_{end.resource.name} += 1")
            emit(f"{indent}_rt += ((r{end.dest_register} ^ _x) & {mask})"
                 f".bit_count(); r{end.dest_register} = _x")

    out_items = ", ".join(
        f"{name!r}: {render(src)}" for name, src in plan.outputs)
    emit(f"        _append({{{out_items}}})")
    emit(f"    return _outs, ({', '.join(names)},)")
    return "\n".join(lines) + "\n"


# -- compile-once caches ---------------------------------------------------

# ``CompiledEngine`` used to recompile the plan and regenerate source on
# every construction.  Designs are immutable once elaborated, so plans,
# generated sources and exec-compiled runners are cached module-wide,
# keyed by a content fingerprint of the design — two equal designs built
# independently (e.g. the same exploration point revisited by an
# ``explore()`` worker process) share one compilation.

_LRU_MAX = 512

# Every cache built with _make_lru registers here so
# clear_compile_caches() can flush the vectorized backend's runner cache
# too without a circular import.
_ALL_CACHES: list[OrderedDict] = []


def _make_lru() -> OrderedDict:
    cache: OrderedDict = OrderedDict()
    _ALL_CACHES.append(cache)
    return cache


def _lru_get(cache: OrderedDict, key):
    entry = cache.get(key)
    if entry is not None:
        cache.move_to_end(key)
    return entry


def _lru_put(cache: OrderedDict, key, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > _LRU_MAX:
        cache.popitem(last=False)


_PLAN_CACHE = _make_lru()    # fingerprint -> ExecutionPlan
_RUNNER_CACHE = _make_lru()  # (fingerprint, pm) -> (plan, source, runner)


def design_fingerprint(design: SynthesizedDesign) -> str:
    """Stable content hash of everything plan compilation reads.

    Covers the graph, schedule, unit binding, register assignment,
    guards, controller complexity and datapath width; memoized on the
    design instance (designs are treated as immutable once elaborated).
    """
    cached = design.__dict__.get("_sim_fingerprint")
    if cached is not None:
        return cached
    from repro.ir.serialize import graph_to_dict

    payload = {
        "graph": graph_to_dict(design.graph),
        "width": design.width,
        "n_steps": design.schedule.n_steps,
        "start": sorted(design.schedule.start.items()),
        "binding": sorted(
            (nid, unit.resource.name, unit.index)
            for nid, unit in design.binding.assignment.items()),
        "registers": sorted(
            (nid, reg.index)
            for nid, reg in design.registers.assignment.items()),
        "guards": sorted(
            (nid, guard.never,
             [(t.driver, t.value) for t in guard.terms])
            for nid, guard in design.guards.items()),
        "controller_literals": design.controller.literal_count,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    fingerprint = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    design.__dict__["_sim_fingerprint"] = fingerprint
    return fingerprint


def cached_plan(design: SynthesizedDesign) -> ExecutionPlan:
    """The design's :class:`ExecutionPlan`, compiled at most once per
    content fingerprint (shared by the compiled and vectorized backends)."""
    key = design_fingerprint(design)
    plan = _lru_get(_PLAN_CACHE, key)
    if plan is None:
        plan = compile_plan(design)
        _lru_put(_PLAN_CACHE, key, plan)
    return plan


def clear_compile_caches() -> None:
    """Drop all cached plans and generated runners, every backend's
    (mainly for tests)."""
    for cache in _ALL_CACHES:
        cache.clear()


# -- the engine ------------------------------------------------------------


@dataclass(frozen=True)
class BatchResult:
    """Outputs and merged switching activity of one vector batch."""

    outputs: list[dict[str, int]]
    activity: ActivityCounter

    @property
    def samples(self) -> int:
        return len(self.outputs)


class _EngineBase:
    """State plumbing shared by the compiled and vectorized backends:
    one flat tuple of ints holding hardware state plus activity counters,
    persisted across batches, with delta-based activity accounting."""

    plan: ExecutionPlan

    # Which backend name :func:`repro.sim.backend.create_engine` resolved
    # to when it built this engine; ``None`` for engines constructed
    # directly.  Surfaced on power results and explore points so ``auto``
    # and ``packed`` resolutions are observable instead of silent.
    chosen_backend: str | None = None

    def _init_state(self) -> None:
        self._names = _state_names(self.plan)
        self._index = {name: i for i, name in enumerate(self._names)}
        self._state: tuple[int, ...] = tuple(0 for _ in self._names)
        self.samples = 0

    @property
    def input_names(self) -> tuple[str, ...]:
        """Input names in plan order (the column order of input arrays)."""
        return tuple(name for name, _reg in self.plan.inputs)

    # -- activity accounting -------------------------------------------

    def _delta(self, before: tuple[int, ...], after: tuple[int, ...],
               name: str) -> int:
        i = self._index[name]
        return after[i] - before[i]

    def _activity_delta(self, before: tuple[int, ...],
                        after: tuple[int, ...]) -> ActivityCounter:
        counter = ActivityCounter(width=self.plan.width)
        counter.register_toggles = self._delta(before, after, "_rt")
        counter.controller_cycles = self._delta(before, after, "_cc")
        counter.controller_literals = self._delta(before, after, "_cl")
        for cls in self.plan.classes:
            activations = self._delta(before, after, f"_aa_{cls.name}")
            if activations:
                # Keys exist exactly when the interpreter would create
                # them: an enabled start always reaches its end event.
                counter.fu_input_toggles[cls] = self._delta(
                    before, after, f"_ai_{cls.name}")
                counter.fu_output_toggles[cls] = self._delta(
                    before, after, f"_ao_{cls.name}")
                counter.fu_activations[cls] = activations
            idles = self._delta(before, after, f"_id_{cls.name}")
            if idles:
                counter.fu_idles[cls] = idles
        return counter

    def state(self) -> dict[str, int]:
        """Named snapshot of the persistent state (debug/test aid)."""
        return dict(zip(self._names, self._state))

    def reset(self) -> None:
        """Zero all hardware state and counters (cold power-up)."""
        self._state = tuple(0 for _ in self._names)
        self.samples = 0


class CompiledEngine(_EngineBase):
    """Executes vector batches against a compiled design.

    Hardware state (registers, input latches, FU outputs) persists across
    :meth:`run_batch` calls, so splitting one vector sequence into many
    batches is indistinguishable from one big batch — the property Monte
    Carlo estimation relies on.

    Plan compilation, source generation and the exec-compiled runner are
    cached module-wide by design fingerprint, so constructing many
    engines for equal designs compiles exactly once.
    """

    backend = "compiled"

    def __init__(self, design: SynthesizedDesign,
                 power_management: bool = True) -> None:
        self.design = design
        self.power_management = power_management
        key = (design_fingerprint(design), power_management)
        cached = _lru_get(_RUNNER_CACHE, key)
        if cached is None:
            plan = cached_plan(design)
            source = generate_source(plan, power_management)
            namespace: dict[str, object] = {}
            exec(compile(source, f"<engine:{design.graph.name}>", "exec"),
                 namespace)
            cached = (plan, source, namespace["_run"])
            _lru_put(_RUNNER_CACHE, key, cached)
        self.plan, self.source, self._run = cached
        self._init_state()

    def run_batch(self, vectors: Iterable[dict[str, int]]) -> BatchResult:
        """Run ``vectors`` (any iterable, lists or streams) in sequence."""
        before = self._state
        outputs, after = self._run(vectors, before)
        self._state = after
        self.samples += len(outputs)
        return BatchResult(outputs=outputs,
                           activity=self._activity_delta(before, after))

    def run_many(self, vectors: Iterable[dict[str, int]]) -> tuple[
            list[dict[str, int]], ActivityCounter]:
        """Drop-in signature twin of :meth:`RTLSimulator.run_many`."""
        result = self.run_batch(vectors)
        return result.outputs, result.activity
