"""Text reports for synthesis results.

``full_report`` renders everything a designer would want to inspect after
a run: the PM decision log, the schedule as a step table, execution-unit
utilization, the register map with lifetimes, controller statistics and
the power estimates.  Used by the CLI and handy in notebooks/tests.
"""

from __future__ import annotations

from repro.core.report import describe_decisions
from repro.pipeline.result import SynthesisResult
from repro.power.static import SelectModel, static_power
from repro.power.weights import PowerWeights


def schedule_gantt(result: SynthesisResult) -> str:
    """Unit-by-step occupancy chart ('.' idle, '#' busy, '?' guarded)."""
    design = result.design
    schedule = result.schedule
    graph = design.graph
    lines = ["unit      " + " ".join(f"s{i + 1:<2d}" for i in
                                     range(schedule.n_steps))]
    for unit in design.binding.units:
        cells = ["..."] * schedule.n_steps
        for nid in design.binding.ops_on(unit):
            node = graph.node(nid)
            start = schedule.step_of(nid)
            guarded = not design.guards[nid].is_unconditional
            mark = node.label()[:3]
            if guarded:
                mark = mark.upper() + "?" if len(mark) < 3 else mark[:2] + "?"
            for step in range(start, start + node.latency):
                cells[step] = f"{mark:<3.3s}"
        lines.append(f"{unit.name:<9s} " + " ".join(cells))
    return "\n".join(lines)


def register_map(result: SynthesisResult) -> str:
    """Register -> values with lifetimes."""
    design = result.design
    graph = design.graph
    lines = []
    registers = sorted(set(design.registers.assignment.values()),
                       key=lambda r: r.index)
    for register in registers:
        values = design.registers.values_in(register)
        parts = []
        for value in values:
            lifetime = design.registers.lifetimes[value]
            parts.append(f"{graph.node(value).label()}"
                         f"[{lifetime.born}..{lifetime.last_read}]")
        lines.append(f"  {register.name}: " + ", ".join(parts))
    return "\n".join(lines)


def utilization(result: SynthesisResult) -> dict[str, float]:
    """Fraction of steps each unit is busy."""
    design = result.design
    schedule = result.schedule
    graph = design.graph
    usage: dict[str, float] = {}
    for unit in design.binding.units:
        busy = sum(graph.node(nid).latency
                   for nid in design.binding.ops_on(unit))
        usage[unit.name] = busy / schedule.n_steps
    return usage


def full_report(result: SynthesisResult,
                weights: PowerWeights | None = None,
                selects: SelectModel | None = None) -> str:
    """The complete human-readable synthesis report."""
    weights = weights if weights is not None else PowerWeights()
    selects = selects if selects is not None else SelectModel()
    design = result.design
    sections = [design.summary(), ""]

    sections.append("power-management decisions:")
    sections.append(describe_decisions(result.pm))
    sections.append("")

    sections.append("schedule:")
    sections.append(schedule_gantt(result))
    sections.append("")

    sections.append("unit utilization:")
    for name, fraction in sorted(utilization(result).items()):
        sections.append(f"  {name}: {100 * fraction:.0f}%")
    sections.append("")

    sections.append("registers:")
    sections.append(register_map(result))
    sections.append("")

    area = design.area()
    sections.append(
        f"area: units {area.functional_units} + registers {area.registers}"
        f" + interconnect {area.interconnect} + controller"
        f" {area.controller} = {area.total}")

    report = static_power(result.pm, weights=weights, selects=selects)
    sections.append(
        f"expected datapath power: {report.managed:.2f} of "
        f"{report.baseline:.2f} weighted units "
        f"({report.reduction_pct:.1f}% saved)")
    sections.append(
        f"controller: {design.controller.literal_count} literals over "
        f"{design.controller.n_states} states")
    if result.pipelined_gating is not None:
        sections.append(result.pipelined_gating.describe())
    return "\n".join(sections)
