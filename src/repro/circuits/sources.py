"""Benchmark circuits as language sources.

The same designs as the builder-API modules, written in the Silage-like
DSL.  Tests assert that compiling these yields identical operation counts
and identical input/output behaviour to the builder versions — exercising
the whole frontend on realistic programs.
"""

ABS_DIFF_SRC = """
# |a - b| — the paper's running example (Figs. 1-2).
circuit abs_diff {
    input a, b;
    c = a > b;
    output result = c ? a - b : b - a;
}
"""

DEALER_SRC = """
# Card-dealing payout (paper Table I: 3 MUX, 3 COMP, 2 +, 1 -).
circuit dealer {
    input p, d, c;
    total = p + c;
    c_bust = p > 21;
    c_hi = d > 17;
    hit = d + c;
    dealer_final = c_hi ? d : hit;
    c_win = p > d;
    margin = p - d;
    payout = c_win ? margin : dealer_final;
    output final = c_bust ? 0 : payout;
    output total_out = total;
    output dealer_total = dealer_final;
}
"""

GCD_SRC = """
# Subtractive GCD step (paper Table I: 6 MUX, 2 COMP, 1 -).
circuit gcd {
    input a, b;
    c_run = a != b;
    c_gt = a > b;
    big = c_gt ? a : b;
    small = c_gt ? b : a;
    diff = big - small;
    next_a = c_run ? diff : a;
    output gcd_out = c_run ? next_a : a;
    output next_b = c_run ? small : b;
    output done = c_run ? 0 : 1;
    output max_out = big;
}
"""

VENDER_SRC = """
# Vending machine (paper Table I: 6 MUX, 3 COMP, 3 +, 3 -, 2 *).
circuit vender {
    input coins, credit, price, sel;
    c_two = sel > 1;
    p2 = price * 2;
    p3 = price * 3;
    cost = c_two ? p3 : p2;
    funds = coins + credit;
    c_pay = funds > 6;
    change = funds - cost;
    short = cost - funds;
    output amount = c_pay ? change : short;
    output vend = c_pay ? 1 : 0;
    account = c_two ? credit : coins;
    t2 = funds + sel;
    balance = t2 + account;
    c_ovf = balance > 100;
    wrapped = balance - 100;
    output newbal = c_ovf ? wrapped : balance;
    output ovf = c_ovf ? 0 : 1;
}
"""

SOURCES = {
    "abs_diff": ABS_DIFF_SRC,
    "dealer": DEALER_SRC,
    "gcd": GCD_SRC,
    "vender": VENDER_SRC,
}
