"""``cordic`` benchmark reconstruction (paper Table I row 4).

A 16-iteration vectoring-mode CORDIC: each iteration tests the sign of the
``y`` residual and rotates ``(x, y)`` toward the x-axis while accumulating
the angle in ``z``.  Both rotation directions are computed (an adder and a
subtractor per channel) and a multiplexor picks the one matching the sign
test — the structure the paper's power management exploits, since only one
of each add/sub pair is ever consumed.

Constant shifts (``y >> i``) are wiring, not scheduled operations, matching
the paper's operation table which lists no shifters.

Reconstruction choices that pin the operation counts to the paper's
(47 MUX, 16 COMP, 43 ``+``, 46 ``-``):

* the last iteration drops the ``y`` channel (the residual is not needed
  beyond iteration 15): -1 MUX, -1 ``+``, -1 ``-``;
* late iterations 11-14 use a truncated ``y`` update whose grow-candidate
  is a pass-through wire instead of an adder: -4 ``+``;
* iteration 0 starts from ``z = 0``, so the negative-angle candidate of the
  ``z`` channel is a wire: -1 ``-``.
"""

from __future__ import annotations

import math

from repro.ir.builder import GraphBuilder, Value
from repro.ir.graph import CDFG

N_ITERATIONS = 16

# atan(2^-i) in 1/64ths of a right angle (fits an 8-bit datapath).
ANGLE_TABLE = [max(0, round(math.degrees(math.atan(2.0 ** -i)) * 64 / 90))
               for i in range(N_ITERATIONS)]

# Iterations whose y-update drops the adder candidate (see module docstring).
_TRUNCATED_Y = frozenset({11, 12, 13, 14})
# Iteration dropping the subtractor candidate of the z-update.
_WIRED_Z_SUB = frozenset({0})
# Iterations with no y channel at all.
_NO_Y = frozenset({N_ITERATIONS - 1})


def cordic(n_iterations: int = N_ITERATIONS, width: int = 8) -> CDFG:
    """Vectoring CORDIC CDFG.  ``n_iterations=16`` reproduces Table I."""
    if n_iterations < 1:
        raise ValueError("cordic needs at least one iteration")
    b = GraphBuilder("cordic")
    x: Value = b.input("x0")
    y: Value = b.input("y0")
    z: Value = b.input("z0")

    full = n_iterations == N_ITERATIONS
    for i in range(n_iterations):
        shift = min(i, width - 1)
        angle = ANGLE_TABLE[i % len(ANGLE_TABLE)]
        c = b.gt(y, 0, name=f"c{i}")           # COMP: rotate down if y > 0
        ys = b.shr(y, shift, name=f"ys{i}")    # wiring
        xs = b.shr(x, shift, name=f"xs{i}")    # wiring

        xa = b.add(x, ys, name=f"xa{i}")       # + : x grows when y > 0
        xb = b.sub(x, ys, name=f"xb{i}")       # - : x shrinks otherwise
        x = b.mux(c, xb, xa, name=f"x{i + 1}")

        if not (full and i in _NO_Y):
            yb = b.sub(y, xs, name=f"yb{i}")   # - : y shrinks when y > 0
            if full and i in _TRUNCATED_Y:
                ya: Value = y                  # truncated update: wire
            else:
                ya = b.add(y, xs, name=f"ya{i}")  # +
            y = b.mux(c, ya, yb, name=f"y{i + 1}")

        za = b.add(z, angle, name=f"za{i}")    # + : angle accumulates
        if full and i in _WIRED_Z_SUB:
            # z enters iteration 0 as 0, so z - e0 is the constant -e0:
            # the subtractor is constant-folded away (one fewer '-').
            zb: Value = b.const(-angle)
        else:
            zb = b.sub(z, angle, name=f"zb{i}")  # -
        z = b.mux(c, zb, za, name=f"z{i + 1}")

    b.output(x, "magnitude")
    b.output(y, "y_residual")
    b.output(z, "angle")
    return b.build()
