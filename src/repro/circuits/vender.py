"""``vender`` benchmark reconstruction (paper Table I row 3).

A vending-machine transaction: the selected item's cost is a multiple of
the base price (the two multipliers — only one of which is ever needed);
the machine compares the inserted funds against the acceptance threshold
and shows either the change or the amount short; a loyalty balance is
accumulated and wrapped at a limit.

Operation counts match the paper exactly: 6 MUX, 3 COMP, 3 ``+``, 3 ``-``,
2 ``*``, critical path 5 control steps.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import CDFG

ACCEPT_THRESHOLD = 6
BALANCE_LIMIT = 100


def vender() -> CDFG:
    b = GraphBuilder("vender")
    coins = b.input("coins")
    credit = b.input("credit")
    price = b.input("price")
    sel = b.input("sel")

    c_two = b.gt(sel, 1, name="c_two")          # COMP: premium item?
    p2 = b.mul(price, 2, name="p2")             # * : standard cost
    p3 = b.mul(price, 3, name="p3")             # * : premium cost
    cost = b.mux(c_two, p2, p3, name="cost")    # MUX: chosen cost

    funds = b.add(coins, credit, name="funds")  # + : available funds
    c_pay = b.gt(funds, ACCEPT_THRESHOLD, name="c_pay")  # COMP: accepted?
    change = b.sub(funds, cost, name="change")  # - : change due
    short = b.sub(cost, funds, name="short")    # - : amount missing
    amount = b.mux(c_pay, short, change, name="amount")  # MUX: display
    vend = b.mux(c_pay, 0, 1, name="vend")      # MUX: dispense flag

    account = b.mux(c_two, coins, credit, name="account")  # MUX: bonus src
    t2 = b.add(funds, sel, name="t2")           # + : funds + item count
    balance = b.add(t2, account, name="balance")  # + : loyalty balance
    c_ovf = b.gt(balance, BALANCE_LIMIT, name="c_ovf")  # COMP: wrapped?
    wrapped = b.sub(balance, BALANCE_LIMIT, name="wrapped")  # - : wrap
    newbal = b.mux(c_ovf, balance, wrapped, name="newbal")   # MUX
    ovf = b.mux(c_ovf, 1, 0, name="ovf")        # MUX: overflow flag

    b.output(amount, "amount")
    b.output(vend, "vend")
    b.output(newbal, "balance")
    b.output(ovf, "ovf")
    return b.build()
