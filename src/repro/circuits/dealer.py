"""``dealer`` benchmark reconstruction (paper Table I row 1).

A card-dealing payout circuit: the player's standing total ``p`` is checked
against the bust limit; the dealer draws to ``H`` (hit: ``d + c``, stand:
``d``); the payout is the win margin ``p - d`` when the player is ahead,
otherwise the dealer's final total, and zero on a bust.

Operation counts match the paper exactly: 3 MUX, 3 COMP, 2 ``+``, 1 ``-``,
critical path 4 control steps.  The dataflow shape is our reconstruction
(the paper does not publish the Silage source).
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import CDFG

BUST_LIMIT = 21
DEALER_STAND = 17


def dealer() -> CDFG:
    b = GraphBuilder("dealer")
    p = b.input("p")      # player total
    d = b.input("d")      # dealer total
    c = b.input("c")      # next card

    total = b.add(p, c, name="total")            # + : new player total
    c_bust = b.gt(p, BUST_LIMIT, name="c_bust")  # COMP: busted already?
    c_hi = b.gt(d, DEALER_STAND, name="c_hi")    # COMP: dealer stands?
    hit = b.add(d, c, name="hit")                # + : dealer hits
    # c_hi == 1 -> stand on d, else take the hit.
    dealer_final = b.mux(c_hi, hit, d, name="dealer_final")
    c_win = b.gt(p, d, name="c_win")             # COMP: player ahead?
    margin = b.sub(p, d, name="margin")          # - : win margin
    # c_win == 1 -> margin, else dealer's final total.
    payout = b.mux(c_win, dealer_final, margin, name="payout")
    # c_bust == 1 -> zero payout.
    final = b.mux(c_bust, payout, 0, name="final")

    b.output(final, "payout")
    b.output(total, "total")
    b.output(dealer_final, "dealer_total")
    return b.build()
