"""``diffeq`` — the classic HLS differential-equation benchmark
(Paulin & Knight), included as a *negative control*.

One Euler step of ``y'' + 3xy' + 3y = 0``:

    x1 = x + dx
    u1 = u - 3*x*u*dx - 3*y*dx
    y1 = y + u*dx

The circuit has no conditionals at all: every operation is always needed,
so the PM pass must select zero multiplexors and the power-managed design
must be identical in power to the baseline.  It also stress-tests the
scheduler/binding on a multiplier-heavy dataflow (6 x, 2 +, 2 -).
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import CDFG


def diffeq() -> CDFG:
    b = GraphBuilder("diffeq")
    x = b.input("x")
    y = b.input("y")
    u = b.input("u")
    dx = b.input("dx")

    x1 = b.add(x, dx, name="x1")               # +
    t1 = b.mul(3, x, name="t1")                # * : 3x
    t2 = b.mul(u, dx, name="t2")               # * : u*dx
    t3 = b.mul(t1, t2, name="t3")              # * : 3x*u*dx
    t4 = b.mul(3, y, name="t4")                # * : 3y
    t5 = b.mul(t4, dx, name="t5")              # * : 3y*dx
    t6 = b.sub(u, t3, name="t6")               # -
    u1 = b.sub(t6, t5, name="u1")              # -
    t7 = b.mul(u, dx, name="t7")               # * : u*dx (no CSE, as in
    y1 = b.add(y, t7, name="y1")               # +   the classic benchmark)

    b.output(x1, "x1")
    b.output(u1, "u1")
    b.output(y1, "y1")
    return b.build()
