"""Benchmark-circuit registry and the paper's published numbers.

``CIRCUITS`` maps name -> builder for the paper's four benchmarks;
``PAPER_TABLE1`` / ``PAPER_TABLE2`` / ``PAPER_TABLE3`` hold the numbers
printed in the paper, so benches and EXPERIMENTS.md can put *paper* and
*measured* side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.circuits.abs_diff import abs_diff
from repro.circuits.cordic import cordic
from repro.circuits.dealer import dealer
from repro.circuits.gcd import gcd
from repro.circuits.vender import vender
from repro.ir.graph import CDFG

CIRCUITS: dict[str, Callable[[], CDFG]] = {
    "dealer": dealer,
    "gcd": gcd,
    "vender": vender,
    "cordic": cordic,
}

#: Parameterized scenario families: ``prefix -> builder(param_spec)``.
#: A family turns an open-ended space of circuits into stable names —
#: ``build("gen:branchy:42")`` calls ``FAMILIES["gen"]("branchy:42")``.
FAMILIES: dict[str, Callable[[str], CDFG]] = {}

#: Families registered on first use: ``prefix -> module`` whose import
#: calls :func:`register_family`.  Keeps ``repro.circuits`` importable
#: without its family providers (and vice versa).
LAZY_FAMILIES: dict[str, str] = {
    "gen": "repro.gen",
    "chstone": "repro.circuits.chstone",
}


def register_family(prefix: str, builder: Callable[[str], CDFG]) -> None:
    """Register a parameterized circuit family under ``prefix``.

    Family specs are ``"<prefix>:<param>"``; the builder receives the
    param part and must return the same graph for the same spec (specs
    are shipped by name to ``explore`` worker processes and journals).
    """
    if not prefix or ":" in prefix:
        raise ValueError(f"bad family prefix {prefix!r}")
    if prefix in CIRCUITS:
        raise ValueError(
            f"family prefix {prefix!r} collides with a benchmark circuit")
    FAMILIES[prefix] = builder


def build(name: str) -> CDFG:
    """Build a registered benchmark circuit or family member by name.

    Plain names come from ``CIRCUITS``; names containing ``:`` are
    family specs (``gen:<preset>:<seed>`` for the random-CDFG
    generator, which is imported on first use).
    """
    if name in CIRCUITS:
        return CIRCUITS[name]()
    if ":" in name:
        prefix, _, param = name.partition(":")
        if prefix not in FAMILIES and prefix in LAZY_FAMILIES:
            import importlib

            importlib.import_module(LAZY_FAMILIES[prefix])
        if prefix in FAMILIES:
            return FAMILIES[prefix](param)
        raise KeyError(
            f"unknown circuit family {prefix!r} in {name!r}; registered "
            f"families: {sorted(set(FAMILIES) | set(LAZY_FAMILIES))}")
    raise KeyError(
        f"unknown circuit {name!r}; choose from {sorted(CIRCUITS)} or a "
        f"family spec like 'gen:medium:42'")


@dataclass(frozen=True)
class Table1Row:
    """Paper Table I: circuit statistics."""

    name: str
    critical_path: int
    mux: int
    comp: int
    add: int
    sub: int
    mul: int


PAPER_TABLE1: dict[str, Table1Row] = {
    "dealer": Table1Row("dealer", 4, 3, 3, 2, 1, 0),
    "gcd": Table1Row("gcd", 5, 6, 2, 0, 1, 0),
    "vender": Table1Row("vender", 5, 6, 3, 3, 3, 2),
    "cordic": Table1Row("cordic", 48, 47, 16, 43, 46, 0),
}


@dataclass(frozen=True)
class Table2Row:
    """Paper Table II: power-managed scheduling results."""

    name: str
    control_steps: int
    pm_muxes: int
    area_increase: float
    avg_mux: float
    avg_comp: float
    avg_add: float
    avg_sub: float
    avg_mul: float
    power_reduction_pct: float


PAPER_TABLE2: list[Table2Row] = [
    Table2Row("dealer", 4, 1, 1.20, 2.00, 2.00, 2.00, 0.50, 0.00, 27.00),
    Table2Row("dealer", 5, 1, 1.00, 2.00, 2.00, 2.00, 0.50, 0.00, 27.00),
    Table2Row("dealer", 6, 2, 1.00, 2.00, 2.00, 1.75, 0.25, 0.00, 33.33),
    Table2Row("gcd", 5, 1, 1.00, 5.50, 2.00, 0.00, 0.50, 0.00, 11.76),
    Table2Row("gcd", 6, 1, 1.00, 5.50, 2.00, 0.00, 0.50, 0.00, 11.76),
    Table2Row("gcd", 7, 2, 1.05, 5.50, 2.00, 0.00, 0.25, 0.00, 16.18),
    Table2Row("vender", 5, 4, 1.04, 4.50, 2.50, 1.50, 1.00, 1.00, 41.67),
    Table2Row("vender", 6, 4, 1.00, 4.50, 2.50, 1.50, 1.00, 1.00, 41.67),
    Table2Row("cordic", 48, 38, 1.00, 47.00, 16.00, 24.00, 27.00, 0.00, 30.16),
    Table2Row("cordic", 52, 46, 1.17, 47.00, 16.00, 22.00, 23.00, 0.00, 34.92),
]

# Control-step budgets evaluated per circuit in Table II.
TABLE2_BUDGETS: dict[str, tuple[int, ...]] = {
    "dealer": (4, 5, 6),
    "gcd": (5, 6, 7),
    "vender": (5, 6),
    "cordic": (48, 52),
}


@dataclass(frozen=True)
class Table3Row:
    """Paper Table III: Synopsys gate-level estimation."""

    name: str
    control_steps: int
    area_orig: int
    area_new: int
    area_increase: float
    power_orig: float
    power_new: float
    power_reduction_pct: float


PAPER_TABLE3: list[Table3Row] = [
    Table3Row("dealer", 6, 895, 946, 1.06, 46.5, 35.1, 24.5),
    Table3Row("gcd", 7, 806, 892, 1.11, 31.9, 28.7, 10.0),
    Table3Row("vender", 6, 2338, 2283, 0.98, 106.2, 71.4, 32.8),
]

TABLE3_BUDGETS: dict[str, int] = {"dealer": 6, "gcd": 7, "vender": 6}

__all__ = [
    "CIRCUITS",
    "FAMILIES",
    "register_family",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "TABLE2_BUDGETS",
    "TABLE3_BUDGETS",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "abs_diff",
    "build",
    "cordic",
    "dealer",
    "gcd",
    "vender",
]
