"""The paper's running example (§II-B, Figs. 1-2): compute ``|a - b|``.

One comparison ``a > b`` selects between ``a - b`` and ``b - a``.  With two
control steps the schedule is unique (Fig. 1) and no power management is
possible; with three, the comparison can run first and exactly one
subtractor's operands are loaded (Fig. 2(b)).
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import CDFG


def abs_diff() -> CDFG:
    """CDFG of |a-b|: one COMP, two SUBs, one MUX (paper Fig. 1)."""
    b = GraphBuilder("abs_diff")
    a = b.input("a")
    bb = b.input("b")
    c = b.gt(a, bb, name="c")          # a > b
    d0 = b.sub(bb, a, name="b_minus_a")  # used when c == 0
    d1 = b.sub(a, bb, name="a_minus_b")  # used when c == 1
    result = b.mux(c, d0, d1, name="abs")
    b.output(result, "result")
    return b.build()
