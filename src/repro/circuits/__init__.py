"""Benchmark circuits: the paper's four Silage designs, reconstructed."""

from repro.circuits.abs_diff import abs_diff
from repro.circuits.cordic import ANGLE_TABLE, N_ITERATIONS, cordic
from repro.circuits.dealer import dealer
from repro.circuits.diffeq import diffeq
from repro.circuits.gcd import gcd
from repro.circuits.suite import (
    CIRCUITS,
    FAMILIES,
    register_family,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    TABLE2_BUDGETS,
    TABLE3_BUDGETS,
    Table1Row,
    Table2Row,
    Table3Row,
    build,
)
from repro.circuits.vender import vender

__all__ = [
    "ANGLE_TABLE",
    "CIRCUITS",
    "FAMILIES",
    "N_ITERATIONS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "TABLE2_BUDGETS",
    "TABLE3_BUDGETS",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "abs_diff",
    "build",
    "cordic",
    "dealer",
    "diffeq",
    "gcd",
    "register_family",
    "vender",
]
