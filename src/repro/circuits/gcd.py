"""``gcd`` benchmark reconstruction (paper Table I row 2).

One unrolled step of subtractive GCD in the max/min formulation: compute
``big = max(a, b)``, ``small = min(a, b)``, replace the pair by
``(big - small, small)`` until ``a == b``.  A done flag and the current
maximum are exported alongside.  The Silage-style nested conditional
``a != b ? (... diff ...) : a`` lowers to the two chained multiplexors
(``next_a``, ``gcd``) that give the subtractor its shut-down guards.

Operation counts match the paper exactly: 6 MUX, 2 COMP, 1 ``-``,
critical path 5 control steps.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder
from repro.ir.graph import CDFG


def gcd() -> CDFG:
    b = GraphBuilder("gcd")
    a = b.input("a")
    bb = b.input("b")

    c_run = b.ne(a, bb, name="c_run")   # COMP: not finished (a != b)
    c_gt = b.gt(a, bb, name="c_gt")     # COMP: a > b
    big = b.mux(c_gt, bb, a, name="big")      # MUX: max(a, b)
    small = b.mux(c_gt, a, bb, name="small")  # MUX: min(a, b)
    diff = b.sub(big, small, name="diff")     # - : big - small
    next_a = b.mux(c_run, a, diff, name="next_a")   # MUX: new max operand
    next_b = b.mux(c_run, bb, small, name="next_b")  # MUX: new min operand
    # Redundant re-select from the nested source conditional: when still
    # running the result register tracks next_a, otherwise it holds a.
    result = b.mux(c_run, a, next_a, name="gcd")     # MUX
    done = b.mux(c_run, 1, 0, name="done")           # MUX: done flag

    b.output(result, "gcd")
    b.output(next_b, "next_b")
    b.output(done, "done")
    b.output(big, "max")
    return b.build()
