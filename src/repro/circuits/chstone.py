"""CHStone-class kernels as a registered scenario family (``chstone:*``).

Three kernels ported from the CHStone HLS benchmark suite's application
mix, sized and idiomatized for this flow (bit-true at any datapath
width, so simulated results wrap like the real RTL does):

* ``chstone:adpcm[:bits]`` — :func:`adpcm_predictor`: one step of an
  IMA-ADPCM encoder — successive-approximation quantizer (``bits``
  compare/subtract rungs), vpdiff reconstruction, predictor update and
  step-size adaptation.  Conditional-heavy: every quantizer rung is a
  compare whose taken branch (a subtract and an add) is mutex with the
  not-taken one, so the PM pass finds real gating work here.
* ``chstone:jpeg`` — :func:`jpeg_dct8`: the 8-point 1-D scaled DCT from
  the JPEG flow in its Loeffler/LLM shape (11 multiplies, ~29
  add/subs).  Pure dataflow with heavy multiplier pressure: a negative
  control for gating and the main stress for modulo-scheduler resource
  bounds (ResMII is multiplier-dominated).
* ``chstone:mips[:ops]`` — :func:`mips_datapath`: a MIPS-subset
  single-instruction ALU datapath — opcode equality decodes select one
  of ``ops`` candidate results through a mux chain.  Every deselected
  candidate is a shut-down cone, the family's mux-richest member.

Family specs are resolved by :func:`build_spec`; importing this module
registers the family (``repro.circuits.suite`` lists it lazily, like
``gen:*``).
"""

from __future__ import annotations

from repro.circuits.suite import register_family
from repro.ir.builder import GraphBuilder
from repro.ir.graph import CDFG


def adpcm_predictor(bits: int = 3) -> CDFG:
    """One IMA-ADPCM encode step with a ``bits``-rung quantizer."""
    if not 2 <= bits <= 6:
        raise ValueError(
            f"adpcm quantizer depth must be in [2, 6], got {bits}")
    b = GraphBuilder(f"adpcm{bits}")
    sample = b.input("sample")
    predicted = b.input("predicted")
    step = b.input("step")

    sign = b.gt(predicted, sample, name="sign")
    diff_neg = b.sub(predicted, sample, name="diff_neg")
    diff_pos = b.sub(sample, predicted, name="diff_pos")
    absdiff = b.select(sign, diff_neg, diff_pos, name="absdiff")

    # Successive approximation: compare the residual against step,
    # step/2, ... — each taken rung subtracts the threshold and adds it
    # into the reconstructed difference.
    vpdiff = b.shr(step, bits, name="vp0")
    residual = absdiff
    threshold = step
    code = sign
    first_bit = None
    for rung in range(bits):
        bit = b.ge(residual, threshold, name=f"bit{rung}")
        if first_bit is None:
            first_bit = bit
        vpdiff = b.select(bit, b.add(vpdiff, threshold), vpdiff,
                          name=f"vp{rung + 1}")
        code = b.or_(b.shl(code, 1), bit, name=f"code{rung}")
        if rung < bits - 1:  # the final residual feeds nothing
            residual = b.select(bit, b.sub(residual, threshold), residual,
                                name=f"res{rung}")
            threshold = b.shr(threshold, 1)

    newpred = b.select(sign, b.sub(predicted, vpdiff),
                       b.add(predicted, vpdiff), name="newpred")
    # Step adaptation: grow on a full-scale top bit, shrink otherwise.
    grown = b.add(step, b.shr(step, 1), name="grown")
    newstep = b.select(first_bit, grown, b.shr(step, 1), name="newstep")

    b.output(code, "code")
    b.output(newpred, "predicted_out")
    b.output(newstep, "step_out")
    return b.build()


def jpeg_dct8() -> CDFG:
    """8-point 1-D scaled DCT in the Loeffler/LLM dataflow shape."""
    b = GraphBuilder("jpeg_dct8")
    x = [b.input(f"x{i}") for i in range(8)]

    # Stage 1 butterflies.
    s = [b.add(x[i], x[7 - i], name=f"s{i}") for i in range(4)]
    d = [b.sub(x[i], x[7 - i], name=f"d{i}") for i in range(4)]

    # Even part: two more butterfly levels plus the rotated pair.
    t0 = b.add(s[0], s[3], name="t0")
    t1 = b.add(s[1], s[2], name="t1")
    t2 = b.sub(s[0], s[3], name="t2")
    t3 = b.sub(s[1], s[2], name="t3")
    y0 = b.add(t0, t1, name="y0")
    y4 = b.sub(t0, t1, name="y4")
    z1 = b.mul(b.add(t2, t3), 2, name="z1")
    y2 = b.add(z1, b.mul(t2, 3), name="y2")
    y6 = b.sub(z1, b.mul(t3, 7), name="y6")

    # Odd part: shared cross terms, then one rotation per output.
    oz1 = b.mul(b.add(d[0], d[3]), 2, name="oz1")
    oz2 = b.mul(b.add(d[1], d[2]), 3, name="oz2")
    oz3 = b.mul(b.add(d[0], d[2]), 5, name="oz3")
    oz4 = b.mul(b.add(d[1], d[3]), 4, name="oz4")
    y1 = b.add(b.add(b.mul(d[0], 6), oz1), oz3, name="y1")
    y3 = b.add(b.sub(b.mul(d[1], 7), oz2), oz4, name="y3")
    y5 = b.add(b.add(b.mul(d[2], 2), oz2), oz3, name="y5")
    y7 = b.sub(b.add(b.mul(d[3], 3), oz1), oz4, name="y7")

    for i, y in enumerate((y0, y1, y2, y3, y4, y5, y6, y7)):
        b.output(y, f"y{i}")
    return b.build()


def mips_datapath(n_ops: int = 6) -> CDFG:
    """MIPS-subset ALU: opcode-decoded selection over ``n_ops`` results."""
    if not 2 <= n_ops <= 8:
        raise ValueError(f"mips ALU op count must be in [2, 8], got {n_ops}")
    b = GraphBuilder(f"mips{n_ops}")
    op = b.input("op")
    rs = b.input("rs")
    rt = b.input("rt")
    # The immediate port exists only once an I-format op uses it, or the
    # input would be dead and validation would reject the circuit.
    imm = b.input("imm") if n_ops >= 7 else None

    alu = [
        lambda: b.add(rs, rt, name="alu_add"),
        lambda: b.sub(rs, rt, name="alu_sub"),
        lambda: b.and_(rs, rt, name="alu_and"),
        lambda: b.or_(rs, rt, name="alu_or"),
        lambda: b.xor(rs, rt, name="alu_xor"),
        lambda: b.lt(rs, rt, name="alu_slt"),
        lambda: b.add(rs, imm, name="alu_addi"),
        lambda: b.shl(imm, 4, name="alu_lui"),
    ]
    candidates = [make() for make in alu[:n_ops]]

    result = candidates[0]
    for code, candidate in enumerate(candidates[1:], start=1):
        is_code = b.eq(op, code, name=f"dec{code}")
        result = b.select(is_code, candidate, result, name=f"r{code}")
    zero = b.eq(result, 0, name="zero")

    b.output(result, "result")
    b.output(zero, "zero_flag")
    return b.build()


def build_spec(param: str) -> CDFG:
    """Family builder for ``chstone:<kernel>[:arg]`` specs."""
    kernel, _, arg = param.partition(":")
    try:
        if kernel == "adpcm":
            return adpcm_predictor(int(arg) if arg else 3)
        if kernel == "jpeg":
            if arg:
                raise ValueError(
                    f"chstone:jpeg takes no parameter, got {arg!r}")
            return jpeg_dct8()
        if kernel == "mips":
            return mips_datapath(int(arg) if arg else 6)
    except ValueError as exc:
        raise ValueError(f"bad chstone spec {param!r}: {exc}") from None
    raise ValueError(
        f"unknown chstone kernel {kernel!r}; choose adpcm[:bits], jpeg "
        "or mips[:ops]")


register_family("chstone", build_spec)

__all__ = ["adpcm_predictor", "build_spec", "jpeg_dct8", "mips_datapath"]
