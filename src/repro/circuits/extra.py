"""Additional circuits beyond the paper's four benchmarks.

* :func:`ewf` — the fifth-order elliptic wave filter (Kung/HYPER-era HLS
  benchmark): 26 additions and 8 multiplications, *no conditionals*.  A
  large negative control: the PM pass must select nothing, and the rest of
  the flow must still schedule/bind/simulate it correctly.

* :func:`sparse_fir` — an n-tap FIR whose per-tap multiplies are skipped
  when the sample magnitude is below a threshold (a common DSP power
  optimization).  Parameterized PM workload: n comparisons gate n
  multiplier/adder pairs, so managed muxes and savings scale with n.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder, Value
from repro.ir.graph import CDFG

# Feedback taps of the canonical EWF dataflow are modelled as inputs
# (sv = state variables), as HLS benchmarks traditionally do.


def ewf() -> CDFG:
    """Fifth-order elliptic wave filter body (26 +, 8 *)."""
    b = GraphBuilder("ewf")
    inp = b.input("inp")
    sv2 = b.input("sv2")
    sv13 = b.input("sv13")
    sv18 = b.input("sv18")
    sv26 = b.input("sv26")
    sv33 = b.input("sv33")
    sv38 = b.input("sv38")
    sv39 = b.input("sv39")

    def coeff_mul(value: Value, name: str) -> Value:
        return b.mul(value, 3, name=name)  # fixed filter coefficient

    t1 = b.add(inp, sv2, name="t1")
    t2 = b.add(t1, sv33, name="t2")
    t3 = b.add(t2, sv39, name="t3")
    m1 = coeff_mul(t3, "m1")
    t4 = b.add(m1, sv13, name="t4")
    t5 = b.add(t4, sv26, name="t5")
    m2 = coeff_mul(t5, "m2")
    t6 = b.add(m2, t1, name="t6")
    t7 = b.add(t6, sv18, name="t7")
    m3 = coeff_mul(t7, "m3")
    t8 = b.add(m3, t2, name="t8")
    t9 = b.add(t8, sv38, name="t9")
    m4 = coeff_mul(t9, "m4")
    t10 = b.add(m4, t5, name="t10")
    t11 = b.add(t10, t7, name="t11")
    m5 = coeff_mul(t11, "m5")
    t12 = b.add(m5, t9, name="t12")
    t13 = b.add(t12, t3, name="t13")
    m6 = coeff_mul(t13, "m6")
    t14 = b.add(m6, t11, name="t14")
    t15 = b.add(t14, t4, name="t15")
    m7 = coeff_mul(t15, "m7")
    t16 = b.add(m7, t13, name="t16")
    t17 = b.add(t16, t6, name="t17")
    m8 = coeff_mul(t17, "m8")
    t18 = b.add(m8, t15, name="t18")
    t19 = b.add(t18, t8, name="t19")
    t20 = b.add(t19, t10, name="t20")
    t21 = b.add(t20, t12, name="t21")
    t22 = b.add(t21, t14, name="t22")
    t23 = b.add(t22, t16, name="t23")
    t24 = b.add(t23, t17, name="t24")
    t25 = b.add(t24, t19, name="t25")
    t26 = b.add(t25, t21, name="t26")

    b.output(t26, "outp")
    b.output(t20, "sv_next_a")
    b.output(t24, "sv_next_b")
    return b.build()


def sparse_fir(n_taps: int = 8, threshold: int = 4) -> CDFG:
    """FIR filter that skips taps whose sample is below ``threshold``.

    Per tap i: ``c_i = |x_i| > threshold`` (approximated as the two-sided
    compare ``x_i > t  OR-free form``: we test ``x_i > t`` only, keeping
    the circuit single-condition per tap), ``p_i = x_i * k_i`` and the
    accumulated term is ``c_i ? p_i : 0``.  Each multiplier sits alone in
    its mux's shut-down cone, so power management gates all ``n_taps``
    multipliers once one extra control step is available.
    """
    if n_taps < 1:
        raise ValueError("a FIR needs at least one tap")
    b = GraphBuilder(f"sparse_fir{n_taps}")
    taps = [b.input(f"x{i}") for i in range(n_taps)]

    accumulator: Value | None = None
    for i, x in enumerate(taps):
        c = b.gt(x, threshold, name=f"c{i}")
        p = b.mul(x, 2 * i + 1, name=f"p{i}")       # per-tap coefficient
        term = b.mux(c, 0, p, name=f"term{i}")      # skip small samples
        if accumulator is None:
            accumulator = term
        else:
            accumulator = b.add(accumulator, term, name=f"acc{i}")

    b.output(accumulator, "y")
    return b.build()
