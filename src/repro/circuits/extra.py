"""Additional circuits beyond the paper's four benchmarks.

* :func:`ewf` — the fifth-order elliptic wave filter (Kung/HYPER-era HLS
  benchmark): 26 additions and 8 multiplications, *no conditionals*.  A
  large negative control: the PM pass must select nothing, and the rest of
  the flow must still schedule/bind/simulate it correctly.

* :func:`sparse_fir` — an n-tap FIR whose per-tap multiplies are skipped
  when the sample magnitude is below a threshold (a common DSP power
  optimization).  Parameterized PM workload: n comparisons gate n
  multiplier/adder pairs, so managed muxes and savings scale with n.

* :func:`gated_recurrence` — the 14-node circuit Hypothesis found
  (``test_batch_boundaries_do_not_matter``, seed 0) whose power-managed
  schedule produces an irreducible cross-vector recurrence: a guarded
  register's end-of-step value feeds a *stale* read in the same step, so
  no closed-form column expression exists and the vectorized backend must
  fall back to its hybrid scalar-slot micro-loop.  Kept as a named
  circuit so the regression is deterministic instead of
  generator-dependent.

* :func:`logic_mixer` — a wide pure-logic benchmark (AND/OR/XOR/NOT/MUX
  only, no arithmetic).  Every operation is a single word-parallel
  instruction for the bit-packed backend, which is where packing shows
  its largest win over the one-column-per-vector array backend.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder, Value
from repro.ir.graph import CDFG

# Feedback taps of the canonical EWF dataflow are modelled as inputs
# (sv = state variables), as HLS benchmarks traditionally do.


def ewf() -> CDFG:
    """Fifth-order elliptic wave filter body (26 +, 8 *)."""
    b = GraphBuilder("ewf")
    inp = b.input("inp")
    sv2 = b.input("sv2")
    sv13 = b.input("sv13")
    sv18 = b.input("sv18")
    sv26 = b.input("sv26")
    sv33 = b.input("sv33")
    sv38 = b.input("sv38")
    sv39 = b.input("sv39")

    def coeff_mul(value: Value, name: str) -> Value:
        return b.mul(value, 3, name=name)  # fixed filter coefficient

    t1 = b.add(inp, sv2, name="t1")
    t2 = b.add(t1, sv33, name="t2")
    t3 = b.add(t2, sv39, name="t3")
    m1 = coeff_mul(t3, "m1")
    t4 = b.add(m1, sv13, name="t4")
    t5 = b.add(t4, sv26, name="t5")
    m2 = coeff_mul(t5, "m2")
    t6 = b.add(m2, t1, name="t6")
    t7 = b.add(t6, sv18, name="t7")
    m3 = coeff_mul(t7, "m3")
    t8 = b.add(m3, t2, name="t8")
    t9 = b.add(t8, sv38, name="t9")
    m4 = coeff_mul(t9, "m4")
    t10 = b.add(m4, t5, name="t10")
    t11 = b.add(t10, t7, name="t11")
    m5 = coeff_mul(t11, "m5")
    t12 = b.add(m5, t9, name="t12")
    t13 = b.add(t12, t3, name="t13")
    m6 = coeff_mul(t13, "m6")
    t14 = b.add(m6, t11, name="t14")
    t15 = b.add(t14, t4, name="t15")
    m7 = coeff_mul(t15, "m7")
    t16 = b.add(m7, t13, name="t16")
    t17 = b.add(t16, t6, name="t17")
    m8 = coeff_mul(t17, "m8")
    t18 = b.add(m8, t15, name="t18")
    t19 = b.add(t18, t8, name="t19")
    t20 = b.add(t19, t10, name="t20")
    t21 = b.add(t20, t12, name="t21")
    t22 = b.add(t21, t14, name="t22")
    t23 = b.add(t22, t16, name="t23")
    t24 = b.add(t23, t17, name="t24")
    t25 = b.add(t24, t19, name="t25")
    t26 = b.add(t25, t21, name="t26")

    b.output(t26, "outp")
    b.output(t20, "sv_next_a")
    b.output(t24, "sv_next_b")
    return b.build()


def sparse_fir(n_taps: int = 8, threshold: int = 4) -> CDFG:
    """FIR filter that skips taps whose sample is below ``threshold``.

    Per tap i: ``c_i = |x_i| > threshold`` (approximated as the two-sided
    compare ``x_i > t  OR-free form``: we test ``x_i > t`` only, keeping
    the circuit single-condition per tap), ``p_i = x_i * k_i`` and the
    accumulated term is ``c_i ? p_i : 0``.  Each multiplier sits alone in
    its mux's shut-down cone, so power management gates all ``n_taps``
    multipliers once one extra control step is available.
    """
    if n_taps < 1:
        raise ValueError("a FIR needs at least one tap")
    b = GraphBuilder(f"sparse_fir{n_taps}")
    taps = [b.input(f"x{i}") for i in range(n_taps)]

    accumulator: Value | None = None
    for i, x in enumerate(taps):
        c = b.gt(x, threshold, name=f"c{i}")
        p = b.mul(x, 2 * i + 1, name=f"p{i}")       # per-tap coefficient
        term = b.mux(c, 0, p, name=f"term{i}")      # skip small samples
        if accumulator is None:
            accumulator = term
        else:
            accumulator = b.add(accumulator, term, name=f"acc{i}")

    b.output(accumulator, "y")
    return b.build()


def gated_recurrence() -> CDFG:
    """Falsifying 14-node circuit pinned from the Hypothesis failure.

    Reconstructs, node for node (including the explicit control edge
    ``one -> v1``), the seed-0 random circuit on which the pre-hybrid
    ``VectorizedEngine`` raised ``VectorizationError``: after power
    management the register holding ``v1`` is written under a guard *and*
    read stale in the same step, which closes a dependency cycle through
    the cross-vector state.
    """
    b = GraphBuilder("gated_recurrence")
    i0 = b.input("i0")
    i1 = b.input("i1")
    one = b.const(1)
    v1 = b.add(i0, i0, name="v1")
    v2 = b.add(i0, i0, name="v2")
    v3 = b.add(i0, i0, name="v3")
    v4 = b.add(i0, i0, name="v4")
    v5 = b.sub(i0, i0, name="v5")
    m6 = b.mux(one, v1, i1, name="m6")
    b.output(v2, "o0")
    b.output(v3, "o1")
    b.output(v4, "o2")
    b.output(v5, "o3")
    b.output(m6, "o4")
    # The generator emitted this guard explicitly; without it the PM pass
    # has no shut-down cone and the recurrence never forms.
    b.graph.add_control_edge(one.nid, v1.nid)
    return b.build()


def logic_mixer(n_stages: int = 12, width: int = 4) -> CDFG:
    """Pure-logic benchmark: ``width`` lanes stirred by logic-only stages.

    Each stage rotates the lanes through AND/OR/XOR/NOT and a MUX whose
    select is the previous stage's parity, so activity stays high and no
    stage folds away.  Contains no arithmetic or comparison nodes: every
    operation maps to one machine-word instruction per 64 Monte-Carlo
    vectors under the bit-packed backend.
    """
    if n_stages < 1 or width < 2:
        raise ValueError("logic_mixer needs n_stages >= 1 and width >= 2")
    b = GraphBuilder(f"logic_mixer{n_stages}x{width}")
    lanes = [b.input(f"x{i}") for i in range(width)]
    parity = b.xor(lanes[0], lanes[1], name="seed")
    for s in range(n_stages):
        nxt = []
        for i in range(width):
            a, c = lanes[i], lanes[(i + 1) % width]
            if i % 4 == 0:
                v = b.and_(a, c, name=f"s{s}a{i}")
            elif i % 4 == 1:
                v = b.or_(a, c, name=f"s{s}o{i}")
            elif i % 4 == 2:
                v = b.xor(a, c, name=f"s{s}x{i}")
            else:
                v = b.not_(b.xor(a, c, name=f"s{s}t{i}"), name=f"s{s}n{i}")
            nxt.append(v)
        # Cross-lane mux keyed on the running parity keeps the stages from
        # collapsing into independent per-lane chains.
        nxt[0] = b.mux(parity, nxt[0], nxt[-1], name=f"s{s}m")
        parity = b.xor(parity, nxt[0], name=f"s{s}p")
        lanes = nxt
    for i, lane in enumerate(lanes):
        b.output(lane, f"y{i}")
    b.output(parity, "parity")
    return b.build()
