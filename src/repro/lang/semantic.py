"""Semantic analysis: single-assignment and def-before-use checking.

The language is declarative dataflow, but we require definitions to appear
before their uses (like HYPER's Silage frontend effectively did after its
own ordering pass) — it makes diagnostics precise and guarantees the
lowering is single-pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    BinOp,
    Definition,
    Expr,
    Ident,
    InputDecl,
    IntLit,
    Program,
    Ternary,
    UnaryOp,
)
from repro.lang.errors import LangError


@dataclass
class SemanticInfo:
    """Result of analysis: symbol tables plus non-fatal warnings."""

    inputs: list[str] = field(default_factory=list)
    definitions: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)


def analyze(program: Program) -> SemanticInfo:
    """Validate ``program``; raises LangError on the first fatal problem."""
    info = SemanticInfo()
    defined: set[str] = set()
    used: set[str] = set()

    for stmt in program.statements:
        if isinstance(stmt, InputDecl):
            for name in stmt.names:
                if name in defined:
                    raise LangError(f"{name!r} defined twice",
                                    stmt.line, stmt.col)
                defined.add(name)
                info.inputs.append(name)
        elif isinstance(stmt, Definition):
            _check_expr(stmt.expr, defined, used)
            if stmt.name in defined:
                raise LangError(
                    f"{stmt.name!r} defined twice (single assignment)",
                    stmt.line, stmt.col)
            defined.add(stmt.name)
            info.definitions.append(stmt.name)
            if stmt.is_output:
                info.outputs.append(stmt.name)
        else:  # pragma: no cover - parser produces only the two kinds
            raise LangError(f"unknown statement {stmt!r}")

    if not info.outputs:
        raise LangError(f"circuit {program.name!r} has no outputs")
    if not info.inputs:
        info.warnings.append(f"circuit {program.name!r} has no inputs")
    for name in info.definitions:
        if name not in used and name not in info.outputs:
            info.warnings.append(f"value {name!r} is never used")
    return info


def _check_expr(expr: Expr, defined: set[str], used: set[str]) -> None:
    if isinstance(expr, IntLit):
        return
    if isinstance(expr, Ident):
        if expr.name not in defined:
            raise LangError(f"{expr.name!r} used before definition",
                            expr.line, expr.col)
        used.add(expr.name)
        return
    if isinstance(expr, UnaryOp):
        _check_expr(expr.operand, defined, used)
        return
    if isinstance(expr, BinOp):
        _check_expr(expr.lhs, defined, used)
        _check_expr(expr.rhs, defined, used)
        if expr.op in ("<<", ">>") and not isinstance(expr.rhs, IntLit):
            raise LangError(
                "shift amounts must be integer constants "
                "(shifts are wiring, not execution units)",
                expr.line, expr.col)
        return
    if isinstance(expr, Ternary):
        _check_expr(expr.cond, defined, used)
        _check_expr(expr.if_true, defined, used)
        _check_expr(expr.if_false, defined, used)
        return
    raise LangError(f"unknown expression {expr!r}")  # pragma: no cover
