"""Diagnostics for the behavioral-description language."""

from __future__ import annotations


class LangError(Exception):
    """A lexical, syntactic or semantic error with source position."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        where = f" at line {line}, col {col}" if line else ""
        super().__init__(f"{message}{where}")
