"""Tokenizer for the Silage-like circuit description language.

The language is a single-assignment dataflow notation: a ``circuit`` block
containing ``input`` declarations, value definitions and ``output``
definitions.  Conditionals are C-style ternaries, which lower to MUX nodes
exactly as Silage conditionals did in HYPER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.lang.errors import LangError

KEYWORDS = frozenset({"circuit", "input", "output"})

# Longest-match-first operator table.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=",
    "+", "-", "*", "<", ">", "&", "|", "^", "~",
    "?", ":", "=", ";", ",", "(", ")", "{", "}",
)


@dataclass(frozen=True)
class Token:
    kind: str      # 'ident' | 'int' | 'keyword' | an operator literal | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind!r}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises LangError on unknown characters."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line, col = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            yield Token("int", text, line, col)
            col += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, col)
            col += len(text)
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                yield Token(op, op, line, col)
                i += len(op)
                col += len(op)
                break
        else:
            raise LangError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col)
