"""Abstract syntax tree of the circuit description language."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Expr:
    # Source positions are diagnostics only: excluded from equality so a
    # parse -> print -> parse round trip yields an equal AST.
    line: int = field(default=0, kw_only=True, compare=False)
    col: int = field(default=0, kw_only=True, compare=False)


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class Ident(Expr):
    name: str


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str            # '-' or '~'
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    op: str            # '+', '-', '*', comparisons, logic, shifts
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    """``cond ? if_true : if_false`` — lowers to mux(cond, if_false, if_true)."""

    cond: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Statement:
    line: int = field(default=0, kw_only=True, compare=False)
    col: int = field(default=0, kw_only=True, compare=False)


@dataclass(frozen=True)
class InputDecl(Statement):
    names: tuple[str, ...]


@dataclass(frozen=True)
class Definition(Statement):
    name: str
    expr: Expr
    is_output: bool = False


@dataclass(frozen=True)
class Program:
    name: str
    statements: tuple[Statement, ...]

    @property
    def inputs(self) -> list[str]:
        names: list[str] = []
        for stmt in self.statements:
            if isinstance(stmt, InputDecl):
                names.extend(stmt.names)
        return names

    @property
    def outputs(self) -> list[str]:
        return [s.name for s in self.statements
                if isinstance(s, Definition) and s.is_output]
