"""Lowering: AST -> CDFG.

Ternaries become MUX nodes with the paper's operand convention
(``c ? t : e`` => ``mux(c, e, t)``: select 1 routes the then-branch).
Unary minus becomes ``0 - x`` (a real subtractor — negation is not free
hardware); ``~`` becomes a NOT node on a LOGIC unit.
"""

from __future__ import annotations

from repro.ir.builder import GraphBuilder, Value
from repro.ir.graph import CDFG
from repro.lang.ast_nodes import (
    BinOp,
    Definition,
    Expr,
    Ident,
    InputDecl,
    IntLit,
    Program,
    Ternary,
    UnaryOp,
)
from repro.lang.errors import LangError
from repro.lang.parser import parse
from repro.lang.semantic import analyze

_BINARY_BUILDERS = {
    "+": "add", "-": "sub", "*": "mul",
    ">": "gt", "<": "lt", ">=": "ge", "<=": "le",
    "==": "eq", "!=": "ne",
    "&": "and_", "|": "or_", "^": "xor",
}


def lower(program: Program) -> CDFG:
    """Lower an analyzed program to a validated CDFG."""
    analyze(program)
    builder = GraphBuilder(program.name)
    env: dict[str, Value] = {}

    for stmt in program.statements:
        if isinstance(stmt, InputDecl):
            for name in stmt.names:
                env[name] = builder.input(name)
        elif isinstance(stmt, Definition):
            value = _lower_expr(stmt.expr, builder, env, name=stmt.name)
            env[stmt.name] = value
            if stmt.is_output:
                builder.output(value, stmt.name)
    return builder.build()


def _lower_expr(expr: Expr, builder: GraphBuilder,
                env: dict[str, Value], name: str = "") -> Value:
    if isinstance(expr, IntLit):
        return builder.const(expr.value)
    if isinstance(expr, Ident):
        return env[expr.name]
    if isinstance(expr, UnaryOp):
        operand = _lower_expr(expr.operand, builder, env)
        if expr.op == "-":
            return builder.sub(builder.const(0), operand, name=name)
        return builder.not_(operand, name=name)
    if isinstance(expr, BinOp):
        lhs = _lower_expr(expr.lhs, builder, env)
        if expr.op in ("<<", ">>"):
            if not isinstance(expr.rhs, IntLit):  # pragma: no cover
                raise LangError("non-constant shift", expr.line, expr.col)
            method = builder.shl if expr.op == "<<" else builder.shr
            return method(lhs, expr.rhs.value, name=name)
        rhs = _lower_expr(expr.rhs, builder, env)
        method = getattr(builder, _BINARY_BUILDERS[expr.op])
        return method(lhs, rhs, name=name)
    if isinstance(expr, Ternary):
        cond = _lower_expr(expr.cond, builder, env)
        if_true = _lower_expr(expr.if_true, builder, env)
        if_false = _lower_expr(expr.if_false, builder, env)
        return builder.mux(cond, if_false, if_true, name=name)
    raise LangError(f"cannot lower {expr!r}")  # pragma: no cover


def compile_circuit(source: str) -> CDFG:
    """Parse, analyze and lower a circuit description in one call."""
    return lower(parse(source))
