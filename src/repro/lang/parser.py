"""Recursive-descent parser.

Grammar::

    program   := 'circuit' ident '{' statement* '}'
    statement := 'input' ident (',' ident)* ';'
               | 'output'? ident '=' expr ';'
    expr      := ternary
    ternary   := or_ ('?' expr ':' expr)?
    or_       := xor_ ('|' xor_)*
    xor_      := and_ ('^' and_)*
    and_      := equality ('&' equality)*
    equality  := relational (('=='|'!=') relational)*
    relational:= shift (('<'|'>'|'<='|'>=') shift)*
    shift     := additive (('<<'|'>>') additive)*
    additive  := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary ('*' unary)*
    unary     := ('-'|'~') unary | primary
    primary   := int | ident | '(' expr ')'
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    BinOp,
    Definition,
    Expr,
    Ident,
    InputDecl,
    IntLit,
    Program,
    Statement,
    Ternary,
    UnaryOp,
)
from repro.lang.errors import LangError
from repro.lang.lexer import Token, tokenize


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            want = text or kind
            got = self._current.text or self._current.kind
            raise LangError(f"expected {want!r}, found {got!r}",
                            self._current.line, self._current.col)
        return token

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> Program:
        self._expect("keyword", "circuit")
        name = self._expect("ident").text
        self._expect("{")
        statements: list[Statement] = []
        while not self._check("}"):
            statements.append(self._statement())
        self._expect("}")
        self._expect("eof")
        return Program(name=name, statements=tuple(statements))

    def _statement(self) -> Statement:
        token = self._current
        if self._accept("keyword", "input"):
            names = [self._expect("ident").text]
            while self._accept(","):
                names.append(self._expect("ident").text)
            self._expect(";")
            return InputDecl(names=tuple(names), line=token.line, col=token.col)
        is_output = bool(self._accept("keyword", "output"))
        name = self._expect("ident").text
        self._expect("=")
        expr = self._expression()
        self._expect(";")
        return Definition(name=name, expr=expr, is_output=is_output,
                          line=token.line, col=token.col)

    def _expression(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._binary(0)
        question = self._accept("?")
        if question is None:
            return cond
        if_true = self._expression()
        self._expect(":")
        if_false = self._expression()
        return Ternary(cond=cond, if_true=if_true, if_false=if_false,
                       line=question.line, col=question.col)

    _LEVELS: tuple[tuple[str, ...], ...] = (
        ("|",), ("^",), ("&",),
        ("==", "!="), ("<", ">", "<=", ">="),
        ("<<", ">>"), ("+", "-"), ("*",),
    )

    def _binary(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self._unary()
        expr = self._binary(level + 1)
        while any(self._check(op) for op in self._LEVELS[level]):
            token = self._advance()
            rhs = self._binary(level + 1)
            expr = BinOp(op=token.text, lhs=expr, rhs=rhs,
                         line=token.line, col=token.col)
        return expr

    def _unary(self) -> Expr:
        for op in ("-", "~"):
            token = self._accept(op)
            if token is not None:
                operand = self._unary()
                if op == "-" and isinstance(operand, IntLit):
                    return IntLit(value=-operand.value,
                                  line=token.line, col=token.col)
                return UnaryOp(op=op, operand=operand,
                               line=token.line, col=token.col)
        return self._primary()

    def _primary(self) -> Expr:
        token = self._current
        if self._accept("("):
            expr = self._expression()
            self._expect(")")
            return expr
        if token.kind == "int":
            self._advance()
            return IntLit(value=int(token.text), line=token.line, col=token.col)
        if token.kind == "ident":
            self._advance()
            return Ident(name=token.text, line=token.line, col=token.col)
        raise LangError(
            f"expected an expression, found {token.text or token.kind!r}",
            token.line, token.col)


def parse(source: str) -> Program:
    """Parse a circuit description into its AST."""
    return Parser(tokenize(source)).parse_program()
