"""Silage-like behavioral description language: lexer, parser, lowering."""

from repro.lang.ast_nodes import (
    BinOp,
    Definition,
    Expr,
    Ident,
    InputDecl,
    IntLit,
    Program,
    Statement,
    Ternary,
    UnaryOp,
)
from repro.lang.errors import LangError
from repro.lang.lexer import Token, tokenize
from repro.lang.lower import compile_circuit, lower
from repro.lang.parser import Parser, parse
from repro.lang.printer import graph_to_source, print_expr, print_program
from repro.lang.semantic import SemanticInfo, analyze

__all__ = [
    "BinOp",
    "Definition",
    "Expr",
    "Ident",
    "InputDecl",
    "IntLit",
    "LangError",
    "Parser",
    "Program",
    "SemanticInfo",
    "Statement",
    "Ternary",
    "Token",
    "UnaryOp",
    "analyze",
    "compile_circuit",
    "lower",
    "graph_to_source",
    "parse",
    "print_expr",
    "print_program",
    "tokenize",
]
