"""AST pretty-printer: the inverse of the parser.

``print_program(parse(src))`` re-parses to an identical AST (tested by
round-trip property tests), and ``graph_to_source`` decompiles a CDFG back
into the description language — useful for exporting builder-made or
transformed (e.g. unrolled) circuits as editable sources.
"""

from __future__ import annotations

from repro.ir.graph import CDFG
from repro.ir.node import MUX_IN0, MUX_IN1
from repro.ir.ops import Op
from repro.lang.ast_nodes import (
    BinOp,
    Definition,
    Expr,
    Ident,
    InputDecl,
    IntLit,
    Program,
    Ternary,
    UnaryOp,
)

# Higher binds tighter; mirrors Parser._LEVELS.
_PRECEDENCE = {
    "|": 1, "^": 2, "&": 3,
    "==": 4, "!=": 4,
    "<": 5, ">": 5, "<=": 5, ">=": 5,
    "<<": 6, ">>": 6,
    "+": 7, "-": 7,
    "*": 8,
}
_TERNARY_PRECEDENCE = 0
_UNARY_PRECEDENCE = 9


def print_expr(expr: Expr, parent_precedence: int = -1) -> str:
    """Render an expression, parenthesizing only where required."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, Ident):
        return expr.name
    if isinstance(expr, UnaryOp):
        inner = print_expr(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_precedence >= _UNARY_PRECEDENCE else text
    if isinstance(expr, BinOp):
        mine = _PRECEDENCE[expr.op]
        lhs = print_expr(expr.lhs, mine - 1)   # left-assoc: equal ok on left
        rhs = print_expr(expr.rhs, mine)       # parenthesize equal on right
        text = f"{lhs} {expr.op} {rhs}"
        return f"({text})" if parent_precedence >= mine else text
    if isinstance(expr, Ternary):
        cond = print_expr(expr.cond, _TERNARY_PRECEDENCE)
        if_true = print_expr(expr.if_true, -1)
        if_false = print_expr(expr.if_false, -1)
        text = f"{cond} ? {if_true} : {if_false}"
        return f"({text})" if parent_precedence >= 0 else text
    raise TypeError(f"cannot print {expr!r}")


def print_program(program: Program) -> str:
    """Render a whole program as parseable source."""
    lines = [f"circuit {program.name} {{"]
    for stmt in program.statements:
        if isinstance(stmt, InputDecl):
            lines.append(f"    input {', '.join(stmt.names)};")
        elif isinstance(stmt, Definition):
            prefix = "output " if stmt.is_output else ""
            lines.append(
                f"    {prefix}{stmt.name} = {print_expr(stmt.expr)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


_OP_TOKENS = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*",
    Op.GT: ">", Op.LT: "<", Op.GE: ">=", Op.LE: "<=",
    Op.EQ: "==", Op.NE: "!=",
    Op.AND: "&", Op.OR: "|", Op.XOR: "^",
    Op.SHL: "<<", Op.SHR: ">>",
}


def graph_to_source(graph: CDFG) -> str:
    """Decompile a CDFG into description-language source.

    Every schedulable and wiring node becomes one definition (names are
    preserved where present, generated otherwise), so the output re-compiles
    to a graph with identical operation structure and behaviour.
    """
    lines = [f"circuit {_safe_name(graph.name)} {{"]
    inputs = [n.name for n in graph.inputs()]
    if inputs:
        lines.append(f"    input {', '.join(inputs)};")

    names: dict[int, str] = {}
    used: set[str] = set(inputs)

    def name_of(nid: int) -> str:
        node = graph.node(nid)
        if node.op is Op.INPUT:
            return node.name
        if node.op is Op.CONST:
            if node.value is not None and node.value < 0:
                return f"({node.value})"
            return str(node.value)
        return names[nid]

    for nid in graph.topological_order(include_control=False):
        node = graph.node(nid)
        if node.op in (Op.INPUT, Op.CONST, Op.OUTPUT):
            continue
        target = _fresh(_safe_name(node.name) or f"v{nid}", used)
        names[nid] = target
        if node.op is Op.MUX:
            sel = name_of(node.operands[0])
            in0 = name_of(node.operands[MUX_IN0])
            in1 = name_of(node.operands[MUX_IN1])
            rhs = f"{sel} ? {in1} : {in0}"
        elif node.op is Op.NOT:
            rhs = f"~{name_of(node.operands[0])}"
        elif node.op is Op.PASS:
            rhs = name_of(node.operands[0])
        else:
            token = _OP_TOKENS[node.op]
            rhs = (f"{name_of(node.operands[0])} {token} "
                   f"{name_of(node.operands[1])}")
        lines.append(f"    {target} = {rhs};")

    # Outputs last, in their original declaration (node id) order so the
    # recompiled graph exposes ports in the same sequence.
    for node in graph.outputs():
        out_name = _fresh(_safe_name(node.name) or f"out{node.nid}", used)
        lines.append(
            f"    output {out_name} = {name_of(node.operands[0])};")

    lines.append("}")
    return "\n".join(lines) + "\n"


def _safe_name(text: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in text)
    if cleaned and cleaned[0].isdigit():
        cleaned = "v_" + cleaned
    return cleaned


def _fresh(base: str, used: set[str]) -> str:
    name = base or "v"
    counter = 0
    while name in used:
        counter += 1
        name = f"{base}_{counter}"
    used.add(name)
    return name
