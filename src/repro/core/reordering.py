"""Multiplexor reordering search (paper §IV-A).

The paper notes that the greedy output-first order may block better
selections and sketches a reordering pre-process as work in progress.  We
implement it two ways:

* :func:`strategy_search` — run the PM pass under each built-in ordering
  strategy and keep the best result;
* :func:`exhaustive_search` — try every MUX permutation (small circuits),
  giving the true optimum the heuristics can be judged against.

"Best" means the largest total gated power weight (expected datapath power
saved), with the number of managed MUXes as tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ordering import STRATEGIES, exhaustive_orderings
from repro.core.pm_pass import PMOptions, PMResult, apply_power_management
from repro.ir.graph import CDFG

# The scoring lives in the shared objective layer now; re-exported here
# because this module has always been gated_weight's public home.
from repro.opt.objective import gated_weight, pm_score

__all__ = ["ReorderOutcome", "exhaustive_search", "gated_weight",
           "strategy_search"]

_score = pm_score


@dataclass(frozen=True)
class ReorderOutcome:
    best: PMResult
    best_label: str
    scores: dict[str, tuple[float, int]]


def strategy_search(graph: CDFG, n_steps: int) -> ReorderOutcome:
    """Run every ordering strategy; return the best PM result."""
    best: PMResult | None = None
    best_label = ""
    scores: dict[str, tuple[float, int]] = {}
    for strategy in STRATEGIES:
        if strategy == "given":
            continue
        result = apply_power_management(
            graph, n_steps, PMOptions(ordering=strategy))
        scores[strategy] = _score(result)
        if best is None or _score(result) > _score(best):
            best, best_label = result, strategy
    assert best is not None
    return ReorderOutcome(best=best, best_label=best_label, scores=scores)


def exhaustive_search(graph: CDFG, n_steps: int, limit: int = 8) -> ReorderOutcome:
    """Try all MUX permutations (guarded by ``limit``); return the optimum."""
    best: PMResult | None = None
    best_label = ""
    scores: dict[str, tuple[float, int]] = {}
    for order in exhaustive_orderings(graph, limit=limit):
        result = apply_power_management(
            graph, n_steps,
            PMOptions(ordering="given", given_order=order))
        label = ">".join(str(m) for m in order)
        score = _score(result)
        scores[label] = score
        if best is None or score > _score(best):
            best, best_label = result, label
    assert best is not None
    return ReorderOutcome(best=best, best_label=best_label, scores=scores)
