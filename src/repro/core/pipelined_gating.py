"""Mutual-exclusion gating under functional pipelining (paper §IV-B,
re-derived for overlapped samples).

The paper's gating argument assumes one sample in flight: once a MUX's
select value is computed, the deselected cone is not needed *for this
sample*, and the select register still holds this sample's value when the
cone's operations would latch their operands.  With an initiation
interval ``II`` below the schedule length, up to ``ceil(L / II)`` samples
overlap and the second half of that argument breaks: the select register
is rewritten every II steps by the next sample, so a gated operation that
starts ``d = start(op) - finish(select driver)`` steps after its guard
value is latched reads a *newer* sample's select once ``d >= II``.
Gating on that stale guard would shut down operations an older in-flight
sample still needs — two mutually-exclusive branches from different
samples can be simultaneously active.

Two repairs, selected by ``FlowConfig.pipelined_gating``:

* ``"per_sample"`` (default) — carry the select value down the pipeline
  with one guard-register copy per crossed II boundary
  (``floor(d / II)`` extra registers per guard term).  Gating stays
  exact for every in-flight sample at a register-area cost, which
  :attr:`PipelinedGatingReport.guard_copies` quantifies.
* ``"drop"`` — conservatively remove every guard with ``d >= II``; a
  MUX whose guards all drop is deselected outright.  The savings that
  survive are :attr:`PipelinedGatingReport.pipelined_gated_weight`.

Either way the design's *function* is unchanged — gating only ever skips
work whose result the sample discards — so pipelined designs simulate
bit-identically across all backends in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.pm_pass import MuxDecision, PMResult
from repro.sched.resources import UNIT_COST
from repro.sched.schedule import Schedule

#: Rejection reason recorded on a MuxDecision deselected by "drop" mode.
REASON_OVERLAP = "pipelining-breaks-exclusivity"

PIPELINED_GATING_MODES = ("per_sample", "drop")


@dataclass(frozen=True)
class GuardFate:
    """What pipelining does to one ``(op, mux, side)`` guard term.

    ``distance`` is ``start(op) - finish(select driver)`` in control
    steps; the guard ``survives`` a single select register iff
    ``distance < II``, and otherwise needs ``copies = distance // II``
    stage-indexed register copies (or must be dropped).
    """

    op: int
    mux: int
    side: int
    distance: int
    survives: bool
    copies: int


@dataclass
class PipelinedGatingReport:
    """How a PM result fares under a pipelined schedule.

    ``adjusted`` is the PM result downstream stages should elaborate
    from: identical to the input in ``per_sample`` mode, stripped of
    broken guards in ``drop`` mode.
    """

    mode: str
    initiation_interval: int
    fates: list[GuardFate]
    adjusted: PMResult
    #: Expected gated weight of the unpipelined gating decisions.
    gated_weight: float
    #: Expected gated weight that remains valid under overlap.
    pipelined_gated_weight: float
    #: Extra stage-indexed guard registers "per_sample" mode needs.
    guard_copies: int
    #: Managed MUXes whose every guard survives a single select register.
    surviving_muxes: list[int] = field(default_factory=list)
    #: Managed MUXes that lost at least one guard to overlap.
    broken_muxes: list[int] = field(default_factory=list)

    @property
    def lost_weight(self) -> float:
        return self.gated_weight - self.pipelined_gated_weight

    @property
    def lost_pct(self) -> float:
        if self.gated_weight <= 0:
            return 0.0
        return 100.0 * self.lost_weight / self.gated_weight

    def describe(self) -> str:
        broken = len(self.broken_muxes)
        return (
            f"pipelined gating (II={self.initiation_interval}, "
            f"mode={self.mode}): weight {self.gated_weight:.2f} -> "
            f"{self.pipelined_gated_weight:.2f} "
            f"({self.lost_pct:.1f}% crosses a stage boundary), "
            f"{broken} mux(es) affected, "
            f"{self.guard_copies} guard-register copies")


def _expected_weight(pm: PMResult,
                     gating: dict[int, tuple[tuple[int, int], ...]]) -> float:
    total = 0.0
    for nid, guards in gating.items():
        if not guards:
            continue
        weight = UNIT_COST[pm.graph.node(nid).resource]
        total += weight * (1.0 - 0.5 ** len(guards))
    return total


def analyze_pipelined_gating(
    pm: PMResult,
    schedule: Schedule,
    mode: str = "per_sample",
) -> PipelinedGatingReport:
    """Re-check every gating decision of ``pm`` against a pipelined
    ``schedule`` (which must carry an ``initiation_interval``)."""
    if mode not in PIPELINED_GATING_MODES:
        raise ValueError(
            f"unknown pipelined-gating mode {mode!r}; choose from "
            f"{PIPELINED_GATING_MODES}")
    ii = schedule.initiation_interval
    if not ii:
        raise ValueError(
            "analyze_pipelined_gating needs a pipelined schedule "
            "(initiation_interval is unset)")

    graph = pm.graph
    fates: list[GuardFate] = []
    surviving: dict[int, list[tuple[int, int]]] = {}
    copies = 0
    for nid in sorted(pm.gating):
        kept: list[tuple[int, int]] = []
        for mux_id, side in pm.gating[nid]:
            driver = graph.node(mux_id).select_operand
            distance = schedule.step_of(nid) - schedule.finish_of(driver)
            ok = distance < ii
            n_copies = 0 if ok else distance // ii
            fates.append(GuardFate(op=nid, mux=mux_id, side=side,
                                   distance=distance, survives=ok,
                                   copies=n_copies))
            copies += n_copies
            if ok or mode == "per_sample":
                kept.append((mux_id, side))
        if kept:
            surviving[nid] = kept

    broken_by_mux: set[int] = {f.mux for f in fates if not f.survives}
    surviving_muxes = sorted(set(pm.selected_muxes) - broken_by_mux)
    broken_muxes = sorted(set(pm.selected_muxes) & broken_by_mux)

    # The weight that stays valid counts only guards with distance < II,
    # regardless of mode; "per_sample" then buys the rest back with the
    # reported register copies.
    valid: dict[int, tuple[tuple[int, int], ...]] = {}
    for nid in pm.gating:
        terms = tuple(
            (f.mux, f.side) for f in fates if f.op == nid and f.survives)
        if terms:
            valid[nid] = terms
    gated = _expected_weight(pm, pm.gating)

    if mode == "drop" and broken_by_mux:
        adjusted = _drop_broken(pm, surviving)
    else:
        adjusted = pm

    return PipelinedGatingReport(
        mode=mode, initiation_interval=ii, fates=fates, adjusted=adjusted,
        gated_weight=gated,
        pipelined_gated_weight=_expected_weight(pm, valid),
        guard_copies=copies, surviving_muxes=surviving_muxes,
        broken_muxes=broken_muxes)


def _drop_broken(
    pm: PMResult,
    surviving: dict[int, list[tuple[int, int]]],
) -> PMResult:
    """A PMResult with every overlap-broken guard removed.

    The augmented graph is kept as-is: its control edges only constrain
    the (already fixed) schedule.  Decisions lose the dropped ops from
    their ``gated`` sets; a decision with nothing left to gate is
    deselected with :data:`REASON_OVERLAP`.
    """
    gating = {nid: tuple(guards) for nid, guards in surviving.items()}
    decisions: list[MuxDecision] = []
    for decision in pm.decisions:
        if not decision.selected:
            decisions.append(decision)
            continue
        gated = frozenset(
            nid for nid in decision.gated
            if any(mux == decision.mux
                   for mux, _ in gating.get(nid, ())))
        if gated:
            decisions.append(replace(decision, gated=gated))
        else:
            decisions.append(replace(decision, selected=False,
                                     reason=REASON_OVERLAP,
                                     gated=frozenset()))
    return PMResult(graph=pm.graph, n_steps=pm.n_steps,
                    decisions=decisions, gating=gating)


def pipelined_gated_weight(pm: PMResult, schedule: Schedule,
                           mode: str = "drop") -> float:
    """Convenience: the overlap-valid expected gated weight."""
    return analyze_pipelined_gating(pm, schedule,
                                    mode=mode).pipelined_gated_weight
