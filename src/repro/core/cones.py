"""Multiplexor fan-in cone analysis (paper step 3).

For a MUX ``m`` with inputs ``[select, in0, in1]``:

* the **control cone** is the transitive fan-in of ``select``;
* the **shut-down cone** of side ``s`` is the largest set of operations
  whose results are needed *only* when ``m`` selects side ``s``:

  1. start from TFI(in_s);
  2. drop nodes also in TFI(in_{1-s}) — needed whichever way the condition
     goes (paper: "in the fanin cone of the 0 and 1 inputs");
  3. drop nodes in TFI(select) — they produce the condition itself;
  4. close under the fan-out rule: drop any node with a consumer outside
     the cone other than ``m`` itself (paper: "nodes that fanout to other
     nodes besides the current multiplexor"), repeating to a fixed point.

Cones contain zero-latency wiring nodes too (so a chain op -> shift -> mux
is gatable end-to-end); only the schedulable members represent execution
units that can be shut down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.ops import Op


@dataclass(frozen=True)
class MuxCones:
    """Cone decomposition of one multiplexor."""

    mux: int
    control: frozenset[int]       # TFI(select) incl. the driver, non-structural
    shutdown: tuple[frozenset[int], frozenset[int]]  # per side (0, 1)

    @property
    def select_driver_included(self) -> bool:
        return bool(self.control)

    def shutdown_ops(self, graph: CDFG, side: int) -> frozenset[int]:
        """Schedulable operations gated on ``side`` (what Tables II counts)."""
        return frozenset(n for n in self.shutdown[side]
                         if graph.node(n).is_schedulable)

    def all_shutdown_ops(self, graph: CDFG) -> frozenset[int]:
        return self.shutdown_ops(graph, 0) | self.shutdown_ops(graph, 1)

    def top_nodes(self, graph: CDFG, side: int) -> frozenset[int]:
        """Cone nodes with no data predecessor inside the cone — the nodes
        the paper's step 10 control edges point at."""
        cone = self.shutdown[side]
        return frozenset(
            n for n in cone
            if not any(p in cone for p in graph.data_preds(n))
        )


def _non_structural_tfi(graph: CDFG, nid: int) -> set[int]:
    return {
        n for n in graph.transitive_fanin(nid, include_self=True)
        if not graph.node(n).op in (Op.INPUT, Op.CONST)
    }


def compute_cones(graph: CDFG, mux_id: int) -> MuxCones:
    """Decompose MUX ``mux_id`` into control and per-side shut-down cones."""
    mux = graph.node(mux_id)
    if not mux.is_mux:
        raise ValueError(f"node {mux_id} is not a MUX")

    control = _non_structural_tfi(graph, mux.select_operand)
    tfi = [
        _non_structural_tfi(graph, mux.data_operand(0)),
        _non_structural_tfi(graph, mux.data_operand(1)),
    ]

    sides: list[frozenset[int]] = []
    for side in (0, 1):
        cone = tfi[side] - tfi[1 - side] - control
        cone.discard(mux_id)
        # Fan-out closure: every consumer must stay inside the cone or be
        # the mux itself.  Removing a node can strand its producers, so
        # iterate to a fixed point.
        while True:
            violating = {
                n for n in cone
                if any(s != mux_id and s not in cone
                       for s in graph.data_succs(n))
            }
            if not violating:
                break
            cone -= violating
        sides.append(frozenset(cone))

    return MuxCones(mux=mux_id, control=frozenset(control),
                    shutdown=(sides[0], sides[1]))


def compute_all_cones(graph: CDFG) -> dict[int, MuxCones]:
    """Cone decomposition for every MUX in the graph."""
    return {m.nid: compute_cones(graph, m.nid) for m in graph.muxes()}
