"""The power-management scheduling pass — paper Figure 3.

Given a CDFG and a control-step budget (throughput constraint), decide for
each multiplexor whether its data-cone operations can be scheduled *after*
its select signal, and if so commit precedence ("control") edges from the
select driver to the top nodes of the 0/1 shut-down cones.  A downstream
resource-minimizing scheduler (step 11) then produces the final schedule,
and the controller generator turns the gating information into conditional
register-load enables.

Implementation note: the paper commits tightened ASAP/ALAP values per
selected MUX (steps 4-8).  We instead keep the tentative control edges of
every selected MUX in the working graph and recompute ASAP/ALAP globally —
the recomputed values equal the paper's committed ones, constraints
accumulate across MUXes identically, and reverting a rejected MUX is just
removing its edges.

Two opt-in generalizations beyond the Figure-3 pseudo-code:

* ``PMOptions.allocation`` makes the feasibility test *resource-aware*: a
  MUX is only selected if the augmented graph still list-schedules under
  the given execution-unit allocation (the pseudo-code checks slack only).
* ``PMOptions.partial`` implements the fallback the paper describes in
  §II-B for the one-subtractor |a-b| schedule ("the operation in the first
  control step will always be computed, but we can still disable the one
  in the second"): when the whole cone cannot be re-timed, gate the subset
  of cone operations that can individually be scheduled after the select
  signal.  Gating a subset is functionally safe — an ungated consumer of a
  gated (stale) value only feeds paths the MUX deselects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.cones import MuxCones, compute_cones
from repro.core.ordering import order_muxes
from repro.ir.graph import CDFG, CDFGError
from repro.sched.resources import UNIT_COST, Allocation
from repro.sched.timing import critical_path_length, try_timing

# Rejection reasons recorded on MuxDecision.
REASON_SELECTED = "selected"
REASON_PARTIAL = "partially-selected"
REASON_NOTHING_TO_GATE = "nothing-to-gate"
REASON_NO_SLACK = "insufficient-slack"
REASON_CYCLE = "would-create-cycle"
REASON_LIMIT = "mux-limit-reached"


@dataclass(frozen=True)
class MuxDecision:
    """Outcome of the paper's steps 3-8 for one multiplexor.

    ``gated`` lists the operations actually gated for this MUX — the whole
    eligible cone when fully selected, a subset under partial selection.
    """

    mux: int
    selected: bool
    reason: str
    cones: MuxCones
    added_edges: tuple[tuple[int, int], ...] = ()
    gated: frozenset[int] = frozenset()


@dataclass
class PMResult:
    """Everything the rest of the flow needs after the PM pass.

    ``graph`` is a copy of the input augmented with the control edges of
    every selected MUX; ``gating`` maps a node id to the (mux, side) guards
    under which it executes — the controller loads its operands only when
    every guard's select register holds the required side.
    """

    graph: CDFG
    n_steps: int
    decisions: list[MuxDecision] = field(default_factory=list)
    gating: dict[int, tuple[tuple[int, int], ...]] = field(default_factory=dict)

    @property
    def selected_muxes(self) -> list[int]:
        return [d.mux for d in self.decisions if d.selected]

    @property
    def fully_selected_muxes(self) -> list[int]:
        return [d.mux for d in self.decisions
                if d.selected and d.reason == REASON_SELECTED]

    @property
    def partially_selected_muxes(self) -> list[int]:
        return [d.mux for d in self.decisions
                if d.selected and d.reason == REASON_PARTIAL]

    @property
    def rejected_muxes(self) -> list[int]:
        return [d.mux for d in self.decisions if not d.selected]

    @property
    def managed_count(self) -> int:
        """Paper Table II column 3: number of power-managed multiplexors."""
        return len(self.selected_muxes)

    def decision_for(self, mux_id: int) -> MuxDecision:
        for decision in self.decisions:
            if decision.mux == mux_id:
                return decision
        raise KeyError(f"no decision recorded for mux {mux_id}")

    def gated_ops(self) -> set[int]:
        """All operations with at least one shut-down guard."""
        return set(self.gating)


@dataclass(frozen=True)
class PMOptions:
    """Knobs for the PM pass.

    ordering:     MUX processing order strategy (see repro.core.ordering).
    given_order:  explicit order for strategy "given".
    max_muxes:    stop selecting after this many MUXes (None = unlimited).
    enabled:      False turns the pass into a no-op (the paper's baseline:
                  traditional scheduling, everything always executes).
    allocation:   when given, feasibility additionally requires the
                  augmented graph to list-schedule under this allocation
                  (resource-aware power management).
    partial:      allow per-operation fallback when a whole cone does not
                  fit (see module docstring).
    """

    ordering: str = "output_first"
    given_order: Sequence[int] | None = None
    max_muxes: int | None = None
    enabled: bool = True
    allocation: Allocation | None = None
    partial: bool = False


def _feasible(work: CDFG, n_steps: int, options: PMOptions) -> bool:
    """Slack feasibility, plus resource feasibility when requested."""
    if try_timing(work, n_steps) is None:
        return False
    if options.allocation is not None:
        from repro.sched.list_scheduler import (
            ListSchedulingFailure,
            list_schedule,
        )
        from repro.sched.timing import InfeasibleScheduleError
        try:
            list_schedule(work, n_steps, options.allocation)
        except (ListSchedulingFailure, InfeasibleScheduleError):
            return False
    return True


def apply_power_management(
    graph: CDFG,
    n_steps: int,
    options: PMOptions = PMOptions(),
) -> PMResult:
    """Run the paper's Figure-3 algorithm on ``graph`` for ``n_steps``.

    The input graph is not modified; the result holds an augmented copy.
    Raises :class:`~repro.sched.timing.InfeasibleScheduleError` if even the
    unconstrained graph misses the step budget.
    """
    cp = critical_path_length(graph)
    if n_steps < cp:
        from repro.sched.timing import InfeasibleScheduleError
        raise InfeasibleScheduleError(
            f"{n_steps} steps < critical path {cp} of {graph.name!r}"
        )

    work = graph.copy()
    result = PMResult(graph=work, n_steps=n_steps)
    if not options.enabled:
        return result

    order = order_muxes(work, options.ordering, options.given_order)
    gating: dict[int, list[tuple[int, int]]] = {}

    for mux_id in order:
        if (options.max_muxes is not None
                and result.managed_count >= options.max_muxes):
            cones = compute_cones(work, mux_id)
            result.decisions.append(MuxDecision(
                mux=mux_id, selected=False, reason=REASON_LIMIT, cones=cones))
            continue

        cones = compute_cones(work, mux_id)
        gatable = cones.all_shutdown_ops(work)
        if not gatable:
            result.decisions.append(MuxDecision(
                mux=mux_id, selected=False, reason=REASON_NOTHING_TO_GATE,
                cones=cones))
            continue

        decision = _try_full_selection(work, n_steps, options, mux_id, cones)
        if not decision.selected and options.partial \
                and decision.reason == REASON_NO_SLACK:
            decision = _try_partial_selection(work, n_steps, options,
                                              mux_id, cones)
        result.decisions.append(decision)
        if decision.selected:
            for side in (0, 1):
                for nid in cones.shutdown_ops(work, side):
                    if nid in decision.gated:
                        gating.setdefault(nid, []).append((mux_id, side))

    result.gating = {nid: tuple(guards) for nid, guards in gating.items()}
    return result


def _try_full_selection(work: CDFG, n_steps: int, options: PMOptions,
                        mux_id: int, cones: MuxCones) -> MuxDecision:
    """Paper steps 4-8: re-time the whole cone or revert."""
    driver = work.node(mux_id).select_operand
    edges: list[tuple[int, int]] = []
    reason = REASON_SELECTED
    feasible = True
    try:
        for side in (0, 1):
            for top in sorted(cones.top_nodes(work, side)):
                # add_control_edge refuses self-edges and cycles, which
                # surfaces as CDFGError and rejects this MUX.
                if top not in work.control_succs(driver):
                    work.add_control_edge(driver, top)
                    edges.append((driver, top))
    except CDFGError:
        feasible = False
        reason = REASON_CYCLE

    if feasible and not _feasible(work, n_steps, options):
        feasible = False
        reason = REASON_NO_SLACK

    if not feasible:
        for src, dst in edges:
            work.remove_control_edge(src, dst)
        return MuxDecision(mux=mux_id, selected=False, reason=reason,
                           cones=cones)
    return MuxDecision(
        mux=mux_id, selected=True, reason=REASON_SELECTED, cones=cones,
        added_edges=tuple(edges), gated=cones.all_shutdown_ops(work))


def _try_partial_selection(work: CDFG, n_steps: int, options: PMOptions,
                           mux_id: int, cones: MuxCones) -> MuxDecision:
    """§II-B fallback: gate the individually re-timable cone subset.

    Greedy by power weight (most expensive units first), so under a tight
    budget the multiplier is disabled before an adder.  Each candidate gets
    a direct control edge from the select driver; infeasible candidates
    are reverted independently.
    """
    driver = work.node(mux_id).select_operand
    candidates = sorted(
        cones.all_shutdown_ops(work),
        key=lambda nid: (-UNIT_COST[work.node(nid).resource], nid),
    )
    edges: list[tuple[int, int]] = []
    gated: set[int] = set()
    for nid in candidates:
        pre_existing = nid in work.control_succs(driver)
        try:
            if not pre_existing:
                work.add_control_edge(driver, nid)
        except CDFGError:
            continue
        if _feasible(work, n_steps, options):
            gated.add(nid)
            if not pre_existing:
                edges.append((driver, nid))
        elif not pre_existing:
            work.remove_control_edge(driver, nid)

    if not gated:
        return MuxDecision(mux=mux_id, selected=False,
                           reason=REASON_NO_SLACK, cones=cones)
    return MuxDecision(
        mux=mux_id, selected=True, reason=REASON_PARTIAL, cones=cones,
        added_edges=tuple(edges), gated=frozenset(gated))
