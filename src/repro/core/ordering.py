"""Multiplexor processing order (paper §III last paragraph and §IV-A).

The PM pass is greedy: selecting one MUX adds precedence edges that may make
another infeasible, so order matters.  The paper processes MUXes *closest to
the outputs first* (largest shut-down potential); §IV-A observes this can be
suboptimal and proposes reordering.  We implement:

* ``output_first`` — paper's default: ascending longest-path-to-output;
* ``input_first``  — the reverse (baseline for the ablation);
* ``savings``      — greedy by estimated gated power weight (§IV-A's
  proposed pre-processing, which the paper lists as work in progress);
* ``given``        — caller-supplied explicit order.

``exhaustive_orderings`` enumerates permutations for small MUX counts so the
ablation can report the true optimum.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Iterator, Sequence

from repro.core.cones import compute_cones
from repro.ir.graph import CDFG
from repro.sched.resources import UNIT_COST

STRATEGIES = ("output_first", "input_first", "savings", "given")


def estimated_savings_weight(graph: CDFG, mux_id: int,
                             select_prob: float = 0.5) -> float:
    """Power weight expected to be saved if this MUX alone is managed:
    each exclusive-cone op is skipped with the probability that the other
    side is selected."""
    cones = compute_cones(graph, mux_id)
    p = (1.0 - select_prob, select_prob)  # P(side not taken): side0 skipped w.p. P(sel=1)
    total = 0.0
    for side in (0, 1):
        skipped = p[1] if side == 0 else p[0]
        for nid in cones.shutdown_ops(graph, side):
            total += UNIT_COST[graph.node(nid).resource] * skipped
    return total


def order_muxes(
    graph: CDFG,
    strategy: str = "output_first",
    given: Sequence[int] | None = None,
) -> list[int]:
    """Return MUX node ids in processing order for ``strategy``."""
    mux_ids = [m.nid for m in graph.muxes()]
    if strategy == "given":
        if given is None:
            raise ValueError("strategy 'given' requires an explicit order")
        missing = set(mux_ids) - set(given)
        if missing:
            raise ValueError(f"given order misses muxes {sorted(missing)}")
        return [m for m in given if m in set(mux_ids)]
    if strategy == "output_first" or strategy == "input_first":
        dist = graph.longest_path_to_output()
        reverse = strategy == "input_first"
        return sorted(mux_ids, key=lambda m: (dist[m], m), reverse=reverse)
    if strategy == "savings":
        return sorted(
            mux_ids,
            key=lambda m: (-estimated_savings_weight(graph, m), m),
        )
    raise ValueError(f"unknown ordering strategy {strategy!r}; "
                     f"choose from {STRATEGIES}")


def exhaustive_orderings(graph: CDFG, limit: int = 8) -> Iterator[list[int]]:
    """All permutations of the graph's MUXes (guarded by ``limit``)."""
    mux_ids = [m.nid for m in graph.muxes()]
    if len(mux_ids) > limit:
        raise ValueError(
            f"{len(mux_ids)} muxes exceed the exhaustive limit of {limit}"
        )
    for perm in permutations(mux_ids):
        yield list(perm)
