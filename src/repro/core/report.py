"""Human-readable reporting for PM pass results."""

from __future__ import annotations

from repro.core.pm_pass import PMResult


def describe_decisions(result: PMResult) -> str:
    """One line per MUX: selected or why not, plus gated operations."""
    graph = result.graph
    lines = [
        f"power management on {graph.name!r} @ {result.n_steps} steps: "
        f"{result.managed_count}/{len(result.decisions)} muxes managed"
    ]
    for decision in result.decisions:
        mux = graph.node(decision.mux)
        mark = "+" if decision.selected else "-"
        line = f"  [{mark}] {mux.label()}: {decision.reason}"
        if decision.selected:
            names = ", ".join(graph.node(n).label()
                              for n in sorted(decision.gated))
            line += f"; gates {{{names}}}"
        lines.append(line)
    if result.gating:
        lines.append("  guards:")
        for nid in sorted(result.gating):
            guards = " & ".join(
                f"{graph.node(m).label()}={side}"
                for m, side in result.gating[nid]
            )
            lines.append(f"    {graph.node(nid).label()} runs iff {guards}")
    return "\n".join(lines)
