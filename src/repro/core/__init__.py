"""The paper's contribution: power-management-aware scheduling (Fig. 3)."""

from repro.core.cones import MuxCones, compute_all_cones, compute_cones
from repro.core.ordering import (
    STRATEGIES,
    estimated_savings_weight,
    exhaustive_orderings,
    order_muxes,
)
from repro.core.pm_pass import (
    MuxDecision,
    PMOptions,
    PMResult,
    REASON_CYCLE,
    REASON_LIMIT,
    REASON_NOTHING_TO_GATE,
    REASON_NO_SLACK,
    REASON_SELECTED,
    apply_power_management,
)
from repro.core.reordering import (
    ReorderOutcome,
    exhaustive_search,
    gated_weight,
    strategy_search,
)
from repro.core.report import describe_decisions

__all__ = [
    "MuxCones",
    "MuxDecision",
    "PMOptions",
    "PMResult",
    "REASON_CYCLE",
    "REASON_LIMIT",
    "REASON_NOTHING_TO_GATE",
    "REASON_NO_SLACK",
    "REASON_SELECTED",
    "ReorderOutcome",
    "STRATEGIES",
    "apply_power_management",
    "compute_all_cones",
    "compute_cones",
    "describe_decisions",
    "estimated_savings_weight",
    "exhaustive_orderings",
    "exhaustive_search",
    "gated_weight",
    "order_muxes",
    "strategy_search",
]
