"""Candidate evaluation: the optimizer's in-the-loop objective function.

``Evaluator`` turns a :class:`~repro.opt.space.Candidate` into the
metric dict the :class:`~repro.opt.objective.Objective` scores, running
exactly as much of the flow as the objective's metrics require — the PM
pass alone for ``gated_weight``-style objectives, a full synthesis for
``area``, a baseline/managed pair plus engine simulation for
``sim_power``.

Evaluations are deterministic per candidate, which enables three layers
of reuse:

* an in-process **memo**, so a driver revisiting a candidate pays
  nothing;
* an optional persistent **store** (a
  :class:`~repro.pipeline.store.DiskArtifactCache`): evaluated metric
  dicts are kept as store entries, and the same store doubles as the
  pipeline's stage-artifact cache for the expensive levels, so a later
  run — or another driver on the same circuit — is served from disk;
* an optional JSONL **journal** (the PR-4 explore format): every fresh
  evaluation is appended as it completes, and a re-run with the same
  journal replays them, which is what makes interrupted searches
  resumable (see :mod:`repro.opt.search`).  The writer group-commits by
  default (``durability="batch"``); pass ``durability="record"`` to
  fsync every record, as the serve crash-recovery path does.

``max_evaluations`` bounds the number of *fresh* computations; crossing
the bound raises :class:`EvaluationBudgetExceeded`, leaving the journal
and store intact for the resuming run.

Two hooks exist for the island-model portfolio driver: ``preload``
seeds the memo with metrics computed elsewhere (cross-island memo
inheritance — hits count as memo hits, not replays), and ``session``
collects every record this evaluator *produced* (fresh computes and
store hits, not memo or preload hits), which is exactly what an island
must report back to the coordinator.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.core.pm_pass import PMOptions, PMResult, apply_power_management
from repro.ir.graph import CDFG
from repro.opt.journal import append_record, load_journal, open_journal
from repro.opt.objective import (
    NEEDS_DESIGN,
    NEEDS_PAIR,
    NEEDS_PM,
    Objective,
    gated_weight,
)
from repro.opt.space import Candidate

#: Bump when evaluation semantics change incompatibly; part of every
#: store key and journal kind, so stale entries are never replayed.
OPT_FORMAT = 1

JOURNAL_KIND = "opt-journal"


class EvaluationBudgetExceeded(RuntimeError):
    """``max_evaluations`` fresh computations were already spent."""


@dataclass
class EvalStats:
    """Where this evaluator's answers came from."""

    computed: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    #: Journal records loaded at construction (the resume inheritance).
    resumed: int = 0

    @property
    def reused(self) -> int:
        return self.memo_hits + self.store_hits


@dataclass
class Evaluator:
    """Deterministic, cache-aware candidate evaluation for one graph."""

    graph: CDFG
    objective: Objective
    store: "object | None" = None
    journal: "str | os.PathLike | None" = None
    sim_vectors: int = 128
    sim_seed: int = 1996
    width: int = 8
    pm_base: PMOptions | None = None
    max_evaluations: int | None = None
    durability: str = "batch"
    preload: "Mapping[str, Mapping[str, float]] | None" = None
    stats: EvalStats = field(default_factory=EvalStats)

    def __post_init__(self) -> None:
        if isinstance(self.store, (str, os.PathLike)):
            from repro.pipeline.store import DiskArtifactCache

            self.store = DiskArtifactCache(self.store)
        self.objective = Objective.parse(self.objective)
        # None means paper defaults (Candidate.pm_options agrees), so
        # normalize before it enters signatures: otherwise None and
        # PMOptions() would journal/store under different keys.
        if self.pm_base is None:
            self.pm_base = PMOptions()
        self._memo: dict[str, dict[str, float]] = {}
        #: Records produced here this session (computed + store hits).
        self.session: dict[str, dict[str, float]] = {}
        self._pipeline = None
        self._fingerprint: str | None = None
        self._journal_handle = None
        if self.preload is not None:
            for key, metrics in self.preload.items():
                self._memo[str(key)] = {
                    str(k): float(v) for k, v in metrics.items()}
        if self.journal is not None:
            path = Path(self.journal)
            for record in load_journal(path).values():
                metrics = record.get("metrics")
                if (record.get("sig") == self._signature()
                        and isinstance(metrics, dict)):
                    self._memo[str(record["key"])] = {
                        str(k): float(v) for k, v in metrics.items()}
                    self.stats.resumed += 1
            self._journal_handle = open_journal(path, JOURNAL_KIND,
                                                durability=self.durability)

    def close(self) -> None:
        if self._journal_handle is not None:
            self._journal_handle.close()
            self._journal_handle = None

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- keys ------------------------------------------------------------

    def fingerprint(self) -> str:
        if self._fingerprint is None:
            from repro.pipeline.cache import graph_fingerprint

            self._fingerprint = graph_fingerprint(self.graph)
        return self._fingerprint

    def _signature(self) -> str:
        """Everything besides the candidate that shapes the metrics."""
        sim = (f":v{self.sim_vectors}:s{self.sim_seed}"
               if self.objective.requires >= NEEDS_PAIR else "")
        return (f"L{self.objective.requires}:w{self.width}"
                f":pm={self.pm_base!r}{sim}")

    def record_key(self, candidate: Candidate) -> str:
        """Journal/store identity of one evaluation (graph included, so
        journals may be shared across circuits)."""
        return f"{self.fingerprint()[:16]}:{candidate.key()}"

    # -- evaluation ------------------------------------------------------

    def evaluate(self, candidate: Candidate) -> tuple[float, dict[str, float]]:
        """Score ``candidate``; returns ``(score, metrics)``."""
        key = self.record_key(candidate)
        metrics = self._memo.get(key)
        if metrics is not None:
            self.stats.memo_hits += 1
            return self.objective.score(metrics), metrics
        if self.store is not None:
            entry = self.store.lookup(
                ("opt-eval", OPT_FORMAT, self._signature(), key))
            if entry is not None:
                metrics = entry["metrics"]
                self.stats.store_hits += 1
                self._remember(key, metrics)
                return self.objective.score(metrics), metrics
        if (self.max_evaluations is not None
                and self.stats.computed >= self.max_evaluations):
            raise EvaluationBudgetExceeded(
                f"evaluation budget of {self.max_evaluations} spent")
        metrics = self._compute(candidate)
        self.stats.computed += 1
        if self.store is not None:
            self.store.store(("opt-eval", OPT_FORMAT, self._signature(), key),
                             {"metrics": metrics})
        self._remember(key, metrics)
        return self.objective.score(metrics), metrics

    def memo_snapshot(self) -> dict[str, dict[str, float]]:
        """Copy of the memo, shippable to workers as a ``preload``."""
        return {key: dict(metrics) for key, metrics in self._memo.items()}

    def absorb(self, key: str, metrics: Mapping[str, float]) -> bool:
        """Adopt an evaluation computed elsewhere (an island's report):
        memoized and journaled unless already known.  True when new."""
        if key in self._memo:
            return False
        self._remember(key, {str(k): float(v) for k, v in metrics.items()})
        return True

    def _remember(self, key: str, metrics: dict[str, float]) -> None:
        self._memo[key] = metrics
        self.session[key] = metrics
        if self._journal_handle is not None:
            append_record(self._journal_handle, key,
                          {"sig": self._signature(), "metrics": metrics})

    def _compute(self, candidate: Candidate) -> dict[str, float]:
        level = self.objective.requires
        if level == NEEDS_PM:
            pm = apply_power_management(self.graph, candidate.n_steps,
                                        candidate.pm_options(self.pm_base))
            return self._pm_metrics(pm)

        from repro.pipeline.cache import ArtifactCache
        from repro.pipeline.config import FlowConfig
        from repro.pipeline.engine import Pipeline

        if self._pipeline is None:
            # The store doubles as the stage-artifact cache, so synthesis
            # work is shared across candidates, drivers, and runs.
            self._pipeline = Pipeline(
                cache=self.store if self.store is not None
                else ArtifactCache())
        config = FlowConfig(n_steps=candidate.n_steps,
                            pm=candidate.pm_options(self.pm_base),
                            scheduler=candidate.scheduler,
                            width=self.width, label="opt")
        result = self._pipeline.run(self.graph, config)
        metrics = self._pm_metrics(result.pm)
        metrics["area"] = float(result.design.area().total)
        metrics["controller_literals"] = \
            float(result.design.controller.literal_count)
        metrics["pipelined_gated_weight"] = float(
            result.pipelined_gating.pipelined_gated_weight
            if result.pipelined_gating is not None
            else metrics["gated_weight"])
        if level >= NEEDS_PAIR:
            from repro.power.simulated import compare_designs

            baseline = self._pipeline.run(self.graph, config.baseline())
            comparison = compare_designs(
                baseline.design, result.design,
                n_vectors=self.sim_vectors, seed=self.sim_seed)
            metrics["sim_power"] = float(comparison.reduction_pct)
        return metrics

    def _pm_metrics(self, pm: PMResult) -> dict[str, float]:
        from repro.power.static import static_power

        return {
            "gated_weight": gated_weight(pm),
            "managed_muxes": float(pm.managed_count),
            "static_power": static_power(pm).reduction_pct,
        }
