"""The shared objective layer of the optimizer subsystem.

Every search driver — and the reordering heuristics and ``explore``'s
Pareto reduction — ultimately compare synthesis outcomes on the same
small set of *metrics*.  This module is their single home:

* :func:`gated_weight` — the static expected-power score the reordering
  search has always used (moved here from ``core/reordering.py``, which
  re-exports it unchanged);
* :data:`METRICS` — the named metric registry.  Each metric knows its
  optimization *sense* (maximize or minimize) and how much of the flow
  must run to produce it (``NEEDS_PM`` — the PM pass alone — up to
  ``NEEDS_PAIR`` — baseline + managed synthesis and simulation);
* :class:`Objective` — a weighted scalarization over metrics.  Scores
  are always *maximized*: each term contributes ``weight * sense *
  value``, so ``Objective.parse("gated_weight,area=0.05")`` rewards
  gated weight and penalizes area without the caller juggling signs;
* :func:`dominates` / :func:`pareto_front` — Pareto helpers over
  minimized score tuples, shared with
  :meth:`repro.pipeline.ExplorationResult.pareto`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence, TypeVar

from repro.core.pm_pass import PMResult
from repro.sched.resources import UNIT_COST

#: Computation levels a metric may require, in increasing cost order:
#: the PM pass alone, a full synthesis of the managed design, or the
#: baseline/managed pair plus engine simulation.
NEEDS_PM = 0
NEEDS_DESIGN = 1
NEEDS_PAIR = 2

MAXIMIZE = 1.0
MINIMIZE = -1.0


def gated_weight(result: PMResult) -> float:
    """Expected power weight saved: each gated op skipped w.p. 1/2 per guard."""
    total = 0.0
    for nid, guards in result.gating.items():
        weight = UNIT_COST[result.graph.node(nid).resource]
        total += weight * (1.0 - 0.5 ** len(guards))
    return total


def pm_score(result: PMResult) -> tuple[float, int]:
    """The reordering-search comparison key: gated weight, then the
    managed-MUX count as tie-break."""
    return (gated_weight(result), result.managed_count)


@dataclass(frozen=True)
class Metric:
    """One named synthesis-outcome measurement.

    ``sense`` is :data:`MAXIMIZE` (+1) or :data:`MINIMIZE` (-1);
    ``needs`` is the cheapest computation level that produces it.
    """

    name: str
    sense: float
    needs: int
    doc: str


METRICS: dict[str, Metric] = {m.name: m for m in (
    Metric("gated_weight", MAXIMIZE, NEEDS_PM,
           "expected datapath power weight saved by gating"),
    Metric("managed_muxes", MAXIMIZE, NEEDS_PM,
           "number of power-managed multiplexors"),
    Metric("static_power", MAXIMIZE, NEEDS_PM,
           "static datapath power reduction %% (Table II model)"),
    Metric("area", MINIMIZE, NEEDS_DESIGN,
           "execution-unit + register + mux area of the managed design"),
    Metric("pipelined_gated_weight", MAXIMIZE, NEEDS_DESIGN,
           "expected gated weight still valid under pipelined overlap "
           "(equals gated_weight for unpipelined runs)"),
    Metric("controller_literals", MINIMIZE, NEEDS_DESIGN,
           "two-level literal count of the managed controller"),
    Metric("sim_power", MAXIMIZE, NEEDS_PAIR,
           "engine-simulated total power reduction %% vs the baseline"),
)}


@dataclass(frozen=True)
class Objective:
    """A weighted scalarization over :data:`METRICS`, always maximized.

    ``score`` folds each term's sense in, so weights are plain positive
    importances: ``Objective.parse("gated_weight,area=0.05")`` trades
    1 unit of gated weight against 20 units of area.
    """

    terms: tuple[tuple[str, float], ...] = (("gated_weight", 1.0),)

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("an Objective needs at least one metric term")
        for name, weight in self.terms:
            if name not in METRICS:
                raise ValueError(
                    f"unknown metric {name!r}; choose from {sorted(METRICS)}")
            if not weight > 0:
                raise ValueError(
                    f"metric weight for {name!r} must be > 0, got {weight} "
                    "(the metric's own sense decides the direction)")

    @classmethod
    def parse(cls, spec: "str | Objective") -> "Objective":
        """``"name[=weight],..."`` — e.g. ``"gated_weight"`` or
        ``"sim_power,area=0.1"``.  An :class:`Objective` passes through."""
        if isinstance(spec, Objective):
            return spec
        terms: list[tuple[str, float]] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, eq, weight_text = part.partition("=")
            name = name.strip()
            try:
                weight = float(weight_text) if eq else 1.0
            except ValueError:
                raise ValueError(
                    f"bad weight {weight_text!r} in objective term "
                    f"{part!r}") from None
            terms.append((name, weight))
        if not terms:
            raise ValueError(f"empty objective spec {spec!r}")
        return cls(terms=tuple(terms))

    @property
    def requires(self) -> int:
        """The computation level evaluation must reach (max over terms)."""
        return max(METRICS[name].needs for name, _ in self.terms)

    @property
    def metric_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.terms)

    def score(self, metrics: Mapping[str, float]) -> float:
        """Scalar value of one evaluated candidate (higher is better)."""
        return sum(weight * METRICS[name].sense * metrics[name]
                   for name, weight in self.terms)

    def vector(self, metrics: Mapping[str, float]) -> tuple[float, ...]:
        """Minimized objective tuple (one entry per term, weights
        ignored), compatible with :func:`dominates` /
        :func:`pareto_front`: each maximize-sense metric is negated so
        smaller is uniformly better."""
        return tuple(-METRICS[name].sense * metrics[name]
                     for name, _ in self.terms)

    def signature(self) -> str:
        """Stable spec string (round-trips through :meth:`parse`)."""
        return ",".join(name if weight == 1.0 else f"{name}={weight:g}"
                        for name, weight in self.terms)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.signature()


# -- Pareto dominance ----------------------------------------------------

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when minimized score tuple ``a`` Pareto-dominates ``b``:
    at least as good everywhere and strictly better somewhere."""
    return tuple(a) != tuple(b) and all(x <= y for x, y in zip(a, b))


def pareto_front(items: Iterable[T],
                 key: Callable[[T], Sequence[float]]) -> list[T]:
    """The non-dominated subset of ``items`` under minimized ``key``
    tuples.  Ties (identical tuples) all survive; input order is kept."""
    items = list(items)
    scored = [tuple(key(item)) for item in items]
    return [item for item, mine in zip(items, scored)
            if not any(dominates(other, mine) for other in scored)]
