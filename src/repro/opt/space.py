"""The optimizer's joint search space.

A :class:`Candidate` is one point of the space the stochastic drivers
move through: a complete MUX processing order, a control-step budget,
and a base-scheduler choice.  :class:`SearchSpace` knows the legal
values of each dimension, draws seeded random candidates, proposes
neighborhood moves for annealing, and enumerates the built-in greedy
strategies as labeled seed candidates — which is what lets every driver
guarantee "never worse than the best greedy ordering" by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import factorial

from repro.core.ordering import STRATEGIES, order_muxes
from repro.core.pm_pass import PMOptions
from repro.ir.graph import CDFG
from repro.sched.timing import critical_path_length


@dataclass(frozen=True)
class Candidate:
    """One point of the joint (ordering, budget, scheduler) space."""

    order: tuple[int, ...]
    n_steps: int
    scheduler: str = "list"

    def key(self) -> str:
        """Stable content key (journal / store identity of this point)."""
        return (f"{'>'.join(str(m) for m in self.order)}"
                f"@{self.n_steps}/{self.scheduler}")

    def pm_options(self, base: PMOptions | None = None) -> PMOptions:
        """The PM options that make the pass process MUXes in this order."""
        return replace(base if base is not None else PMOptions(),
                       ordering="given", given_order=self.order)


@dataclass(frozen=True)
class SearchSpace:
    """Legal values of each candidate dimension for one circuit."""

    mux_ids: tuple[int, ...]
    budgets: tuple[int, ...]
    schedulers: tuple[str, ...] = ("list",)

    def __post_init__(self) -> None:
        if not self.budgets:
            raise ValueError("SearchSpace needs at least one budget")
        if not self.schedulers:
            raise ValueError("SearchSpace needs at least one scheduler")

    @classmethod
    def for_graph(cls, graph: CDFG,
                  budgets: "tuple[int, ...] | list[int] | None" = None,
                  n_steps: int | None = None,
                  schedulers: tuple[str, ...] = ("list",)) -> "SearchSpace":
        """Build the space for ``graph``.

        ``budgets`` (or the single ``n_steps``) must all be at least the
        graph's critical path — an infeasible budget is not a searchable
        point, it is an error in the question.
        """
        if budgets is None:
            if n_steps is None:
                raise ValueError("pass budgets=[...] or n_steps=N")
            budgets = (n_steps,)
        budgets = tuple(sorted(dict.fromkeys(int(b) for b in budgets)))
        cp = critical_path_length(graph)
        bad = [b for b in budgets if b < cp]
        if bad:
            raise ValueError(
                f"budgets {bad} below the critical path {cp} of "
                f"{graph.name!r}")
        mux_ids = tuple(m.nid for m in graph.muxes())
        return cls(mux_ids=mux_ids, budgets=budgets,
                   schedulers=tuple(schedulers))

    def size(self) -> int:
        """Number of distinct candidates (orderings x budgets x scheds)."""
        return (factorial(len(self.mux_ids))
                * len(self.budgets) * len(self.schedulers))

    # -- sampling and moves ----------------------------------------------

    def random_candidate(self, rng) -> Candidate:
        order = list(self.mux_ids)
        rng.shuffle(order)
        return Candidate(order=tuple(order),
                         n_steps=rng.choice(self.budgets),
                         scheduler=rng.choice(self.schedulers))

    def neighbor(self, candidate: Candidate, rng) -> Candidate:
        """One random local move; the identity when the space is trivial."""
        moves = []
        if len(candidate.order) >= 2:
            moves += ["swap", "relocate"]
        if len(self.budgets) >= 2:
            moves.append("budget")
        if len(self.schedulers) >= 2:
            moves.append("scheduler")
        if not moves:
            return candidate
        move = rng.choice(moves)
        if move == "swap":
            order = list(candidate.order)
            i, j = rng.sample(range(len(order)), 2)
            order[i], order[j] = order[j], order[i]
            return replace(candidate, order=tuple(order))
        if move == "relocate":
            order = list(candidate.order)
            i = rng.randrange(len(order))
            mux = order.pop(i)
            order.insert(rng.randrange(len(order) + 1), mux)
            return replace(candidate, order=tuple(order))
        if move == "budget":
            # Step to an adjacent budget so annealing walks the budget
            # axis instead of teleporting across it.
            k = self.budgets.index(candidate.n_steps)
            k += rng.choice((-1, 1)) if 0 < k < len(self.budgets) - 1 \
                else (1 if k == 0 else -1)
            return replace(candidate, n_steps=self.budgets[k])
        others = [s for s in self.schedulers if s != candidate.scheduler]
        return replace(candidate, scheduler=rng.choice(others))

    # -- deterministic seeds ---------------------------------------------

    def greedy_candidates(self, graph: CDFG,
                          ) -> list[tuple[str, Candidate]]:
        """Every built-in ordering strategy at every (budget, scheduler),
        labeled ``<strategy>@<budget>/<scheduler>`` — the deterministic
        seeds every driver evaluates first."""
        seeds: list[tuple[str, Candidate]] = []
        for strategy in STRATEGIES:
            if strategy == "given":
                continue
            order = tuple(order_muxes(graph, strategy))
            for n_steps in self.budgets:
                for scheduler in self.schedulers:
                    seeds.append((
                        f"{strategy}@{n_steps}/{scheduler}",
                        Candidate(order=order, n_steps=n_steps,
                                  scheduler=scheduler)))
        return seeds
