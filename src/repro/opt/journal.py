"""Shared JSONL resume-journal helpers (the PR-4 explore format).

One journal is an append-only JSONL file: a meta line ``{"format": N,
"kind": "<kind>"}`` followed by one record per completed unit of work,
``{"key": "<content key>", ...payload}``.  Appends are flushed and
fsynced so a killed process loses at most the record it was writing;
loading tolerates that torn tail (and any other garbage line) by
skipping it.  Both the exploration sweep journal and the optimizer
evaluation journal are instances of this format.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping

JOURNAL_FORMAT = 1


def load_journal(path: Path) -> dict[str, dict]:
    """Records by content key; tolerates torn/garbage lines and re-keyed
    duplicates (last record wins, matching append order)."""
    records: dict[str, dict] = {}
    if not path.exists():
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed run
            if not isinstance(record, dict) or "key" not in record:
                continue  # meta line
            records[str(record["key"])] = record
    return records


def open_journal(path: Path, kind: str):
    """Open ``path`` for appending; write the meta line when fresh and
    repair a torn (newline-less) tail left by a killed writer."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fresh = not path.exists()
    torn_tail = False
    if not fresh:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                torn_tail = handle.read(1) != b"\n"
    handle = open(path, "a", encoding="utf-8")
    if fresh:
        handle.write(json.dumps({"format": JOURNAL_FORMAT,
                                 "kind": kind}) + "\n")
        handle.flush()
    elif torn_tail:
        handle.write("\n")
        handle.flush()
    return handle


def append_record(handle, key: str, payload: Mapping[str, object]) -> None:
    """Durably append one ``{"key": ..., **payload}`` record."""
    record = {"key": key, **payload}
    handle.write(json.dumps(record, separators=(",", ":")) + "\n")
    handle.flush()
    os.fsync(handle.fileno())
