"""Shared JSONL resume-journal helpers (the PR-4 explore format).

One journal is an append-only JSONL file: a meta line ``{"format": N,
"kind": "<kind>"}`` followed by one record per completed unit of work,
``{"key": "<content key>", ...payload}``.  Appends are flushed and
fsynced so a killed process loses at most the record it was writing;
loading tolerates that torn tail (and any other garbage line) by
skipping it.  Both the exploration sweep journal and the optimizer
evaluation journal are instances of this format.

Journals only ever grow, so long-running services compact them:
:func:`compact_journal` rewrites one in place (atomic replace), keeping
the last record per key and dropping superseded duplicates, torn tails,
and garbage.  ``repro journal compact`` is the CLI face; the
:mod:`repro.serve` maintenance pass calls it on every job journal.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

JOURNAL_FORMAT = 1


def load_journal(path: Path) -> dict[str, dict]:
    """Records by content key; tolerates torn/garbage lines and re-keyed
    duplicates (last record wins, matching append order)."""
    records: dict[str, dict] = {}
    if not path.exists():
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed run
            if not isinstance(record, dict) or "key" not in record:
                continue  # meta line
            records[str(record["key"])] = record
    return records


def open_journal(path: Path, kind: str):
    """Open ``path`` for appending; write the meta line when fresh and
    repair a torn (newline-less) tail left by a killed writer."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fresh = not path.exists()
    torn_tail = False
    if not fresh:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                torn_tail = handle.read(1) != b"\n"
    handle = open(path, "a", encoding="utf-8")
    if fresh:
        handle.write(json.dumps({"format": JOURNAL_FORMAT,
                                 "kind": kind}) + "\n")
        handle.flush()
    elif torn_tail:
        handle.write("\n")
        handle.flush()
    return handle


def append_record(handle, key: str, payload: Mapping[str, object]) -> None:
    """Durably append one ``{"key": ..., **payload}`` record."""
    record = {"key": key, **payload}
    handle.write(json.dumps(record, separators=(",", ":")) + "\n")
    handle.flush()
    os.fsync(handle.fileno())


# -- compaction ----------------------------------------------------------


@dataclass(frozen=True)
class CompactionResult:
    """What one :func:`compact_journal` pass did."""

    kept: int      #: records surviving (one per distinct key)
    dropped: int   #: superseded duplicates + garbage/torn lines removed
    bytes_before: int
    bytes_after: int

    @property
    def changed(self) -> bool:
        return self.dropped > 0 or self.bytes_after != self.bytes_before


def compact_journal(path: str | os.PathLike,
                    kind: str | None = None) -> CompactionResult:
    """Rewrite ``path`` keeping only the last record per key.

    The replacement is built in a temp file next to the journal, fsynced
    and atomically renamed over it, so a crash mid-compaction leaves
    either the old journal or the new one — never a torn hybrid.  The
    meta line is preserved (``kind`` overrides the recorded kind when
    given; a journal that never had one gets a fresh meta line).  A
    missing journal is a no-op.
    """
    path = Path(path)
    if not path.exists():
        return CompactionResult(0, 0, 0, 0)
    bytes_before = path.stat().st_size
    records: dict[str, str] = {}
    record_lines = 0
    garbage = 0
    meta_kind = kind
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                garbage += 1  # torn/garbage line: compacted away
                continue
            if not isinstance(record, dict):
                garbage += 1
                continue
            if "key" not in record:
                if "format" in record or "kind" in record:
                    if meta_kind is None \
                            and isinstance(record.get("kind"), str):
                        meta_kind = record["kind"]
                    continue  # meta line (re-emitted once below)
                garbage += 1  # keyless non-meta object: compacted away
                continue
            record_lines += 1
            records[str(record["key"])] = json.dumps(
                record, separators=(",", ":"))
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".compact-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as out:
            meta = {"format": JOURNAL_FORMAT}
            if meta_kind is not None:
                meta["kind"] = meta_kind
            out.write(json.dumps(meta) + "\n")
            for line in records.values():
                out.write(line + "\n")
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return CompactionResult(
        kept=len(records),
        dropped=(record_lines - len(records)) + garbage,
        bytes_before=bytes_before,
        bytes_after=path.stat().st_size)
