"""Shared JSONL resume-journal helpers (the PR-4 explore format).

One journal is an append-only JSONL file: a meta line ``{"format": N,
"kind": "<kind>"}`` followed by one record per completed unit of work,
``{"key": "<content key>", ...payload}``.  Appends go through a
:class:`JournalWriter` with two durability levels:

* ``"record"`` — every append is flushed *and* fsynced before
  returning, so even a machine crash loses at most the record being
  written.  This is the serve crash-recovery contract.
* ``"batch"`` — group commit: every append is still written and
  flushed (a killed *process* loses nothing), but the fsync happens
  only every ``batch_records`` appends or ``batch_seconds`` of wall
  clock, and on :meth:`~JournalWriter.close`.  A machine crash can
  lose at most one batch.  This is the default for the optimizer and
  explorer journals, where records are a cache of recomputable work
  and per-record fsyncs dominate cheap evaluations.

Either way the file stays torn-tail safe: records are single lines,
and loading tolerates a torn tail (or any other garbage line) by
skipping it.  Both the exploration sweep journal and the optimizer
evaluation journal are instances of this format.

Journals only ever grow, so long-running services compact them:
:func:`compact_journal` rewrites one in place (atomic replace), keeping
the last record per key and dropping superseded duplicates, torn tails,
and garbage.  ``repro journal compact`` is the CLI face; the
:mod:`repro.serve` maintenance pass calls it on every job journal.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

JOURNAL_FORMAT = 1

DURABILITY_LEVELS = ("record", "batch")

#: Group-commit defaults: fsync at most this many records / this much
#: wall-clock behind the last append.
BATCH_RECORDS = 64
BATCH_SECONDS = 0.25


def load_journal(path: Path) -> dict[str, dict]:
    """Records by content key; tolerates torn/garbage lines and re-keyed
    duplicates (last record wins, matching append order)."""
    records: dict[str, dict] = {}
    if not path.exists():
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed run
            if not isinstance(record, dict) or "key" not in record:
                continue  # meta line
            records[str(record["key"])] = record
    return records


class JournalWriter:
    """Append records to one journal under a durability policy.

    Wraps the raw file handle so the two fsync disciplines (see module
    docstring) share one call site.  Also usable as a context manager;
    :meth:`close` always drains the pending batch first.
    """

    def __init__(self, handle, *, durability: str = "record",
                 batch_records: int = BATCH_RECORDS,
                 batch_seconds: float = BATCH_SECONDS) -> None:
        if durability not in DURABILITY_LEVELS:
            raise ValueError(
                f"unknown journal durability {durability!r}; "
                f"expected one of {DURABILITY_LEVELS}")
        self._handle = handle
        self.durability = durability
        self.batch_records = max(1, int(batch_records))
        self.batch_seconds = float(batch_seconds)
        self._pending = 0
        self._last_sync = time.monotonic()

    @property
    def pending(self) -> int:
        """Records written but not yet fsynced (always 0 for "record")."""
        return self._pending

    def append(self, key: str, payload: Mapping[str, object]) -> None:
        """Append one ``{"key": ..., **payload}`` record.

        Always writes and flushes (torn-tail safe against process
        death); fsyncs per the durability policy.
        """
        record = {"key": key, **payload}
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        self._pending += 1
        if self.durability == "record":
            self.sync()
        elif (self._pending >= self.batch_records
                or time.monotonic() - self._last_sync >= self.batch_seconds):
            self.sync()

    def sync(self) -> None:
        """Force the pending batch to disk."""
        if self._pending:
            os.fsync(self._handle.fileno())
            self._pending = 0
        self._last_sync = time.monotonic()

    def fileno(self) -> int:
        return self._handle.fileno()

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_journal(path: Path, kind: str, *, durability: str = "record",
                 batch_records: int = BATCH_RECORDS,
                 batch_seconds: float = BATCH_SECONDS) -> JournalWriter:
    """Open ``path`` for appending; write the meta line when fresh and
    repair a torn (newline-less) tail left by a killed writer."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fresh = not path.exists()
    torn_tail = False
    if not fresh:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                torn_tail = handle.read(1) != b"\n"
    handle = open(path, "a", encoding="utf-8")
    if fresh:
        handle.write(json.dumps({"format": JOURNAL_FORMAT,
                                 "kind": kind}) + "\n")
        handle.flush()
    elif torn_tail:
        handle.write("\n")
        handle.flush()
    return JournalWriter(handle, durability=durability,
                         batch_records=batch_records,
                         batch_seconds=batch_seconds)


def append_record(handle: JournalWriter, key: str,
                  payload: Mapping[str, object]) -> None:
    """Append one record through ``handle``'s durability policy."""
    handle.append(key, payload)


# -- compaction ----------------------------------------------------------


@dataclass(frozen=True)
class CompactionResult:
    """What one :func:`compact_journal` pass did."""

    kept: int      #: records surviving (one per distinct key)
    dropped: int   #: superseded duplicates + garbage/torn lines removed
    bytes_before: int
    bytes_after: int

    @property
    def changed(self) -> bool:
        return self.dropped > 0 or self.bytes_after != self.bytes_before


def compact_journal(path: str | os.PathLike,
                    kind: str | None = None) -> CompactionResult:
    """Rewrite ``path`` keeping only the last record per key.

    The replacement is built in a temp file next to the journal, fsynced
    and atomically renamed over it, so a crash mid-compaction leaves
    either the old journal or the new one — never a torn hybrid.  The
    meta line is preserved (``kind`` overrides the recorded kind when
    given; a journal that never had one gets a fresh meta line).  A
    missing journal is a no-op.
    """
    path = Path(path)
    if not path.exists():
        return CompactionResult(0, 0, 0, 0)
    bytes_before = path.stat().st_size
    records: dict[str, str] = {}
    record_lines = 0
    garbage = 0
    meta_kind = kind
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                garbage += 1  # torn/garbage line: compacted away
                continue
            if not isinstance(record, dict):
                garbage += 1
                continue
            if "key" not in record:
                if "format" in record or "kind" in record:
                    if meta_kind is None \
                            and isinstance(record.get("kind"), str):
                        meta_kind = record["kind"]
                    continue  # meta line (re-emitted once below)
                garbage += 1  # keyless non-meta object: compacted away
                continue
            record_lines += 1
            records[str(record["key"])] = json.dumps(
                record, separators=(",", ":"))
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".compact-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as out:
            meta = {"format": JOURNAL_FORMAT}
            if meta_kind is not None:
                meta["kind"] = meta_kind
            out.write(json.dumps(meta) + "\n")
            for line in records.values():
                out.write(line + "\n")
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return CompactionResult(
        kept=len(records),
        dropped=(record_lines - len(records)) + garbage,
        bytes_before=bytes_before,
        bytes_after=path.stat().st_size)
