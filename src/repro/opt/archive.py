"""NSGA-II-style Pareto archive: multi-objective search made first-class.

The scalarized best that :mod:`repro.opt.search` drivers have always
returned answers "which candidate wins under *these* weights" — but a
multi-term objective like ``gated_weight,area`` really asks for the
whole trade-off curve.  This module supplies that layer:

* :func:`nondominated_sort` — the NSGA-II fast nondominated sort over
  minimized objective vectors (front 0 is exactly
  :func:`repro.opt.objective.pareto_front`);
* :func:`crowding_distances` — the NSGA-II diversity measure within one
  front, with deterministic index tie-breaks;
* :func:`nsga_select` — rank-then-crowding truncation selection, used
  by the portfolio driver to pick diverse elites for island migration;
* :class:`ParetoArchive` — the mutable nondominated set every driver
  now maintains and returns on :class:`~repro.opt.search.OptResult`.
  Entries are deduplicated by objective vector (lexicographically
  smallest candidate key wins, so a single-metric objective keeps
  exactly one representative) and the archive is unbounded by default,
  which is what makes the *anytime* guarantee hold: offering more
  evaluations can only grow or improve the front, never dominate a
  previously returned one.

Every sort, selection, and iteration order here is deterministic in the
offered content — archives never depend on wall clock, hashing order,
or worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Iterable, Mapping, Sequence

from repro.opt.objective import Objective, dominates
from repro.opt.space import Candidate


def nondominated_sort(vectors: Sequence[Sequence[float]],
                      ) -> list[list[int]]:
    """NSGA-II fast nondominated sort over minimized vectors.

    Returns fronts of indices: front 0 is the Pareto front of the whole
    set, front 1 the front of the remainder, and so on.  Indices within
    a front are ascending, so the output is a pure function of the
    input sequence.
    """
    vecs = [tuple(v) for v in vectors]
    n = len(vecs)
    dominated: list[list[int]] = [[] for _ in range(n)]
    blockers = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(vecs[i], vecs[j]):
                dominated[i].append(j)
                blockers[j] += 1
            elif dominates(vecs[j], vecs[i]):
                dominated[j].append(i)
                blockers[i] += 1
    fronts: list[list[int]] = []
    current = [i for i in range(n) if blockers[i] == 0]
    while current:
        fronts.append(current)
        successors: list[int] = []
        for i in current:
            for j in dominated[i]:
                blockers[j] -= 1
                if blockers[j] == 0:
                    successors.append(j)
        current = sorted(successors)
    return fronts


def crowding_distances(vectors: Sequence[Sequence[float]]) -> list[float]:
    """NSGA-II crowding distance of each vector within one front.

    Boundary points of every dimension get ``inf``; interior points sum
    normalized neighbor gaps per dimension.  Ties along a dimension are
    ordered by index, so equal inputs always produce equal outputs.
    """
    vecs = [tuple(v) for v in vectors]
    n = len(vecs)
    if n == 0:
        return []
    distances = [0.0] * n
    for dim in range(len(vecs[0])):
        order = sorted(range(n), key=lambda i: (vecs[i][dim], i))
        lo, hi = order[0], order[-1]
        distances[lo] = distances[hi] = inf
        span = vecs[hi][dim] - vecs[lo][dim]
        if span <= 0:
            continue
        for pos in range(1, n - 1):
            i = order[pos]
            if distances[i] != inf:
                gap = vecs[order[pos + 1]][dim] - vecs[order[pos - 1]][dim]
                distances[i] += gap / span
    return distances


def nsga_select(vectors: Sequence[Sequence[float]], k: int) -> list[int]:
    """Pick ``k`` indices by nondomination rank, then crowding distance.

    Whole fronts are taken in rank order; the first front that does not
    fit is truncated by descending crowding distance (ascending index on
    ties).  Deterministic in the input sequence.
    """
    if k <= 0:
        return []
    selected: list[int] = []
    for front in nondominated_sort(vectors):
        if len(selected) + len(front) <= k:
            selected.extend(front)
            if len(selected) == k:
                break
            continue
        distances = crowding_distances([vectors[i] for i in front])
        ranked = sorted(range(len(front)),
                        key=lambda pos: (-distances[pos], front[pos]))
        selected.extend(front[pos] for pos in ranked[:k - len(selected)])
        break
    return selected


@dataclass(frozen=True)
class ArchiveEntry:
    """One nondominated candidate with its full metric evidence."""

    candidate: Candidate
    metrics: "dict[str, float]"
    score: float                  #: scalarized objective value (maximized)
    vector: tuple[float, ...]     #: minimized objective tuple
    label: str = "search"         #: provenance (greedy label or island)

    def to_dict(self) -> dict:
        return {
            "candidate": {"order": list(self.candidate.order),
                          "n_steps": self.candidate.n_steps,
                          "scheduler": self.candidate.scheduler},
            "key": self.candidate.key(),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "score": self.score,
            "vector": list(self.vector),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ArchiveEntry":
        raw = data["candidate"]
        candidate = Candidate(order=tuple(int(m) for m in raw["order"]),
                              n_steps=int(raw["n_steps"]),
                              scheduler=str(raw["scheduler"]))
        return cls(candidate=candidate,
                   metrics={str(k): float(v)
                            for k, v in data["metrics"].items()},
                   score=float(data["score"]),
                   vector=tuple(float(v) for v in data["vector"]),
                   label=str(data.get("label", "search")))


class ParetoArchive:
    """The evolving nondominated set of one search run.

    ``offer`` keeps the archive a Pareto front at all times: a dominated
    offer is rejected, an accepted offer evicts everything it dominates,
    and vector ties keep the lexicographically smallest candidate key.
    ``max_size`` (``None`` = unbounded, the default) truncates by
    crowding distance; bounding the archive trades the strict anytime
    coverage guarantee for memory.

    The reuse counters mirror :class:`~repro.opt.evaluate.EvalStats`,
    aggregated across islands by the portfolio driver.
    """

    def __init__(self, objective: "Objective | str",
                 max_size: "int | None" = None) -> None:
        self.objective = Objective.parse(objective)
        if max_size is not None and max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self._entries: list[ArchiveEntry] = []
        self.evaluations = 0
        self.memo_hits = 0
        self.store_hits = 0
        self.journal_replays = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def offer(self, candidate: Candidate, metrics: Mapping[str, float],
              label: str = "search") -> bool:
        """Consider one evaluated candidate; True when the front changed."""
        metrics = {str(k): float(v) for k, v in metrics.items()}
        vector = self.objective.vector(metrics)
        survivors: list[ArchiveEntry] = []
        for entry in self._entries:
            if dominates(entry.vector, vector):
                return False
            if entry.vector == vector:
                # Same objective point: canonical representative wins.
                if entry.candidate.key() <= candidate.key():
                    return False
                continue
            if not dominates(vector, entry.vector):
                survivors.append(entry)
        survivors.append(ArchiveEntry(
            candidate=candidate, metrics=metrics,
            score=self.objective.score(metrics), vector=vector, label=label))
        survivors.sort(key=lambda e: (e.vector, e.candidate.key()))
        if self.max_size is not None and len(survivors) > self.max_size:
            keep = nsga_select([e.vector for e in survivors], self.max_size)
            survivors = [survivors[i] for i in sorted(keep)]
        self._entries = survivors
        return True

    def front(self) -> tuple[ArchiveEntry, ...]:
        """The archive, sorted by (vector, candidate key)."""
        return tuple(self._entries)

    def best(self) -> "ArchiveEntry | None":
        """The scalarized winner (ties broken by candidate key)."""
        if not self._entries:
            return None
        return min(self._entries,
                   key=lambda e: (-e.score, e.candidate.key()))

    def select(self, k: int) -> list[ArchiveEntry]:
        """``k`` diverse elites by crowding distance (for migration)."""
        chosen = nsga_select([e.vector for e in self._entries], k)
        return [self._entries[i] for i in chosen]

    def covered_by(self, other: "ParetoArchive") -> bool:
        """True when every entry here is dominated-or-equaled by
        ``other`` — the anytime-monotonicity check: a longer run's
        archive must cover every shorter run's archive."""
        theirs = [e.vector for e in other._entries]
        return all(
            any(v == mine.vector or dominates(v, mine.vector)
                for v in theirs)
            for mine in self._entries)

    @property
    def counters(self) -> dict[str, int]:
        return {"evaluations": self.evaluations,
                "memo_hits": self.memo_hits,
                "store_hits": self.store_hits,
                "journal_replays": self.journal_replays}

    def to_dict(self) -> dict:
        """JSON form (``repro optimize --pareto-out``, serve events)."""
        return {"objective": self.objective.signature(),
                "size": len(self._entries),
                "front": [entry.to_dict() for entry in self._entries],
                **self.counters}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ParetoArchive":
        archive = cls(data["objective"])
        archive._entries = [ArchiveEntry.from_dict(raw)
                            for raw in data.get("front", ())]
        archive._entries.sort(key=lambda e: (e.vector, e.candidate.key()))
        for name in ("evaluations", "memo_hits", "store_hits",
                     "journal_replays"):
            setattr(archive, name, int(data.get(name, 0)))
        return archive

    def merged(self, entries: Iterable[ArchiveEntry]) -> int:
        """Offer many entries; returns how many changed the front."""
        changed = 0
        for entry in entries:
            if self.offer(entry.candidate, entry.metrics, entry.label):
                changed += 1
        return changed
