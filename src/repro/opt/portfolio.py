"""Island-model parallel portfolio search.

The single-threaded drivers of :mod:`repro.opt.search` spend almost all
their wall clock inside candidate evaluation, which is embarrassingly
parallel — but one annealing chain is inherently sequential.  The
portfolio driver gets near-linear scaling the island-model way: run
``islands`` *heterogeneous* chains (annealers at different temperature
scales, plus a uniform-random prospector) concurrently in worker
processes, and periodically exchange information.

The run is organized in **rounds** (migration epochs), which are the
determinism unit:

1. the coordinator ships every island its state, a shared memo
   snapshot, and a per-round move quota (``migration_every``);
2. each island walks its chain for the round in its own process,
   evaluating through a :class:`~repro.opt.evaluate.Evaluator` backed
   by the shared store and the shipped memo;
3. the coordinator collects all islands (sorted by island index, so
   worker scheduling cannot reorder anything), journals every fresh
   record through its single batched
   :class:`~repro.opt.journal.JournalWriter`, offers every visited
   candidate to the run's :class:`~repro.opt.archive.ParetoArchive`,
   and reseeds islands from the cross-island elite set
   (:meth:`~repro.opt.archive.ParetoArchive.select`, so elites are
   *diverse*, not ``k`` copies of the scalar best).

Because islands only interact at round barriers and every merge is
index-ordered, the outcome is a pure function of (config, seed,
islands) — ``workers`` only decides how many islands compute at once.
Candidate metrics are themselves deterministic, so memo/store/journal
hits can change *where* answers come from but never what they are:
journal resume reproduces the uninterrupted outcome exactly.

Anytime budgets: ``time_budget`` (seconds) stops at a round boundary,
adaptively shrinking the final rounds to land near the deadline;
``max_evaluations`` caps *fresh* computations, split deterministically
across islands each round.  Either stop returns the best front found
so far — never an error.
"""

from __future__ import annotations

import math
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.serialize import graph_from_dict, graph_to_dict
from repro.opt.archive import ParetoArchive
from repro.opt.evaluate import EvaluationBudgetExceeded, Evaluator
from repro.opt.objective import Objective
from repro.opt.search import OptResult
from repro.opt.space import Candidate, SearchSpace

#: The heterogeneous chain profiles, cycled over island indices:
#: annealers from exploitative (cool) to explorative (hot), plus a
#: uniform-random prospector.  ``t_scale`` scales the start temperature
#: to the elite score; ``cool`` is the per-round global cooling.
ISLAND_PROFILES = (
    {"kind": "anneal", "t_scale": 0.30, "cool": 0.80},
    {"kind": "anneal", "t_scale": 0.10, "cool": 0.70},
    {"kind": "random"},
    {"kind": "anneal", "t_scale": 0.60, "cool": 0.85},
)


@dataclass(frozen=True)
class IslandState:
    """One island's chain position between rounds (picklable)."""

    current: "Candidate | None" = None
    score: float = -math.inf


def _island_rng(seed: int, island: int, round_index: int) -> random.Random:
    """Independent deterministic stream per (seed, island, round)."""
    return random.Random((seed * 1_000_003 + island) * 8_191 + round_index)


# Worker processes keep the deserialized graph across rounds; payloads
# still carry the dict form so a fresh worker can always rebuild it.
_WORKER_GRAPHS: dict[str, CDFG] = {}


def _payload_graph(payload: dict) -> CDFG:
    fingerprint = payload["fingerprint"]
    graph = _WORKER_GRAPHS.get(fingerprint)
    if graph is None:
        graph = graph_from_dict(payload["graph"])
        _WORKER_GRAPHS[fingerprint] = graph
    return graph


def run_island_round(payload: dict) -> dict:
    """One island, one round, in a worker process (top-level so the
    pool can pickle it).

    Walks ``moves`` chain steps from the shipped state, evaluating
    against the shared store with the coordinator's memo snapshot
    preloaded; ``max_fresh`` bounds fresh computations (crossing it
    ends the round early, never errors).  Returns the new state, every
    visited ``(candidate, metrics)`` in trajectory order, the session
    records to journal, and this round's stats deltas.
    """
    graph = _payload_graph(payload)
    profile = payload["profile"]
    space: SearchSpace = payload["space"]
    state: IslandState = payload["state"]
    rng = _island_rng(payload["seed"], payload["island"],
                      payload["round_index"])
    evaluator = Evaluator(
        graph=graph, objective=payload["objective"],
        store=payload["store"], journal=None,
        preload=payload["memo"], max_evaluations=payload["max_fresh"],
        sim_vectors=payload["sim_vectors"], pm_base=payload["pm_base"])
    visited: list[tuple[Candidate, dict[str, float]]] = []
    exhausted = False

    def evaluate(candidate: Candidate):
        score, metrics = evaluator.evaluate(candidate)
        visited.append((candidate, metrics))
        return score

    current, cur_score = state.current, state.score
    try:
        if current is None:
            current = space.random_candidate(rng)
            cur_score = evaluate(current)
        if profile["kind"] == "random":
            for _ in range(payload["moves"]):
                candidate = space.random_candidate(rng)
                score = evaluate(candidate)
                if score > cur_score:
                    current, cur_score = candidate, score
        else:
            moves = payload["moves"]
            t_hot = max(1.0, profile["t_scale"] * abs(cur_score))
            t_hot *= profile["cool"] ** payload["round_index"]
            cooling = 0.1 ** (1.0 / max(1, moves - 1))
            temperature = max(1e-9, t_hot)
            for _ in range(moves):
                candidate = space.neighbor(current, rng)
                score = evaluate(candidate)
                delta = score - cur_score
                if delta >= 0 or rng.random() < math.exp(
                        max(-700.0, delta / temperature)):
                    current, cur_score = candidate, score
                temperature *= cooling
    except EvaluationBudgetExceeded:
        exhausted = True
    stats = evaluator.stats
    return {
        "island": payload["island"],
        "state": IslandState(current=current, score=cur_score),
        "visited": visited,
        "session": list(evaluator.session.items()),
        "computed": stats.computed,
        "memo_hits": stats.memo_hits,
        "store_hits": stats.store_hits,
        "exhausted": exhausted,
    }


def portfolio(graph: CDFG, objective="gated_weight", *,
              n_steps: int | None = None, budgets=None,
              schedulers=("list",), iters: "int | None" = 240,
              seed: int = 0, workers: int = 4, islands: "int | None" = None,
              migration_every: int = 30, store=None, journal=None,
              max_evaluations: "int | None" = None,
              sim_vectors: int = 128, pm_base=None,
              time_budget: "float | None" = None,
              archive_size: "int | None" = None,
              durability: str = "batch",
              progress=None, front_progress=None) -> OptResult:
    """Island-model parallel portfolio search (see module docstring).

    ``iters`` is the per-island move budget (``None`` = unbounded, for
    pure ``time_budget`` / ``max_evaluations`` runs); ``islands``
    defaults to ``workers``.  The outcome depends only on (arguments,
    seed, islands) — never on worker scheduling.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    islands = workers if islands is None else islands
    if islands < 1:
        raise ValueError(f"islands must be >= 1, got {islands}")
    if migration_every < 1:
        raise ValueError(
            f"migration_every must be >= 1, got {migration_every}")
    if iters is None and time_budget is None and max_evaluations is None:
        raise ValueError("an unbounded portfolio needs iters=, "
                         "time_budget= or max_evaluations=")
    objective = Objective.parse(objective)
    space = SearchSpace.for_graph(graph, budgets=budgets, n_steps=n_steps,
                                  schedulers=schedulers)
    # The coordinator owns all journaling (group-committed); islands
    # never write, so concurrent appends cannot interleave records.
    evaluator = Evaluator(graph=graph, objective=objective, store=store,
                          journal=journal, sim_vectors=sim_vectors,
                          pm_base=pm_base, durability=durability)
    archive = ParetoArchive(objective, max_size=archive_size)
    deadline = (None if time_budget is None
                else time.monotonic() + float(time_budget))
    best: "Candidate | None" = None
    best_score = -math.inf
    best_metrics: dict[str, float] = {}
    best_label = ""
    history: list[tuple[int, float]] = []
    greedy_scores: list[tuple[str, float]] = []

    def offer(candidate, score, metrics, step, label) -> bool:
        nonlocal best, best_score, best_metrics, best_label
        changed = archive.offer(candidate, metrics, label=label)
        if score > best_score:
            best, best_score = candidate, score
            best_metrics, best_label = metrics, label
            history.append((step, score))
            if progress is not None:
                progress(step, score, candidate)
        return changed

    pool = None
    try:
        for label, candidate in space.greedy_candidates(graph):
            score, metrics = evaluator.evaluate(candidate)
            greedy_scores.append((label, score))
            offer(candidate, score, metrics, 0, label)
        if front_progress is not None:
            front_progress(0, archive)

        states = [IslandState() for _ in range(islands)]
        states[0] = IslandState(current=best, score=best_score)
        profiles = [ISLAND_PROFILES[k % len(ISLAND_PROFILES)]
                    for k in range(islands)]
        graph_dict = graph_to_dict(graph)
        fingerprint = evaluator.fingerprint()
        if workers > 1 and islands > 1:
            pool = ProcessPoolExecutor(max_workers=min(workers, islands))

        island_fresh = 0      # fresh computations inside islands
        moves_done = 0        # per-island moves completed
        round_index = 0
        # EMA of wall seconds per *round move* (one move on every
        # island).  Measured, not modeled: it absorbs however much of
        # the island work the machine actually overlaps.
        per_move = 0.0
        while True:
            if iters is not None and moves_done >= iters:
                break
            moves = migration_every
            if iters is not None:
                moves = min(moves, iters - moves_done)
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if per_move > 0:
                    # Shrink the closing rounds to land on the deadline
                    # instead of overshooting by a full round.
                    moves = max(1, min(moves, int(remaining / per_move)))
                else:
                    # No cost estimate yet: probe with a short round so
                    # a tight budget is not blown before the first
                    # measurement exists.
                    moves = min(moves, 8)
                if remaining <= (per_move if per_move > 0 else 0.0):
                    break
            caps: "list[int | None]" = [None] * islands
            if max_evaluations is not None:
                fresh_total = evaluator.stats.computed + island_fresh
                remaining_fresh = max_evaluations - fresh_total
                if remaining_fresh <= 0:
                    break
                base, extra = divmod(remaining_fresh, islands)
                caps = [base + (1 if k < extra else 0)
                        for k in range(islands)]
            round_index += 1
            memo = evaluator.memo_snapshot()
            payloads = [{
                "graph": graph_dict, "fingerprint": fingerprint,
                "objective": objective.signature(), "space": space,
                "state": states[k], "profile": profiles[k],
                "island": k, "seed": seed, "round_index": round_index,
                "moves": moves, "memo": memo, "max_fresh": caps[k],
                "store": store, "sim_vectors": sim_vectors,
                "pm_base": pm_base,
            } for k in range(islands)]
            started = time.monotonic()
            if pool is not None:
                reports = list(pool.map(run_island_round, payloads))
            else:
                reports = [run_island_round(p) for p in payloads]
            elapsed = time.monotonic() - started
            sample = elapsed / max(1, moves)
            per_move = sample if per_move == 0 else \
                0.5 * per_move + 0.5 * sample
            # Index order, not completion order: worker scheduling must
            # not be observable in the merge.
            reports.sort(key=lambda report: report["island"])
            front_changed = False
            for report in reports:
                k = report["island"]
                states[k] = report["state"]
                island_fresh += report["computed"]
                evaluator.stats.memo_hits += report["memo_hits"]
                evaluator.stats.store_hits += report["store_hits"]
                for key, metrics in report["session"]:
                    evaluator.absorb(key, metrics)
                for candidate, metrics in report["visited"]:
                    score = objective.score(metrics)
                    if offer(candidate, score, metrics, round_index,
                             f"island{k}"):
                        front_changed = True
            moves_done += moves
            # Migration: reseed annealing islands from a *diverse*
            # elite set (rank + crowding), not k copies of the best.
            elites = archive.select(islands)
            if elites:
                for k in range(islands):
                    if profiles[k]["kind"] == "random":
                        continue
                    elite = elites[k % len(elites)]
                    if elite.score > states[k].score:
                        states[k] = IslandState(current=elite.candidate,
                                                score=elite.score)
            if front_progress is not None and front_changed:
                front_progress(round_index, archive)
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        evaluator.close()

    assert best is not None
    stats = evaluator.stats
    archive.evaluations = stats.computed + island_fresh
    archive.memo_hits = stats.memo_hits
    archive.store_hits = stats.store_hits
    archive.journal_replays = stats.resumed
    return OptResult(
        circuit=graph.name, driver="portfolio",
        objective=objective.signature(), seed=seed,
        best=best, best_score=best_score,
        best_metrics=tuple(sorted(best_metrics.items())),
        best_label=best_label,
        greedy_scores=tuple(greedy_scores),
        history=tuple(history),
        evaluations=stats.computed + island_fresh,
        reused=stats.memo_hits + stats.store_hits,
        resumed=stats.resumed,
        memo_hits=stats.memo_hits, store_hits=stats.store_hits,
        archive=archive)


#: Package-level alias: ``repro.opt.portfolio`` names this module, so
#: the package exports the driver function under this name instead.
portfolio_search = portfolio
