"""Stochastic search drivers over the joint PM design space.

Four drivers move through the (MUX ordering, control-step budget,
scheduler) space of :mod:`repro.opt.space`, scoring candidates with a
shared cache-aware :class:`~repro.opt.evaluate.Evaluator`:

* :func:`anneal` — seeded simulated annealing with a restart schedule:
  restart 0 starts from the best built-in greedy ordering, later
  restarts from random candidates, each cooling geometrically;
* :func:`beam_search` — deterministic beam search over ordering
  *prefixes*: partial orders are scored by completing them with the
  remaining MUXes in savings order, and the ``beam_width`` best
  prefixes survive each depth;
* :func:`random_search` — the uniform-sampling baseline the other two
  are judged against;
* ``portfolio`` (:mod:`repro.opt.portfolio`) — the island-model
  parallel driver: heterogeneous chains in worker processes with
  periodic elite migration through the shared journal/store.

Every driver first evaluates the built-in greedy strategies
(``output_first`` / ``input_first`` / ``savings``) at every (budget,
scheduler), so its result is **never worse than the best greedy
ordering** by construction.  Drivers are deterministic per (arguments,
seed): re-running one replays the identical trajectory, which is what
makes the journal-based resume exact — an interrupted run re-launched
with the same journal serves the already-computed evaluations from disk
and continues live from the interruption point, producing the same
:meth:`OptResult.outcome` as an uninterrupted run.

Alongside the scalarized best, every driver maintains a
:class:`~repro.opt.archive.ParetoArchive` over the objective's metric
terms and attaches it to :attr:`OptResult.archive` — multi-term
objectives get the whole nondominated trade-off curve, not just the
weighted winner.  ``time_budget=`` (seconds of wall clock) makes any
driver *anytime*: it stops cleanly at the deadline with the best front
found so far, and a longer budget never returns a dominated front.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.ir.graph import CDFG
from repro.opt.archive import ParetoArchive
from repro.opt.evaluate import Evaluator
from repro.opt.objective import Objective
from repro.opt.space import Candidate, SearchSpace


@dataclass(frozen=True)
class SearchSpec:
    """A portable description of one driver invocation (CLI / explore)."""

    driver: str = "anneal"
    objective: str = "gated_weight"
    iters: int = 150
    seed: int = 0
    restarts: int = 2
    beam_width: int = 4
    workers: int = 4                    #: portfolio only
    time_budget: "float | None" = None  #: anytime wall-clock cap, seconds


@dataclass(frozen=True)
class OptResult:
    """What one driver run found, plus where the answers came from.

    ``best_label`` names the winning candidate's origin: a greedy seed
    label (``output_first@7/list``-style) when no search move beat the
    seeds, ``"search"`` (or ``"island<k>"``) otherwise.  ``evaluations``
    / ``reused`` (split as ``memo_hits`` + ``store_hits``) / ``resumed``
    are run diagnostics and intentionally *not* part of :meth:`outcome`
    — a resumed run recomputes less but must find the same answer.
    ``archive`` is the run's Pareto front over the objective terms.
    """

    circuit: str
    driver: str
    objective: str
    seed: int
    best: Candidate
    best_score: float
    best_metrics: tuple[tuple[str, float], ...]
    best_label: str
    greedy_scores: tuple[tuple[str, float], ...]
    #: Best-score improvements as (driver step, score), step 0 = seeds.
    history: tuple[tuple[int, float], ...]
    evaluations: int
    reused: int
    resumed: int
    memo_hits: int = 0
    store_hits: int = 0
    archive: "ParetoArchive | None" = field(
        default=None, compare=False, repr=False)

    @property
    def metrics(self) -> dict[str, float]:
        return dict(self.best_metrics)

    @property
    def journal_replays(self) -> int:
        """Alias for ``resumed`` under its observable name."""
        return self.resumed

    @property
    def best_greedy_score(self) -> float:
        return max(score for _, score in self.greedy_scores)

    @property
    def improvement_over_greedy(self) -> float:
        """How far past the best built-in strategy the search got (>= 0)."""
        return self.best_score - self.best_greedy_score

    def outcome(self) -> dict[str, object]:
        """The resume-invariant search outcome (JSON-compatible).

        Identical for an uninterrupted run and any interrupt/resume
        split of it; this is what the golden regression pins.
        """
        outcome = {
            "circuit": self.circuit,
            "driver": self.driver,
            "objective": self.objective,
            "seed": self.seed,
            "order": list(self.best.order),
            "n_steps": self.best.n_steps,
            "scheduler": self.best.scheduler,
            "score": self.best_score,
            "metrics": dict(self.best_metrics),
            "best_label": self.best_label,
            "greedy_scores": dict(self.greedy_scores),
            "history": [list(step) for step in self.history],
        }
        if self.archive is not None:
            # The front is trajectory-determined, so resume-invariant;
            # the archive's reuse counters are not and stay out.
            outcome["pareto"] = [entry.to_dict()
                                 for entry in self.archive.front()]
        return outcome

    def flow_config(self, base=None):
        """A :class:`~repro.pipeline.FlowConfig` that synthesizes the
        chosen design (ordering pinned via PM strategy ``given``)."""
        from repro.pipeline.config import FlowConfig

        base = base if base is not None else FlowConfig()
        return replace(
            base, n_steps=self.best.n_steps, scheduler=self.best.scheduler,
            pm=self.best.pm_options(base.pm),
            label=f"{self.driver}[{self.objective}]")

    def table(self) -> str:
        lines = [f"{self.driver} on {self.circuit!r} "
                 f"(objective {self.objective}, seed {self.seed})"]
        for label, score in sorted(self.greedy_scores,
                                   key=lambda pair: -pair[1]):
            lines.append(f"  greedy {label:<28s} {score:10.4f}")
        lines.append(f"  best   {self.best_label:<28s} "
                     f"{self.best_score:10.4f}  "
                     f"(+{self.improvement_over_greedy:.4f} over greedy)")
        lines.append(
            f"  order {'>'.join(str(m) for m in self.best.order) or '-'} "
            f"@ {self.best.n_steps} steps / {self.best.scheduler}")
        lines.append(f"  {self.evaluations} evaluated, {self.reused} reused "
                     f"({self.memo_hits} memo, {self.store_hits} store)"
                     + (f", {self.journal_replays} resumed from journal"
                        if self.journal_replays else ""))
        if self.archive is not None and len(self.archive) > 1:
            lines.append(f"  pareto front: {len(self.archive)} points over "
                         f"{self.objective}")
        return "\n".join(lines)


class _Run:
    """Shared driver plumbing: space, evaluator, greedy seeds, best."""

    def __init__(self, graph: CDFG, objective, n_steps, budgets, schedulers,
                 store, journal, max_evaluations, sim_vectors, pm_base,
                 progress=None, time_budget=None, durability="batch"):
        self.graph = graph
        self.progress = progress
        self.objective = Objective.parse(objective)
        self.space = SearchSpace.for_graph(
            graph, budgets=budgets, n_steps=n_steps, schedulers=schedulers)
        self.evaluator = Evaluator(
            graph=graph, objective=self.objective, store=store,
            journal=journal, max_evaluations=max_evaluations,
            sim_vectors=sim_vectors, pm_base=pm_base, durability=durability)
        self.archive = ParetoArchive(self.objective)
        self.deadline = (None if time_budget is None
                         else time.monotonic() + float(time_budget))
        self.best: Candidate | None = None
        self.best_score = -math.inf
        self.best_metrics: Mapping[str, float] = {}
        self.best_label = ""
        self.history: list[tuple[int, float]] = []
        self.greedy_scores: list[tuple[str, float]] = []

    def out_of_time(self) -> bool:
        """The anytime wall-clock budget is spent (always False without
        one)."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    # Context manager so a driver that dies mid-search (e.g. on
    # EvaluationBudgetExceeded) still closes the journal handle.
    def __enter__(self) -> "_Run":
        return self

    def __exit__(self, *exc) -> None:
        self.evaluator.close()

    def seed_greedy(self) -> None:
        for label, candidate in self.space.greedy_candidates(self.graph):
            score, metrics = self.evaluator.evaluate(candidate)
            self.greedy_scores.append((label, score))
            self.offer(candidate, score, metrics, step=0, label=label)

    def offer(self, candidate: Candidate, score: float,
              metrics: Mapping[str, float], step: int,
              label: str = "search") -> None:
        self.archive.offer(candidate, metrics, label=label)
        if score > self.best_score:
            self.best, self.best_score = candidate, score
            self.best_metrics, self.best_label = metrics, label
            self.history.append((step, score))
            if self.progress is not None:
                self.progress(step, score, candidate)

    def result(self, driver: str, seed: int) -> OptResult:
        self.evaluator.close()
        assert self.best is not None
        stats = self.evaluator.stats
        self.archive.evaluations = stats.computed
        self.archive.memo_hits = stats.memo_hits
        self.archive.store_hits = stats.store_hits
        self.archive.journal_replays = stats.resumed
        return OptResult(
            circuit=self.graph.name, driver=driver,
            objective=self.objective.signature(), seed=seed,
            best=self.best, best_score=self.best_score,
            best_metrics=tuple(sorted(self.best_metrics.items())),
            best_label=self.best_label,
            greedy_scores=tuple(self.greedy_scores),
            history=tuple(self.history),
            evaluations=stats.computed, reused=stats.reused,
            resumed=stats.resumed, memo_hits=stats.memo_hits,
            store_hits=stats.store_hits, archive=self.archive)


def random_search(graph: CDFG, objective="gated_weight", *,
                  n_steps: int | None = None, budgets=None,
                  schedulers=("list",), iters: int = 100, seed: int = 0,
                  store=None, journal=None, max_evaluations=None,
                  sim_vectors: int = 128, pm_base=None,
                  time_budget=None, durability="batch",
                  progress=None) -> OptResult:
    """Uniform random sampling of the space — the honesty baseline."""
    with _Run(graph, objective, n_steps, budgets, schedulers,
              store, journal, max_evaluations, sim_vectors, pm_base,
              progress=progress, time_budget=time_budget,
              durability=durability) as run:
        rng = random.Random(seed)
        run.seed_greedy()
        for step in range(1, iters + 1):
            if run.out_of_time():
                break
            candidate = run.space.random_candidate(rng)
            score, metrics = run.evaluator.evaluate(candidate)
            run.offer(candidate, score, metrics, step)
        return run.result("random", seed)


def anneal(graph: CDFG, objective="gated_weight", *,
           n_steps: int | None = None, budgets=None, schedulers=("list",),
           iters: int = 150, seed: int = 0, restarts: int = 2,
           store=None, journal=None, max_evaluations=None,
           sim_vectors: int = 128, pm_base=None,
           time_budget=None, durability="batch",
           progress=None) -> OptResult:
    """Seeded simulated annealing with a restart schedule.

    ``iters`` total neighborhood moves are split evenly across
    ``restarts`` chains.  Chain 0 starts from the best greedy seed;
    later chains from random candidates, re-diversifying the search.
    Each chain cools geometrically from a temperature scaled to the
    seed score down to 1% of it.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    with _Run(graph, objective, n_steps, budgets, schedulers,
              store, journal, max_evaluations, sim_vectors, pm_base,
              progress=progress, time_budget=time_budget,
              durability=durability) as run:
        rng = random.Random(seed)
        run.seed_greedy()
        step = 0
        for restart in range(restarts):
            if run.out_of_time():
                break
            chain_iters = iters // restarts + (1 if restart < iters % restarts
                                               else 0)
            if chain_iters == 0:
                continue
            if restart == 0:
                current, cur_score = run.best, run.best_score
            else:
                current = run.space.random_candidate(rng)
                cur_score, metrics = run.evaluator.evaluate(current)
                step += 1
                run.offer(current, cur_score, metrics, step)
            t_hot = max(1.0, 0.3 * abs(run.best_score))
            cooling = (0.01) ** (1.0 / max(1, chain_iters - 1))
            temperature = t_hot
            for _ in range(chain_iters):
                if run.out_of_time():
                    break
                candidate = run.space.neighbor(current, rng)
                score, metrics = run.evaluator.evaluate(candidate)
                step += 1
                run.offer(candidate, score, metrics, step)
                delta = score - cur_score
                if delta >= 0 or rng.random() < math.exp(delta / temperature):
                    current, cur_score = candidate, score
                temperature *= cooling
        return run.result("anneal", seed)


def beam_search(graph: CDFG, objective="gated_weight", *,
                n_steps: int | None = None, budgets=None,
                schedulers=("list",), beam_width: int = 4, seed: int = 0,
                store=None, journal=None, max_evaluations=None,
                sim_vectors: int = 128, pm_base=None,
                time_budget=None, durability="batch",
                progress=None) -> OptResult:
    """Deterministic beam search over MUX-ordering prefixes.

    A prefix is scored by evaluating the full candidate it induces —
    the prefix followed by the remaining MUXes in savings order — so
    partial decisions are judged by a real synthesis outcome, not a
    proxy.  ``seed`` only labels the result (the driver is
    deterministic); the beam runs once per (budget, scheduler).
    """
    if beam_width < 1:
        raise ValueError(f"beam_width must be >= 1, got {beam_width}")
    from repro.core.ordering import order_muxes

    with _Run(graph, objective, n_steps, budgets, schedulers,
              store, journal, max_evaluations, sim_vectors, pm_base,
              progress=progress, time_budget=time_budget,
              durability=durability) as run:
        run.seed_greedy()
        completion = tuple(order_muxes(graph, "savings"))
        step = 0
        for steps_budget in run.space.budgets:
            for scheduler in run.space.schedulers:
                beam: list[tuple[int, ...]] = [()]
                for _depth in range(len(run.space.mux_ids)):
                    if run.out_of_time():
                        break
                    extensions: list[tuple[float, tuple[int, ...]]] = []
                    for prefix in beam:
                        chosen = set(prefix)
                        for mux in run.space.mux_ids:
                            if mux in chosen:
                                continue
                            new_prefix = prefix + (mux,)
                            head = set(new_prefix)
                            order = new_prefix + tuple(
                                m for m in completion if m not in head)
                            candidate = Candidate(order=order,
                                                  n_steps=steps_budget,
                                                  scheduler=scheduler)
                            score, metrics = \
                                run.evaluator.evaluate(candidate)
                            step += 1
                            run.offer(candidate, score, metrics, step)
                            extensions.append((score, new_prefix))
                    extensions.sort(key=lambda pair: (-pair[0], pair[1]))
                    beam = [prefix for _, prefix in extensions[:beam_width]]
        return run.result("beam", seed)


def _portfolio(graph: CDFG, **kwargs) -> OptResult:
    # Imported lazily: repro.opt.portfolio builds on this module.
    from repro.opt.portfolio import portfolio

    return portfolio(graph, **kwargs)


DRIVERS: dict[str, Callable[..., OptResult]] = {
    "anneal": anneal,
    "beam": beam_search,
    "random": random_search,
    "portfolio": _portfolio,
}

#: Keyword arguments every driver accepts.
COMMON_KNOBS = ("objective", "n_steps", "budgets", "schedulers", "seed",
                "store", "journal", "max_evaluations", "sim_vectors",
                "pm_base", "time_budget", "durability", "progress")

#: Per-driver tuning knobs on top of :data:`COMMON_KNOBS`.  A
#: :class:`SearchSpec` knob outside the chosen driver's set is dropped
#: (one spec fits every driver); any *other* unknown kwarg is an error.
DRIVER_KNOBS = {
    "anneal": ("iters", "restarts"),
    "beam": ("beam_width",),
    "random": ("iters",),
    "portfolio": ("iters", "workers", "islands", "migration_every",
                  "archive_size", "front_progress"),
}

_SPEC_KNOBS = ("iters", "restarts", "beam_width", "workers")


def optimize(graph: CDFG, search: "SearchSpec | str" = SearchSpec(),
             **kwargs) -> OptResult:
    """Run one driver described by ``search`` (a :class:`SearchSpec` or
    a driver name); extra keyword arguments go to the driver."""
    spec = SearchSpec(driver=search) if isinstance(search, str) else search
    if spec.driver not in DRIVERS:
        raise ValueError(f"unknown search driver {spec.driver!r}; choose "
                         f"from {sorted(DRIVERS)}")
    wanted = DRIVER_KNOBS[spec.driver]
    unknown = sorted(set(kwargs)
                     - set(COMMON_KNOBS) - set(wanted) - set(_SPEC_KNOBS))
    if unknown:
        raise ValueError(
            f"unknown option(s) {', '.join(repr(k) for k in unknown)} for "
            f"driver {spec.driver!r}; valid options: "
            f"{', '.join(sorted(set(COMMON_KNOBS) | set(wanted)))}")
    kwargs.setdefault("objective", spec.objective)
    kwargs.setdefault("seed", spec.seed)
    if spec.time_budget is not None:
        kwargs.setdefault("time_budget", spec.time_budget)
    # Each driver takes only its own tuning knobs; the spec's others are
    # dropped here so one SearchSpec (or kwargs pile) fits every driver.
    spec_defaults = {"iters": spec.iters, "restarts": spec.restarts,
                     "beam_width": spec.beam_width, "workers": spec.workers}
    for knob in _SPEC_KNOBS:
        if knob in wanted:
            kwargs.setdefault(knob, spec_defaults[knob])
        else:
            kwargs.pop(knob, None)
    return DRIVERS[spec.driver](graph, **kwargs)
