"""Stochastic PM-aware optimizer subsystem (paper §IV-A, generalized).

Three layers:

* :mod:`repro.opt.objective` — the shared metric registry, weighted
  scalarization (:class:`Objective`) and Pareto helpers used by the
  reordering search, ``explore().pareto()`` and the drivers alike;
* :mod:`repro.opt.space` — the joint (MUX ordering, budget, scheduler)
  search space with seeded sampling and annealing moves;
* :mod:`repro.opt.search` — the drivers: :func:`anneal`,
  :func:`beam_search`, :func:`random_search`, dispatched by
  :func:`optimize`, resumable through the explore-style JSONL journal
  and cache-aware through :class:`~repro.pipeline.DiskArtifactCache`;
* :mod:`repro.opt.archive` — the NSGA-II Pareto layer
  (:class:`ParetoArchive`, :func:`nondominated_sort`,
  :func:`crowding_distances`) every driver maintains alongside its
  scalarized best;
* :mod:`repro.opt.portfolio` — the island-model parallel
  :func:`portfolio` driver: heterogeneous chains in worker processes
  with elite migration at deterministic round barriers.

Quick start::

    from repro.circuits import build
    from repro.opt import optimize

    result = optimize(build("gcd"), "anneal", n_steps=7, iters=200)
    print(result.table())
    design = ...  # Pipeline().run(build("gcd"), result.flow_config())

The search/evaluate layers import the synthesis pipeline, which in turn
(via ``core.reordering``) imports :mod:`repro.opt.objective` — so only
the objective/space layers load eagerly here and everything above them
resolves lazily on first attribute access.
"""

from __future__ import annotations

from repro.opt.objective import (
    METRICS,
    Metric,
    Objective,
    dominates,
    gated_weight,
    pareto_front,
    pm_score,
)
from repro.opt.space import Candidate, SearchSpace

_SEARCH_NAMES = ("DRIVERS", "OptResult", "SearchSpec", "anneal",
                 "beam_search", "optimize", "random_search")
_EVALUATE_NAMES = ("EvaluationBudgetExceeded", "Evaluator", "EvalStats",
                   "OPT_FORMAT")
_ARCHIVE_NAMES = ("ArchiveEntry", "ParetoArchive", "crowding_distances",
                  "nondominated_sort", "nsga_select")
_PORTFOLIO_NAMES = ("ISLAND_PROFILES", "IslandState", "portfolio_search",
                    "run_island_round")

__all__ = [
    "Candidate",
    "METRICS",
    "Metric",
    "Objective",
    "SearchSpace",
    "dominates",
    "gated_weight",
    "pareto_front",
    "pm_score",
    *_ARCHIVE_NAMES,
    *_EVALUATE_NAMES,
    *_PORTFOLIO_NAMES,
    *_SEARCH_NAMES,
]


def __getattr__(name: str):
    if name in _SEARCH_NAMES:
        from repro.opt import search

        return getattr(search, name)
    if name in _EVALUATE_NAMES:
        from repro.opt import evaluate

        return getattr(evaluate, name)
    if name in _ARCHIVE_NAMES:
        from repro.opt import archive

        return getattr(archive, name)
    if name in _PORTFOLIO_NAMES:
        # import_module, not a from-import: ``repro.opt.portfolio`` is
        # a module whose main export shares its name, and the
        # from-import form would re-enter this __getattr__.
        import importlib

        return getattr(importlib.import_module("repro.opt.portfolio"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
