"""Programmatic regeneration of the paper's tables.

The single source of truth used by the benchmark harness and the CLI:
each function returns measured rows as plain dataclasses mirroring the
paper's layout, so callers can print, assert against, or diff them with
the published values in :mod:`repro.circuits.suite`.

All measurements run through one module-level caching
:class:`~repro.pipeline.Pipeline`, so the (circuit, budget) pairs the
tables share — e.g. dealer@6 appears in both Table II and Table III —
are synthesized once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import CircuitStats, circuit_stats
from repro.circuits import TABLE2_BUDGETS, TABLE3_BUDGETS, build
from repro.ir.ops import ResourceClass
from repro.pipeline import ArtifactCache, FlowConfig, Pipeline, run_pair
from repro.pipeline.result import SynthesisPair
from repro.power.simulated import measure_power
from repro.power.static import SelectModel, expected_op_counts, static_power
from repro.power.weights import PowerWeights
from repro.sim.vectors import random_vectors
from repro.sim.workloads import (
    balanced_condition_vectors,
    iter_balanced_condition_vectors,
)

_PIPELINE = Pipeline(cache=ArtifactCache())


def _pair(name: str, steps: int) -> SynthesisPair:
    return run_pair(build(name), FlowConfig(n_steps=steps),
                    pipeline=_PIPELINE)


def measure_table1() -> dict[str, CircuitStats]:
    """Measured Table I: per-circuit statistics."""
    return {name: circuit_stats(build(name)) for name in TABLE2_BUDGETS}


@dataclass(frozen=True)
class MeasuredTable2Row:
    name: str
    control_steps: int
    pm_muxes: int
    area_increase: float
    avg_mux: float
    avg_comp: float
    avg_add: float
    avg_sub: float
    avg_mul: float
    power_reduction_pct: float


def measure_table2(
    selects: SelectModel | None = None,
    weights: PowerWeights | None = None,
) -> list[MeasuredTable2Row]:
    """Measured Table II at every (circuit, budget) the paper evaluates."""
    selects = selects if selects is not None else SelectModel()
    weights = weights if weights is not None else PowerWeights()
    rows = []
    for name, budgets in TABLE2_BUDGETS.items():
        for steps in budgets:
            pair = _pair(name, steps)
            counts = expected_op_counts(pair.managed.pm, selects)
            report = static_power(pair.managed.pm, weights=weights,
                                  selects=selects)
            rows.append(MeasuredTable2Row(
                name=name,
                control_steps=steps,
                pm_muxes=pair.managed.pm.managed_count,
                area_increase=pair.area_increase,
                avg_mux=counts.get(ResourceClass.MUX, 0.0),
                avg_comp=counts.get(ResourceClass.COMP, 0.0),
                avg_add=counts.get(ResourceClass.ADD, 0.0),
                avg_sub=counts.get(ResourceClass.SUB, 0.0),
                avg_mul=counts.get(ResourceClass.MUL, 0.0),
                power_reduction_pct=report.reduction_pct,
            ))
    return rows


@dataclass(frozen=True)
class MeasuredTable3Row:
    name: str
    control_steps: int
    area_orig: int
    area_new: int
    power_orig: float
    power_new: float

    @property
    def area_increase(self) -> float:
        return self.area_new / self.area_orig if self.area_orig else 0.0

    @property
    def power_reduction_pct(self) -> float:
        if self.power_orig == 0:
            return 0.0
        return 100.0 * (self.power_orig - self.power_new) / self.power_orig


def measure_table3(n_vectors: int = 192, seed: int = 1996,
                   rel_tol: float | None = None,
                   backend: str = "auto") -> list[MeasuredTable3Row]:
    """Measured Table III: simulated power of orig vs PM designs.

    dealer/vender use uniform random vectors (the paper's method); gcd uses
    the balanced-condition workload (see EXPERIMENTS.md on why uniform
    8-bit pairs starve its done-branch).  Simulation runs on the batch
    engine ``backend`` selects (bit-identical numbers either way);
    ``rel_tol`` switches from the fixed ``n_vectors`` sample to Monte
    Carlo estimation, streaming each workload until the energy
    confidence interval converges.
    """
    rows = []
    for name, steps in TABLE3_BUDGETS.items():
        graph = build(name)
        pair = _pair(name, steps)
        if rel_tol is not None:
            # MC mode streams; two iterators because each design's
            # estimator consumes its own (identically seeded) stream.
            orig_vectors = managed_vectors = None
            if name == "gcd":
                orig_vectors = iter_balanced_condition_vectors(graph,
                                                               seed=seed)
                managed_vectors = iter_balanced_condition_vectors(graph,
                                                                  seed=seed)
        elif name == "gcd":
            orig_vectors = managed_vectors = balanced_condition_vectors(
                graph, count=n_vectors, seed=seed)
        else:
            orig_vectors = managed_vectors = random_vectors(
                graph, n_vectors, seed=seed)
        orig = measure_power(pair.baseline.design, vectors=orig_vectors,
                             power_management=False, seed=seed,
                             rel_tol=rel_tol, backend=backend)
        new = measure_power(pair.managed.design, vectors=managed_vectors,
                            power_management=True, seed=seed,
                            rel_tol=rel_tol, backend=backend)
        rows.append(MeasuredTable3Row(
            name=name,
            control_steps=steps,
            area_orig=pair.baseline.design.area().total,
            area_new=pair.managed.design.area().total,
            power_orig=orig.total,
            power_new=new.total,
        ))
    return rows
