"""Deprecated kwarg-style entry points to the synthesis flow.

``synthesize`` / ``synthesize_pair`` predate the composable
:mod:`repro.pipeline` API and are kept as thin shims: they translate
their keyword arguments into a :class:`~repro.pipeline.FlowConfig` and
run the default :class:`~repro.pipeline.Pipeline`.  New code should use
the pipeline API directly::

    from repro.pipeline import FlowConfig, Pipeline, run_pair

    result = Pipeline().run(graph, FlowConfig(n_steps=6))
    pair = run_pair(graph, FlowConfig(n_steps=6))

``SynthesisResult`` and ``SynthesisPair`` now live in
:mod:`repro.pipeline.result` and are re-exported here unchanged.
"""

from __future__ import annotations

import warnings

from repro.core.pm_pass import PMOptions
from repro.ir.graph import CDFG
from repro.pipeline.config import FlowConfig
from repro.pipeline.engine import Pipeline, run_pair
from repro.pipeline.result import SynthesisPair, SynthesisResult

__all__ = ["SynthesisPair", "SynthesisResult", "synthesize",
           "synthesize_pair"]


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"repro.flow.{name}() is deprecated; build a repro.pipeline."
        f"Pipeline and run it with a FlowConfig instead",
        DeprecationWarning, stacklevel=3)


def _config(
    n_steps: int,
    options: PMOptions | None,
    width: int,
    initiation_interval: int | None,
    mutex_sharing: bool,
    verify: bool,
) -> FlowConfig:
    return FlowConfig(
        n_steps=n_steps,
        pm=options,
        width=width,
        initiation_interval=initiation_interval,
        mutex_sharing=mutex_sharing,
        verify=verify,
    )


def synthesize(
    graph: CDFG,
    n_steps: int,
    options: PMOptions | None = None,
    width: int = 8,
    initiation_interval: int | None = None,
    mutex_sharing: bool = False,
    verify: bool = False,
) -> SynthesisResult:
    """Deprecated alias for ``Pipeline().run(graph, FlowConfig(...))``."""
    _warn_deprecated("synthesize")
    config = _config(n_steps, options, width, initiation_interval,
                     mutex_sharing, verify)
    return Pipeline().run(graph, config)


def synthesize_pair(
    graph: CDFG,
    n_steps: int,
    options: PMOptions | None = None,
    width: int = 8,
    initiation_interval: int | None = None,
) -> SynthesisPair:
    """Deprecated alias for ``run_pair(graph, FlowConfig(...))``."""
    _warn_deprecated("synthesize_pair")
    config = _config(n_steps, options, width, initiation_interval,
                     mutex_sharing=False, verify=False)
    return run_pair(graph, config)
