"""End-to-end behavioral synthesis flow.

``synthesize`` drives the full pipeline the paper describes: PM pass
(Fig. 3 steps 2-10) -> resource-minimizing scheduling (step 11) -> datapath
and controller generation (step 12).  ``synthesize_pair`` additionally
builds the non-power-managed baseline of the same circuit at the same
throughput, which every paper table compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pm_pass import PMOptions, PMResult, apply_power_management
from repro.ir.graph import CDFG
from repro.ir.validate import validate
from repro.power.static import SelectModel, StaticPowerReport, static_power
from repro.power.weights import PowerWeights
from repro.rtl.design import SynthesizedDesign, elaborate
from repro.sched.minimize import minimize_resources
from repro.sched.schedule import Schedule


@dataclass
class SynthesisResult:
    """Everything produced for one circuit at one step budget."""

    design: SynthesizedDesign
    pm: PMResult
    schedule: Schedule

    @property
    def allocation(self):
        return self.schedule.resource_usage()

    def static_report(self, weights: PowerWeights = PowerWeights(),
                      selects: SelectModel = SelectModel()) -> StaticPowerReport:
        return static_power(self.pm, weights=weights, selects=selects)


def synthesize(
    graph: CDFG,
    n_steps: int,
    options: PMOptions = PMOptions(),
    width: int = 8,
    initiation_interval: int | None = None,
    mutex_sharing: bool = False,
    verify: bool = False,
) -> SynthesisResult:
    """Run the full flow on ``graph`` with an ``n_steps`` throughput budget.

    ``verify=True`` additionally runs the structural gating-soundness
    check (:func:`repro.analysis.verify_gating`) on the PM result.
    """
    validate(graph)
    pm = apply_power_management(graph, n_steps, options)
    if verify:
        from repro.analysis.verify_gating import verify_gating
        verify_gating(pm)
    minimized = minimize_resources(pm.graph, n_steps,
                                   initiation_interval=initiation_interval)
    design = elaborate(pm, minimized.schedule, width=width,
                       mutex_sharing=mutex_sharing)
    return SynthesisResult(design=design, pm=pm, schedule=minimized.schedule)


@dataclass
class SynthesisPair:
    """Power-managed design plus its traditional baseline."""

    baseline: SynthesisResult
    managed: SynthesisResult

    @property
    def area_increase(self) -> float:
        """Table II column 4: extra execution-unit area needed by PM."""
        orig = self.baseline.design.area().total
        new = self.managed.design.area().total
        return new / orig if orig else 0.0


def synthesize_pair(
    graph: CDFG,
    n_steps: int,
    options: PMOptions = PMOptions(),
    width: int = 8,
    initiation_interval: int | None = None,
) -> SynthesisPair:
    """Synthesize both the PM and the traditional design at one budget."""
    baseline = synthesize(
        graph, n_steps,
        options=PMOptions(enabled=False),
        width=width, initiation_interval=initiation_interval,
    )
    managed = synthesize(
        graph, n_steps, options=options, width=width,
        initiation_interval=initiation_interval,
    )
    return SynthesisPair(baseline=baseline, managed=managed)
