"""repro: reproduction of "Scheduling Techniques to Enable Power Management"
(Monteiro, Devadas, Ashar, Mauskar — DAC 1996).

A behavioral-synthesis flow with a power-management-aware scheduling pass:
operations that compute conditional-select signals are scheduled before the
operations they control, so the generated controller can keep the input
latches of unneeded execution units disabled.

Quick start::

    from repro import abs_diff, synthesize, PMOptions
    result = synthesize(abs_diff(), n_steps=3)
    print(result.design.summary())
    print(result.static_report().reduction_pct)   # % datapath power saved
"""

from repro.circuits import abs_diff, build, cordic, dealer, diffeq, gcd, vender
from repro.core import (
    PMOptions,
    PMResult,
    apply_power_management,
    compute_cones,
    describe_decisions,
)
from repro.flow import SynthesisPair, SynthesisResult, synthesize, synthesize_pair
from repro.ir import CDFG, GraphBuilder, Op, ResourceClass, unroll
from repro.power import (
    PowerWeights,
    SelectModel,
    compare_designs,
    expected_op_counts,
    measure_power,
    static_power,
)
from repro.rtl import generate_vhdl
from repro.sched import (
    Allocation,
    Schedule,
    critical_path_length,
    list_schedule,
    minimize_resources,
)
from repro.sim import RTLSimulator, evaluate, random_vectors

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "CDFG",
    "GraphBuilder",
    "Op",
    "PMOptions",
    "PMResult",
    "PowerWeights",
    "RTLSimulator",
    "ResourceClass",
    "Schedule",
    "SelectModel",
    "SynthesisPair",
    "SynthesisResult",
    "__version__",
    "abs_diff",
    "apply_power_management",
    "build",
    "compare_designs",
    "compute_cones",
    "cordic",
    "critical_path_length",
    "dealer",
    "describe_decisions",
    "diffeq",
    "evaluate",
    "expected_op_counts",
    "gcd",
    "generate_vhdl",
    "list_schedule",
    "measure_power",
    "minimize_resources",
    "random_vectors",
    "static_power",
    "synthesize",
    "synthesize_pair",
    "unroll",
    "vender",
]
