"""repro: reproduction of "Scheduling Techniques to Enable Power Management"
(Monteiro, Devadas, Ashar, Mauskar — DAC 1996).

A behavioral-synthesis flow with a power-management-aware scheduling pass:
operations that compute conditional-select signals are scheduled before the
operations they control, so the generated controller can keep the input
latches of unneeded execution units disabled.

Quick start — the flow is a pipeline of named stages driven by one
config object::

    from repro import FlowConfig, Pipeline, abs_diff

    pipeline = Pipeline()                  # validate -> ... -> report
    result = pipeline.run(abs_diff(), FlowConfig(n_steps=3))
    print(result.design.summary())
    print(result.static_report().reduction_pct)  # % datapath power saved

Pick the base scheduler by name, turn on artifact caching, and sweep a
design space in parallel::

    from repro import ArtifactCache, explore

    pipeline = Pipeline(cache=ArtifactCache())
    exact = pipeline.run(abs_diff(), FlowConfig(n_steps=3,
                                                scheduler="exact"))
    space = explore(["dealer", "gcd", "vender"], budgets=[5, 6, 7],
                    workers=4)
    print(space.table())

The pre-1.1 entry points ``synthesize`` / ``synthesize_pair`` still work
as deprecated shims over the pipeline.
"""

from repro.circuits import abs_diff, build, cordic, dealer, diffeq, gcd, vender
from repro.core import (
    PMOptions,
    PMResult,
    apply_power_management,
    compute_cones,
    describe_decisions,
)
from repro.flow import synthesize, synthesize_pair
from repro.ir import CDFG, GraphBuilder, Op, ResourceClass, unroll
from repro.pipeline import (
    ArtifactCache,
    ExplorationResult,
    FlowConfig,
    FlowContext,
    Pipeline,
    Stage,
    SynthesisPair,
    SynthesisResult,
    available_schedulers,
    default_stages,
    explore,
    register_scheduler,
    run_flow,
    run_pair,
)
from repro.opt import Objective, OptResult, SearchSpec, optimize
from repro.power import (
    PowerWeights,
    SelectModel,
    compare_designs,
    expected_op_counts,
    measure_power,
    static_power,
)
from repro.rtl import generate_vhdl
from repro.sched import (
    Allocation,
    Schedule,
    critical_path_length,
    list_schedule,
    minimize_resources,
)
from repro.sim import CompiledEngine, RTLSimulator, evaluate, random_vectors

__version__ = "1.1.0"

__all__ = [
    "Allocation",
    "ArtifactCache",
    "CDFG",
    "CompiledEngine",
    "ExplorationResult",
    "FlowConfig",
    "FlowContext",
    "GraphBuilder",
    "Objective",
    "Op",
    "OptResult",
    "PMOptions",
    "PMResult",
    "Pipeline",
    "SearchSpec",
    "PowerWeights",
    "RTLSimulator",
    "ResourceClass",
    "Schedule",
    "SelectModel",
    "Stage",
    "SynthesisPair",
    "SynthesisResult",
    "__version__",
    "abs_diff",
    "apply_power_management",
    "available_schedulers",
    "build",
    "compare_designs",
    "compute_cones",
    "cordic",
    "critical_path_length",
    "dealer",
    "default_stages",
    "describe_decisions",
    "diffeq",
    "evaluate",
    "expected_op_counts",
    "explore",
    "gcd",
    "generate_vhdl",
    "list_schedule",
    "measure_power",
    "minimize_resources",
    "optimize",
    "random_vectors",
    "register_scheduler",
    "run_flow",
    "run_pair",
    "static_power",
    "synthesize",
    "synthesize_pair",
    "unroll",
    "vender",
]
