"""Seeded random-CDFG workload generation (``repro.gen``).

Quick start::

    from repro.gen import random_cdfg

    graph = random_cdfg(42, preset="branchy")   # deterministic

or by scenario name through the circuit registry::

    from repro.circuits import build

    graph = build("gen:branchy:42")

Importing this package registers the ``gen`` scenario family with
:mod:`repro.circuits.suite` (``circuits.build`` also does this lazily on
the first ``gen:`` spec it sees).
"""

from repro.gen.random_cdfg import (
    DEFAULT_OP_MIX,
    PRESETS,
    GenConfig,
    build_spec,
    generate,
    random_cdfg,
)

from repro.circuits.suite import register_family

register_family("gen", build_spec)

__all__ = [
    "DEFAULT_OP_MIX",
    "GenConfig",
    "PRESETS",
    "build_spec",
    "generate",
    "random_cdfg",
]
