"""Seeded random-CDFG workload generator.

The paper's four benchmarks are points in a much larger space of
control-dominated dataflow circuits.  ``generate`` grows arbitrarily many
*valid* CDFGs from a seed through the ordinary :class:`GraphBuilder`
API, so every downstream consumer (PM pass, schedulers, allocators, the
three simulation backends, the VHDL emitter, the language printer) sees
exactly the graphs it would see from hand-written sources.

Knobs (:class:`GenConfig`):

* ``op_mix`` — relative weights of the arithmetic/comparison/logic
  operation kinds drawn for dataflow nodes;
* ``mux_density`` — how often a grown operation is a conditional (a MUX
  plus its freshly-built select comparison);
* ``mutex_density`` — probability that a conditional's two data inputs
  are *private branch cones*: operation chains consumed only by that MUX
  side, i.e. mutually-exclusive regions — precisely the structure the
  paper's power-management pass (and ``mutex_sharing`` allocation)
  exists to exploit;
* ``nesting_depth`` — how deeply conditionals may nest inside branch
  cones;
* ``n_inputs`` / ``reuse_window`` — DAG shape: many inputs with
  unrestricted operand reuse gives wide, shallow graphs; few inputs with
  a small reuse window forces long dependence chains (deep graphs).

Everything is driven by one ``random.Random(seed)`` stream, so a
``(config, seed)`` pair is a stable, shareable scenario name — the
``circuits.build("gen:<preset>:<seed>")`` family interface and the
differential-fuzz suites rely on that determinism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.ir.builder import GraphBuilder, Value
from repro.ir.graph import CDFG

#: Default relative weights of the dataflow operation kinds.
DEFAULT_OP_MIX: tuple[tuple[str, float], ...] = (
    ("add", 3.0), ("sub", 2.0), ("mul", 1.0), ("comp", 2.0), ("logic", 1.0),
)

_COMPARISONS = ("gt", "lt", "ge", "le", "eq", "ne")
_LOGIC = ("and_", "or_", "xor")
_KINDS = {"add", "sub", "mul", "comp", "logic"}


@dataclass(frozen=True)
class GenConfig:
    """Everything :func:`generate` needs to grow one random circuit.

    The config is frozen (usable as a dict key / preset) and fully
    determines the output together with nothing else: two calls with
    equal configs build fingerprint-identical graphs.
    """

    seed: int = 0
    #: Target number of schedulable operations (the generator stops
    #: growing once it reaches or passes this count).
    n_ops: int = 16
    #: Primary inputs — the width of the DAG at its top.
    n_inputs: int = 3
    #: Relative weights for add/sub/mul/comp/logic dataflow nodes.
    op_mix: tuple[tuple[str, float], ...] = DEFAULT_OP_MIX
    #: Probability a grown operation is a conditional (MUX + select).
    mux_density: float = 0.3
    #: Probability a conditional's data inputs are private mutually-
    #: exclusive branch cones rather than shared public values.
    mutex_density: float = 0.6
    #: Operations per private branch cone.
    branch_ops: int = 2
    #: Maximum conditional nesting depth inside branch cones.
    nesting_depth: int = 2
    #: Probability a cone operation nests a further conditional (while
    #: depth budget remains).
    nest_density: float = 0.25
    #: Operand locality: operands are drawn from the most recent
    #: ``reuse_window`` public values (``None`` = the whole pool).
    #: Small windows force chains (deep DAGs); ``None`` gives wide DAGs.
    reuse_window: int | None = None
    #: Probability of injecting a small constant operand.
    const_density: float = 0.1
    #: Graph name; empty derives ``gen:custom:<seed>``.
    name: str = ""

    def validate(self) -> None:
        if self.n_ops < 1:
            raise ValueError(f"n_ops must be >= 1, got {self.n_ops}")
        if self.n_inputs < 1:
            raise ValueError(f"n_inputs must be >= 1, got {self.n_inputs}")
        if self.branch_ops < 1:
            raise ValueError(
                f"branch_ops must be >= 1, got {self.branch_ops}")
        if self.nesting_depth < 0:
            raise ValueError(
                f"nesting_depth must be >= 0, got {self.nesting_depth}")
        if self.reuse_window is not None and self.reuse_window < 1:
            raise ValueError(
                f"reuse_window must be >= 1 or None, got {self.reuse_window}")
        for knob in ("mux_density", "mutex_density", "nest_density",
                     "const_density"):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1], got {value}")
        kinds = [kind for kind, _ in self.op_mix]
        unknown = sorted(set(kinds) - _KINDS)
        if unknown:
            raise ValueError(
                f"unknown op_mix kinds {unknown}; choose from "
                f"{sorted(_KINDS)}")
        if not any(weight > 0 for _, weight in self.op_mix):
            raise ValueError("op_mix needs at least one positive weight")


#: Named parameter families: scenario shapes the test suites and the
#: ``gen:<preset>:<seed>`` circuit specs select by name.
PRESETS: dict[str, GenConfig] = {
    "tiny": GenConfig(n_ops=6, n_inputs=2, nesting_depth=1),
    "small": GenConfig(n_ops=10, n_inputs=3, nesting_depth=1),
    "medium": GenConfig(n_ops=20, n_inputs=4, nesting_depth=2),
    "branchy": GenConfig(n_ops=24, n_inputs=4, mux_density=0.5,
                         mutex_density=0.9, nesting_depth=3),
    "wide": GenConfig(n_ops=24, n_inputs=8, mux_density=0.2,
                      reuse_window=None),
    "deep": GenConfig(n_ops=24, n_inputs=2, mux_density=0.2,
                      reuse_window=2),
    "large": GenConfig(n_ops=48, n_inputs=6, nesting_depth=3),
}


class _Grower:
    """One generation run: the builder plus the op budget bookkeeping."""

    def __init__(self, config: GenConfig, name: str) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.builder = GraphBuilder(name)
        self.ops_built = 0
        # Public pool: values later operations may consume.  Private cone
        # values never enter it, which is what makes cones mutually
        # exclusive (each is consumed only through its MUX side).
        self.pool: list[Value] = [
            self.builder.input(f"i{k}") for k in range(config.n_inputs)
        ]
        kinds = [kind for kind, weight in config.op_mix if weight > 0]
        weights = [weight for _, weight in config.op_mix if weight > 0]
        self._kinds, self._weights = kinds, weights

    # -- operand selection ----------------------------------------------

    def pick(self) -> Value:
        if (self.config.const_density and
                self.rng.random() < self.config.const_density):
            return self.builder.const(self.rng.randint(-16, 16))
        window = self.config.reuse_window
        candidates = (self.pool if window is None or window >= len(self.pool)
                      else self.pool[-window:])
        return self.rng.choice(candidates)

    # -- growth ----------------------------------------------------------

    def binary(self, a: Value, b: Value) -> Value:
        kind = self.rng.choices(self._kinds, weights=self._weights)[0]
        if kind == "comp":
            method = self.rng.choice(_COMPARISONS)
        elif kind == "logic":
            method = self.rng.choice(_LOGIC)
        else:
            method = kind
        self.ops_built += 1
        return getattr(self.builder, method)(a, b)

    def cone(self, depth: int) -> Value:
        """A private operation chain consumed only by one MUX side."""
        value = self.binary(self.pick(), self.pick())
        for _ in range(self.config.branch_ops - 1):
            if (depth < self.config.nesting_depth and
                    self.rng.random() < self.config.nest_density):
                value = self.conditional(depth + 1, in0=value)
            else:
                value = self.binary(value, self.pick())
        return value

    def conditional(self, depth: int, in0: Value | None = None) -> Value:
        """A MUX with a fresh select comparison; optionally with private
        mutually-exclusive branch cones."""
        select = getattr(self.builder, self.rng.choice(_COMPARISONS))(
            self.pick(), self.pick())
        self.ops_built += 1
        if self.rng.random() < self.config.mutex_density:
            if in0 is None:
                in0 = self.cone(depth)
            in1 = self.cone(depth)
        else:
            if in0 is None:
                in0 = self.pick()
            in1 = self.pick()
        self.ops_built += 1
        return self.builder.mux(select, in0, in1)

    def grow(self) -> CDFG:
        config = self.config
        while self.ops_built < config.n_ops:
            if (config.nesting_depth > 0 and
                    self.rng.random() < config.mux_density):
                self.pool.append(self.conditional(depth=1))
            else:
                self.pool.append(self.binary(self.pick(), self.pick()))
        # Export every sink so no operation is dead and validate() holds.
        graph = self.builder.graph
        exported = 0
        for value in self.pool:
            node = graph.node(value.nid)
            if node.is_schedulable and not graph.data_succs(value.nid):
                self.builder.output(value, f"o{exported}")
                exported += 1
        if exported == 0:
            self.builder.output(self.pool[-1], "o0")
        return self.builder.build()


def generate(config: GenConfig) -> CDFG:
    """Build the (deterministic) random circuit ``config`` describes."""
    config.validate()
    name = config.name or f"gen:custom:{config.seed}"
    return _Grower(config, name).grow()


def random_cdfg(seed: int, preset: str = "medium", **overrides) -> CDFG:
    """Convenience wrapper: a preset family member at ``seed``.

    ``overrides`` are :class:`GenConfig` field replacements; the graph is
    named after the family spec (``gen:<preset>:<seed>``) so it can be
    rebuilt by name through :func:`repro.circuits.build`.
    """
    try:
        base = PRESETS[preset]
    except KeyError:
        raise KeyError(
            f"unknown generator preset {preset!r}; choose from "
            f"{sorted(PRESETS)}") from None
    name = overrides.pop("name", f"gen:{preset}:{seed}")
    config = replace(base, seed=seed, name=name, **overrides)
    return generate(config)


def build_spec(spec: str) -> CDFG:
    """Family builder for ``circuits.build``: ``"<preset>:<seed>"``.

    ``"<seed>"`` alone selects the ``medium`` preset, so the shortest
    scenario names are ``gen:0``, ``gen:1``, ...
    """
    preset, _, seed_text = spec.rpartition(":")
    preset = preset or "medium"
    try:
        seed = int(seed_text)
    except ValueError:
        raise ValueError(
            f"bad generator spec {spec!r}: expected '<preset>:<seed>' or "
            f"'<seed>' with an integer seed") from None
    if preset not in PRESETS:
        # ValueError, not KeyError: callers treat KeyError as "not a
        # known circuit" and would bury the preset typo.
        raise ValueError(
            f"bad generator spec {spec!r}: unknown preset {preset!r} "
            f"(choose from {sorted(PRESETS)})")
    return random_cdfg(seed, preset=preset)
