"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro stats dealer                    # Table I row
    python -m repro synthesize gcd --steps 7        # full report
    python -m repro synthesize my.circ --steps 6 --partial --ordering savings
    python -m repro synthesize gcd --steps 7 --scheduler force_directed
    python -m repro vhdl vender --steps 6 -o vender.vhd
    python -m repro simulate dealer --steps 6 --vectors 256
    python -m repro explore dealer gcd vender --budgets 5,6,7 --workers 4
    python -m repro explore gcd "gen:branchy:42" --budgets 6,7,8 \
        --store .cache/explore --resume sweep.jsonl --pareto
    python -m repro optimize vender --budgets 5,6 --iters 200 --seed 0
    python -m repro optimize dealer --steps 6 --objective sim_power \
        --store .cache/opt --resume opt.jsonl
    python -m repro serve --state .serve --port 8642 --workers 4
    python -m repro submit explore gcd dealer --budgets 5,6,7 --watch
    python -m repro submit optimize vender --budgets 6,7 --iters 100
    python -m repro jobs --port 8642                # list server jobs
    python -m repro journal compact sweep.jsonl
    python -m repro tables                          # Tables I-III summary

Circuit arguments are either a registered benchmark name (dealer, gcd,
vender, cordic) or a path to a ``.circ``/``.txt`` file in the description
language.  Every synthesis command drives a shared caching
:class:`repro.pipeline.Pipeline`, so multi-design commands reuse work.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.analysis.stats import circuit_stats
from repro.circuits import CIRCUITS, build
from repro.core.pm_pass import PMOptions
from repro.ir.graph import CDFG
from repro.lang.lower import compile_circuit
from repro.pipeline import (
    ArtifactCache,
    FlowConfig,
    Pipeline,
    available_schedulers,
    explore,
    run_pair,
)
from repro.power.simulated import compare_designs
from repro.report import full_report
from repro.rtl.vhdl import generate_vhdl
from repro.sched.timing import critical_path_length

# One pipeline per CLI invocation: `simulate` and `explore` style
# commands synthesize several related designs and share artifacts.
_PIPELINE = Pipeline(cache=ArtifactCache())


def load_circuit(spec: str) -> CDFG:
    """Benchmark name, family spec (``gen:<preset>:<seed>``), or a DSL
    source file path."""
    try:
        return build(spec)
    except ValueError as error:  # a family spec with bad parameters
        raise SystemExit(f"error: {error}") from None
    except KeyError:
        pass
    path = pathlib.Path(spec)
    if path.exists():
        return compile_circuit(path.read_text())
    raise SystemExit(
        f"error: {spec!r} is neither a known circuit "
        f"({', '.join(sorted(CIRCUITS))}), nor a generator spec like "
        f"'gen:medium:42', nor a readable file")


def _pm_options(args: argparse.Namespace) -> PMOptions:
    return PMOptions(
        ordering=args.ordering,
        partial=args.partial,
        enabled=not args.no_pm,
    )


def _steps_for(graph: CDFG, args: argparse.Namespace) -> int:
    if args.steps is not None:
        return args.steps
    return critical_path_length(graph) + args.slack


def _flow_config(graph: CDFG, args: argparse.Namespace) -> FlowConfig:
    return FlowConfig(
        n_steps=_steps_for(graph, args),
        pm=_pm_options(args),
        scheduler=args.scheduler,
        initiation_interval=args.ii,
        pipelined_gating=args.pipelined_gating,
        verify=args.verify,
        sim_backend=args.sim_backend,
    )


def cmd_stats(args: argparse.Namespace) -> int:
    graph = load_circuit(args.circuit)
    stats = circuit_stats(graph)
    print(f"circuit {stats.name!r}")
    print(f"  critical path : {stats.critical_path} control steps")
    print(f"  operations    : MUX {stats.mux}, COMP {stats.comp}, "
          f"+ {stats.add}, - {stats.sub}, * {stats.mul}")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    graph = load_circuit(args.circuit)
    result = _PIPELINE.run(graph, _flow_config(graph, args))
    print(full_report(result))
    return 0


def cmd_vhdl(args: argparse.Namespace) -> int:
    graph = load_circuit(args.circuit)
    result = _PIPELINE.run(graph, _flow_config(graph, args))
    text = generate_vhdl(result.design)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    graph = load_circuit(args.circuit)
    config = _flow_config(graph, args)
    pair = run_pair(graph, config, pipeline=_PIPELINE)
    cmp = compare_designs(pair.baseline.design, pair.managed.design,
                          n_vectors=args.vectors, seed=args.seed,
                          backend=args.sim_backend)
    print(f"{graph.name} @ {config.n_steps} steps, {args.vectors} "
          f"random vectors")
    print(f"  baseline : {cmp.orig.total:8.3f} energy/sample, "
          f"area {cmp.area_orig}")
    print(f"  managed  : {cmp.managed.total:8.3f} energy/sample, "
          f"area {cmp.area_new}")
    print(f"  saved    : {cmp.reduction_pct:.1f}% total "
          f"({cmp.datapath_reduction_pct:.1f}% datapath), "
          f"area x{cmp.area_increase:.2f}")
    return 0


def _explore_spec(spec: str) -> "str | CDFG":
    """Keep registry/family names as strings (cheap to ship to workers
    and stable in resume journals); load file paths into CDFGs."""
    if spec in CIRCUITS:
        return spec
    if ":" in spec and not pathlib.Path(spec).exists():
        load_circuit(spec)  # validate the family spec eagerly
        return spec
    return load_circuit(spec)


def cmd_explore(args: argparse.Namespace) -> int:
    try:
        budgets = [int(b) for b in args.budgets.split(",") if b]
    except ValueError:
        budgets = []
    if not budgets:
        raise SystemExit("error: --budgets needs a comma-separated list "
                         "of control-step counts, e.g. 5,6,7")
    configs = [FlowConfig(pm=_pm_options(args), scheduler=args.scheduler,
                          initiation_interval=args.ii,
                          pipelined_gating=args.pipelined_gating,
                          verify=args.verify,
                          sim_backend=args.sim_backend)]
    circuits = [_explore_spec(spec) for spec in args.circuits]
    from repro.sched.timing import InfeasibleScheduleError

    try:
        result = explore(circuits, budgets, configs=configs,
                         workers=args.workers,
                         sim_vectors=args.sim_vectors,
                         store=args.store, resume=args.resume,
                         search=args.search)
    except (InfeasibleScheduleError, ValueError) as error:
        # search mode reports infeasible budgets as ValueError from
        # SearchSpace.for_graph; grid mode as InfeasibleScheduleError.
        raise SystemExit(
            f"error: {error} — drop that budget or raise it past the "
            f"critical path") from None
    if args.pareto:
        front = result.pareto()
        print(front.table())
        print(f"pareto front: {len(front.points)} of {len(result.points)} "
              f"points survive on (area, power, latency)")
    else:
        print(result.table())
    best = result.best()
    print(f"best point: {best.circuit} @ {best.n_steps} steps "
          f"({best.power_reduction_pct:.2f}% datapath power saved)")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    graph = load_circuit(args.circuit)
    from repro.opt.search import SearchSpec, optimize

    if args.budgets:
        try:
            budgets = tuple(int(b) for b in args.budgets.split(",") if b)
        except ValueError:
            budgets = ()
        if not budgets:
            raise SystemExit("error: --budgets needs a comma-separated "
                             "list of control-step counts, e.g. 5,6,7")
    else:
        budgets = (_steps_for(graph, args),)
    iters = args.iters
    if (args.search == "portfolio" and args.time_budget is not None
            and iters == 150):
        # Pure anytime run: the wall clock, not an iteration count, is
        # the budget (passing --iters explicitly keeps both caps).
        iters = None
    spec = SearchSpec(driver=args.search, objective=args.objective,
                      iters=iters, seed=args.seed,
                      restarts=args.restarts, beam_width=args.beam_width,
                      workers=args.workers, time_budget=args.time_budget)
    pm_base = PMOptions(partial=args.partial)
    try:
        result = optimize(
            graph, spec, budgets=budgets,
            schedulers=tuple(s for s in args.schedulers.split(",") if s),
            store=args.store, journal=args.resume,
            sim_vectors=args.sim_vectors, pm_base=pm_base)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    print(result.table())
    if args.pareto_out and result.archive is not None:
        pathlib.Path(args.pareto_out).write_text(
            json.dumps(result.archive.to_dict(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        print(f"pareto archive ({len(result.archive)} points) "
              f"-> {args.pareto_out}")
    # The base carries the same pm_base the search scored candidates
    # under, so the synthesized design is the one the search selected.
    synthesized = _PIPELINE.run(graph, result.flow_config(
        FlowConfig(pm=pm_base, verify=args.verify,
                   sim_backend=args.sim_backend)))
    report = synthesized.static_report()
    print(f"chosen design: {synthesized.pm.managed_count} managed muxes, "
          f"{report.reduction_pct:.2f}% datapath power saved, "
          f"area {synthesized.design.area().total}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import JobServer

    async def _main() -> None:
        server = JobServer(
            args.state, host=args.host, port=args.port,
            workers=args.workers,
            max_store_entries=args.max_store_entries,
            chunk_size=args.chunk_size,
            maintenance_interval=args.maintain_every,
            server_id=args.server_id,
            lease_s=args.lease)
        await server.start()
        print(f"repro serve listening on http://{server.host}:{server.port}"
              f" ({args.workers} workers, state in {args.state}, "
              f"server id {server.server_id})")
        try:
            await server.serve_forever()
        finally:
            await server.shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def _serve_client(args: argparse.Namespace):
    from repro.serve.client import ServeClient

    return ServeClient(host=args.host, port=args.port,
                       timeout=args.timeout)


def _parse_budgets(text: str) -> list[int]:
    try:
        budgets = [int(b) for b in text.split(",") if b]
    except ValueError:
        budgets = []
    if not budgets:
        raise SystemExit("error: --budgets needs a comma-separated list "
                         "of control-step counts, e.g. 5,6,7")
    return budgets


def _print_event(event: dict) -> None:
    kind = event.get("type")
    if kind == "point":
        p = event["point"]
        origin = "journal" if event.get("resumed") else "computed"
        print(f"  point  {p['circuit']:<10s} @{p['n_steps']:>2d} steps "
              f"{p['power_reduction_pct']:6.2f}% saved, area {p['area']} "
              f"({origin})")
    elif kind == "pareto":
        if "of" in event:  # explore sweep: front over the finished grid
            print(f"  pareto {event['size']} of {event['of']} points "
                  f"survive")
        else:  # portfolio optimizer: evolving archive snapshot
            print(f"  pareto round {event.get('round', '?'):>3} "
                  f"{event['size']} nondominated point"
                  f"{'' if event['size'] == 1 else 's'}")
    elif kind == "best":
        print(f"  best   step {event['step']:>4d} score {event['score']:.4f}"
              f" @{event['n_steps']} steps / {event['scheduler']}")
    elif kind == "state":
        detail = f": {event['error']}" if event.get("error") else ""
        print(f"  state  -> {event['state']}{detail}")
    elif kind == "gap":
        print(f"  gap    {event['dropped']} event"
              f"{'' if event['dropped'] == 1 else 's'} aged out of the "
              f"feed before streaming")


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import JobFailed, ServeError

    budgets = _parse_budgets(args.budgets)
    if args.kind == "explore":
        params = {
            "circuits": args.circuits,
            "budgets": budgets,
            "ordering": args.ordering,
            "partial": args.partial,
            "no_pm": args.no_pm,
            "scheduler": args.scheduler,
            "sim_backend": args.sim_backend,
            "sim_vectors": args.sim_vectors,
        }
    else:
        if len(args.circuits) != 1:
            raise SystemExit(
                "error: submit optimize takes exactly one circuit")
        params = {
            "circuit": args.circuits[0],
            "budgets": budgets,
            "driver": args.search,
            "objective": args.objective,
            "iters": args.iters,
            "seed": args.seed,
            "restarts": args.restarts,
            "beam_width": args.beam_width,
            "workers": args.search_workers,
            "schedulers": [s for s in args.schedulers.split(",") if s],
            "sim_vectors": args.sim_vectors or 128,
            "partial": args.partial,
        }
        if args.time_budget is not None:
            params["time_budget"] = args.time_budget
    client = _serve_client(args)
    try:
        job = client.submit(args.kind, **params)
        print(f"job {job['id']} {job['state']}"
              + ("" if job["state"] == "queued" else " (shared in-flight)"))
        if args.watch:
            for event in client.stream(job["id"], timeout=args.timeout):
                _print_event(event)
            job = client.job(job["id"])
            _print_summary(job)
            if job["state"] == "failed":
                return 1
    except JobFailed as error:
        raise SystemExit(f"error: {error}") from None
    except (ServeError, ConnectionError, OSError, TimeoutError) as error:
        raise SystemExit(f"error: {error}") from None
    return 0


def _print_summary(job: dict) -> None:
    result = job.get("result") or {}
    line = (f"job {job['id']} {job['state']}: "
            f"{job['completed']} units done, {job['resumed']} resumed")
    if "points" in result:
        line += (f"; pareto {result['pareto_size']}/{result['points']}"
                 f", store {result['store_hits']} hits")
    if "outcome" in result:
        outcome = result["outcome"]
        line += (f"; best score {outcome['score']:.4f} "
                 f"({result['evaluations']} evaluated, "
                 f"{result.get('memo_hits', 0)} memo + "
                 f"{result.get('store_hits', 0)} store hits, "
                 f"{result['resumed']} journal-resumed)")
        if result.get("pareto_size"):
            line += f"; pareto archive {result['pareto_size']}"
    print(line)


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError

    client = _serve_client(args)
    try:
        if args.job_id and args.follow:
            for event in client.stream(args.job_id, timeout=args.timeout):
                _print_event(event)
            _print_summary(client.job(args.job_id))
        elif args.job_id:
            job = client.job(args.job_id,
                             since=0 if args.events else None)
            _print_summary(job)
            for event in job.get("events", ()):
                _print_event(event)
        else:
            jobs = client.jobs()
            if not jobs:
                print("no jobs")
            for job in jobs:
                total = job["total"] if job["total"] is not None else "?"
                print(f"  {job['id']:<16s} {job['kind']:<9s} "
                      f"{job['state']:<10s} {job['completed']}/{total}")
    except (ServeError, ConnectionError, OSError) as error:
        raise SystemExit(f"error: {error}") from None
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    from repro.opt.journal import compact_journal

    status = 0
    for path in args.journals:
        if not pathlib.Path(path).exists():
            print(f"{path}: missing", file=sys.stderr)
            status = 1
            continue
        outcome = compact_journal(path)
        print(f"{path}: kept {outcome.kept}, dropped {outcome.dropped}, "
              f"{outcome.bytes_before} -> {outcome.bytes_after} bytes")
    return status


def cmd_stages(args: argparse.Namespace) -> int:
    print(Pipeline().describe())
    print(f"\nregistered schedulers: {', '.join(available_schedulers())}")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.circuits import PAPER_TABLE1, PAPER_TABLE2
    from repro.paper_tables import measure_table1, measure_table2

    print("Table I (measured/paper):")
    for name, stats in measure_table1().items():
        paper = PAPER_TABLE1[name]
        print(f"  {name:8s} cp {stats.critical_path}/{paper.critical_path}"
              f"  mux {stats.mux}/{paper.mux} comp {stats.comp}/{paper.comp}"
              f" + {stats.add}/{paper.add} - {stats.sub}/{paper.sub}"
              f" * {stats.mul}/{paper.mul}")
    print("\nTable II (managed muxes, datapath power reduction,"
          " measured/paper):")
    paper2 = {(r.name, r.control_steps): r for r in PAPER_TABLE2}
    for row in measure_table2():
        p = paper2[(row.name, row.control_steps)]
        print(f"  {row.name:8s} @{row.control_steps:2d}: "
              f"{row.pm_muxes:2d}/{p.pm_muxes:2d} muxes, "
              f"{row.power_reduction_pct:5.2f}%/"
              f"{p.power_reduction_pct:5.2f}%")
    print("\n(run `pytest benchmarks/ --benchmark-only -s` for the full "
          "paper-vs-measured tables, including Table III)")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-management-aware behavioral synthesis "
                    "(Monteiro et al., DAC 1996)")
    sub = parser.add_subparsers(dest="command", required=True)

    def flow_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--ordering", default="output_first",
                       choices=("output_first", "input_first", "savings"),
                       help="MUX processing order (paper SIV-A)")
        p.add_argument("--partial", action="store_true",
                       help="enable per-operation fallback gating")
        p.add_argument("--no-pm", action="store_true",
                       help="disable power management (baseline design)")
        p.add_argument("--scheduler", default="list",
                       choices=available_schedulers(),
                       help="base scheduling strategy (default: list)")
        p.add_argument("--ii", type=int, default=None, metavar="N",
                       help="initiation-interval cap for pipelined "
                            "schedulers; --scheduler pipeline searches "
                            "for the smallest feasible II at or below it "
                            "(default: the step budget)")
        p.add_argument("--pipelined-gating", default="per_sample",
                       choices=("per_sample", "drop"),
                       help="guards that cross a stage boundary: carry "
                            "per-sample register copies, or drop them "
                            "conservatively (default: per_sample)")
        p.add_argument("--verify", action="store_true",
                       help="run the gating-soundness check")
        p.add_argument("--sim-backend", default="auto",
                       choices=("compiled", "vectorized", "packed", "auto"),
                       help="batch simulation engine (default: auto = "
                            "vectorized NumPy where available)")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("circuit", help="benchmark name or DSL file")
        p.add_argument("--steps", type=int, default=None,
                       help="control-step budget (default: critical path "
                            "+ --slack)")
        p.add_argument("--slack", type=int, default=1,
                       help="extra steps over the critical path when "
                            "--steps is omitted (default 1)")
        flow_options(p)

    p_stats = sub.add_parser("stats", help="circuit statistics (Table I)")
    p_stats.add_argument("circuit")
    p_stats.set_defaults(func=cmd_stats)

    p_synth = sub.add_parser("synthesize", help="run the flow, print report")
    common(p_synth)
    p_synth.set_defaults(func=cmd_synthesize)

    p_vhdl = sub.add_parser("vhdl", help="emit VHDL")
    common(p_vhdl)
    p_vhdl.add_argument("-o", "--output", default=None)
    p_vhdl.set_defaults(func=cmd_vhdl)

    p_sim = sub.add_parser("simulate",
                           help="simulate baseline vs managed power")
    common(p_sim)
    p_sim.add_argument("--vectors", type=int, default=256)
    p_sim.add_argument("--seed", type=int, default=1996)
    p_sim.set_defaults(func=cmd_simulate)

    p_explore = sub.add_parser(
        "explore", help="batch design-space sweep over circuits x budgets")
    p_explore.add_argument("circuits", nargs="+",
                           help="benchmark names to sweep")
    p_explore.add_argument("--budgets", required=True,
                           help="comma-separated step budgets, e.g. 5,6,7")
    p_explore.add_argument("--workers", type=int, default=1,
                           help="worker processes (default 1 = in-process)")
    p_explore.add_argument("--store", default=None, metavar="DIR",
                           help="disk-backed artifact store directory "
                                "shared across workers and runs")
    p_explore.add_argument("--resume", default=None, metavar="FILE",
                           help="JSONL journal: finished points are "
                                "appended and skipped on re-runs")
    p_explore.add_argument("--pareto", action="store_true",
                           help="print only the (area, power, latency) "
                                "Pareto front of the sweep")
    p_explore.add_argument("--sim-vectors", type=int, default=0,
                           help="engine-simulate every point on N random "
                                "vectors (default 0 = static estimate)")
    p_explore.add_argument("--search", default=None,
                           choices=("anneal", "beam", "random", "portfolio"),
                           help="search the (ordering, budget) space with "
                                "this repro.opt driver instead of sweeping "
                                "the fixed grid (see `repro optimize` for "
                                "the tunable version)")
    flow_options(p_explore)
    p_explore.set_defaults(func=cmd_explore)

    p_opt = sub.add_parser(
        "optimize",
        help="search (MUX ordering, budget, scheduler) space for the "
             "best design under a weighted objective")
    p_opt.add_argument("circuit", help="benchmark name, gen:<preset>:"
                                       "<seed> spec, or DSL file")
    p_opt.add_argument("--steps", type=int, default=None,
                       help="single control-step budget (default: "
                            "critical path + --slack)")
    p_opt.add_argument("--slack", type=int, default=1,
                       help="extra steps over the critical path when "
                            "--steps is omitted (default 1)")
    p_opt.add_argument("--budgets", default=None,
                       help="comma-separated budgets to search over "
                            "(overrides --steps)")
    p_opt.add_argument("--search", default="anneal",
                       choices=("anneal", "beam", "random", "portfolio"),
                       help="search driver (default: anneal)")
    p_opt.add_argument("--objective", default="gated_weight",
                       help="weighted metric terms 'name[=weight],...', "
                            "e.g. 'gated_weight' or 'sim_power,area=0.1'")
    p_opt.add_argument("--iters", type=int, default=150,
                       help="search iterations (anneal/random)")
    p_opt.add_argument("--seed", type=int, default=0,
                       help="search RNG seed (default 0)")
    p_opt.add_argument("--restarts", type=int, default=2,
                       help="annealing restart chains (default 2)")
    p_opt.add_argument("--beam-width", type=int, default=4,
                       help="beam width for --search beam (default 4)")
    p_opt.add_argument("--workers", type=int, default=4,
                       help="island worker processes for --search "
                            "portfolio (default 4; 1 = in-process)")
    p_opt.add_argument("--time-budget", type=float, default=None,
                       metavar="SECONDS",
                       help="anytime wall-clock budget: stop the search "
                            "and return the best archive so far")
    p_opt.add_argument("--pareto-out", default=None, metavar="FILE",
                       help="write the final Pareto archive as JSON")
    p_opt.add_argument("--schedulers", default="list",
                       help="comma-separated scheduler dimension "
                            "(default: list)")
    p_opt.add_argument("--sim-vectors", type=int, default=128,
                       help="vectors per simulation when the objective "
                            "needs sim_power (default 128)")
    p_opt.add_argument("--store", default=None, metavar="DIR",
                       help="disk store backing candidate evaluations "
                            "and stage artifacts across runs")
    p_opt.add_argument("--resume", default=None, metavar="FILE",
                       help="JSONL evaluation journal: finished "
                            "evaluations are replayed on re-runs")
    p_opt.add_argument("--partial", action="store_true",
                       help="enable per-operation fallback gating")
    p_opt.add_argument("--verify", action="store_true",
                       help="run the gating-soundness check on the "
                            "chosen design")
    p_opt.add_argument("--sim-backend", default="auto",
                       choices=("compiled", "vectorized", "packed", "auto"))
    p_opt.set_defaults(func=cmd_optimize)

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant exploration/optimization "
                      "job server (see docs/serving.md)")
    p_serve.add_argument("--state", default=".repro-serve", metavar="DIR",
                         help="server state directory: artifact store, "
                              "job registry, resume journals "
                              "(default .repro-serve)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (default 8642; 0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="process-pool workers shared by all jobs "
                              "(default 2)")
    p_serve.add_argument("--max-store-entries", type=int, default=65536,
                         help="artifact-store LRU bound (default 65536)")
    p_serve.add_argument("--chunk-size", type=int, default=1,
                         help="explore work units per pool task (default 1)")
    p_serve.add_argument("--maintain-every", type=float, default=0.0,
                         metavar="SECONDS",
                         help="run journal compaction + store GC on this "
                              "period (default 0 = only on demand)")
    p_serve.add_argument("--server-id", default=None, metavar="ID",
                         help="stable identity in the shared lease queue "
                              "(default: random per process); give each "
                              "server on a shared --state its own id")
    p_serve.add_argument("--lease", type=float, default=30.0,
                         metavar="SECONDS",
                         help="job lease duration: a crashed server's "
                              "jobs are re-claimed by a peer once its "
                              "lease expires (default 30)")
    p_serve.set_defaults(func=cmd_serve)

    def client_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8642)
        p.add_argument("--timeout", type=float, default=300.0,
                       help="per-request / watch timeout in seconds "
                            "(default 300)")

    p_submit = sub.add_parser(
        "submit", help="submit an explore/optimize job to a running "
                       "`repro serve` instance")
    p_submit.add_argument("kind", choices=("explore", "optimize"))
    p_submit.add_argument("circuits", nargs="+",
                          help="benchmark names, gen:<preset>:<seed> specs "
                               "or DSL files (optimize takes exactly one)")
    p_submit.add_argument("--budgets", required=True,
                          help="comma-separated step budgets, e.g. 5,6,7")
    p_submit.add_argument("--watch", action="store_true",
                          help="stream events until the job terminates")
    p_submit.add_argument("--ordering", default="output_first",
                          choices=("output_first", "input_first", "savings"))
    p_submit.add_argument("--partial", action="store_true")
    p_submit.add_argument("--no-pm", action="store_true")
    p_submit.add_argument("--scheduler", default="list")
    p_submit.add_argument("--sim-backend", default="auto",
                          choices=("compiled", "vectorized", "packed", "auto"))
    p_submit.add_argument("--sim-vectors", type=int, default=0)
    p_submit.add_argument("--search", default="anneal",
                          choices=("anneal", "beam", "random", "portfolio"),
                          help="optimize search driver (default: anneal)")
    p_submit.add_argument("--objective", default="gated_weight")
    p_submit.add_argument("--iters", type=int, default=150)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--restarts", type=int, default=2)
    p_submit.add_argument("--beam-width", type=int, default=4)
    p_submit.add_argument("--search-workers", type=int, default=4,
                          help="portfolio island workers inside the "
                               "serve worker (default 4)")
    p_submit.add_argument("--time-budget", type=float, default=None,
                          metavar="SECONDS",
                          help="anytime wall-clock budget for the search")
    p_submit.add_argument("--schedulers", default="list")
    client_options(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list a running server's jobs, or inspect one")
    p_jobs.add_argument("job_id", nargs="?", default=None,
                        help="job id to inspect (default: list all)")
    p_jobs.add_argument("--events", action="store_true",
                        help="with a job id, also print its event feed")
    p_jobs.add_argument("--follow", action="store_true",
                        help="with a job id, stream live events over SSE "
                             "until the job terminates")
    client_options(p_jobs)
    p_jobs.set_defaults(func=cmd_jobs)

    p_journal = sub.add_parser(
        "journal", help="journal maintenance (compaction)")
    journal_sub = p_journal.add_subparsers(dest="journal_command",
                                           required=True)
    p_compact = journal_sub.add_parser(
        "compact", help="rewrite JSONL journals keeping only the last "
                        "record per key")
    p_compact.add_argument("journals", nargs="+", metavar="FILE")
    p_compact.set_defaults(func=cmd_journal)

    p_stages = sub.add_parser("stages",
                              help="show the pipeline wiring and schedulers")
    p_stages.set_defaults(func=cmd_stages)

    p_tables = sub.add_parser("tables", help="paper tables summary")
    p_tables.set_defaults(func=cmd_tables)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
