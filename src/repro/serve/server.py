"""The asyncio job server: HTTP/JSON in front, a process pool behind.

One :class:`JobServer` owns five things:

* a stdlib-only HTTP/1.1 API (``asyncio.start_server`` + hand-rolled
  parsing) with keep-alive connections — ``Connection:`` headers are
  honored and requests loop per connection — plus a chunked
  server-sent-event stream per job, so any client from ``curl`` to
  :class:`repro.serve.client.ServeClient` can talk to it;
* a persistent :class:`~concurrent.futures.ProcessPoolExecutor` every
  job shards its work onto — many concurrent jobs multiplex one pool;
* an :class:`~repro.pipeline.index.IndexedArtifactStore` under
  ``<state_dir>/store`` shared by all workers, so every stage artifact
  and candidate evaluation any job ever computed warms every later job;
* a :class:`~repro.serve.jobs.LeaseStore` — the shared SQLite queue at
  ``<state_dir>/queue.sqlite``.  Every server pointed at the same
  ``state_dir`` drains the same queue: jobs are claimed inside
  ``BEGIN IMMEDIATE`` transactions that stamp ``(server_id,
  lease_deadline)``, heartbeats extend live leases, and an expired
  lease (owner crashed) makes the job claimable by any surviving
  server, whose content-keyed resume journal replay makes the re-run
  warm — kill -9 of any server loses nothing;
* a :class:`~repro.serve.jobs.JobRegistry` as the purely-local view:
  in-memory jobs + event feeds for the work *this* server claimed.

Endpoints (JSON unless noted)::

    GET  /health                     liveness + cluster job counts
    GET  /stats                      store/pool/job statistics
    GET  /jobs                       every job in the cluster
    POST /jobs                       {"kind": "explore"|"optimize",
                                      "params": {...}} -> job snapshot
    GET  /jobs/<id>?since=<seq>      snapshot + events past <seq>
    GET  /jobs/<id>/events           text/event-stream (SSE): live
                                     point/pareto/best/state events,
                                     Last-Event-ID resume
    POST /jobs/<id>/cancel           cooperative cancellation
    POST /maintenance                journal compaction + store GC
    POST /shutdown                   graceful stop (leases released)

Incremental results stream through the per-job event feed: ``point``
events as sweep points finish (journal-resumed ones first), ``pareto``
events with the current non-dominated front, ``best`` events as the
optimizer improves, one terminal ``state`` event at the end.
"""

from __future__ import annotations

import asyncio
import json
import threading
import traceback
import uuid
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.opt.journal import compact_journal
from repro.pipeline.config import FlowConfig
from repro.pipeline.explore import (
    ExplorationPoint,
    ExplorationResult,
    journal_point,
    load_point_journal,
    open_point_journal,
    plan_jobs,
    run_chunk,
)
from repro.pipeline.index import IndexedArtifactStore
from repro.serve.jobs import (
    QUEUE_NAME,
    Job,
    JobError,
    JobRegistry,
    JobRow,
    JobState,
    JobStateError,
    LeaseStore,
    UnknownJobError,
)
from repro.serve.work import read_progress, run_optimize_job

SERVER_NAME = "repro-serve/2"

#: How often (seconds) a running optimize job's progress file is polled.
PROGRESS_POLL_S = 0.05

#: Keep-alive: how long an idle connection may wait for its next
#: request line before the server closes it.
IDLE_TIMEOUT_S = 75.0

#: Whole-request deadline: request line seen -> headers + body fully
#: read.  A client trickling headers (slowloris) is cut off here.
REQUEST_TIMEOUT_S = 30.0

#: SSE comment-frame interval, so proxies and client socket timeouts
#: see traffic on a quiet stream.
SSE_KEEPALIVE_S = 15.0

MAX_HEADERS = 64
MAX_HEADER_BYTES = 8192
MAX_BODY_BYTES = 8 * 1024 * 1024


def _reap(future) -> None:
    """Swallow the outcome of an abandoned future (cancelled job)."""
    if not future.cancelled():
        future.exception()


class JobServer:
    """Async multi-tenant exploration/optimization server.

    Any number of instances (threads or processes) may share one
    ``state_dir``; they coordinate through the lease queue and the
    artifact store alone.  ``lease_s`` is the crash-detection horizon:
    a job whose owner misses heartbeats for that long is re-claimed.
    """

    def __init__(self, state_dir: "str | Path", host: str = "127.0.0.1",
                 port: int = 0, workers: int = 2,
                 max_store_entries: int = 65536,
                 chunk_size: int = 1,
                 maintenance_interval: float = 0.0,
                 server_id: str | None = None,
                 lease_s: float = 30.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.maintenance_interval = maintenance_interval
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal_dir = self.state_dir / "journals"
        self.journal_dir.mkdir(exist_ok=True)
        self.host = host
        self.port = port
        self.workers = workers
        self.chunk_size = max(1, chunk_size)
        self.server_id = server_id or f"srv-{uuid.uuid4().hex[:8]}"
        self.lease_s = float(lease_s)
        self.idle_timeout_s = IDLE_TIMEOUT_S
        self.request_timeout_s = REQUEST_TIMEOUT_S
        self.sse_keepalive_s = SSE_KEEPALIVE_S
        self.store = IndexedArtifactStore(self.state_dir / "store",
                                          max_entries=max_store_entries)
        self.queue = LeaseStore(self.state_dir / QUEUE_NAME,
                                lease_s=lease_s)
        self.registry = JobRegistry(on_event=self._on_job_event)
        self.pool: ProcessPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._job_tasks: dict[str, asyncio.Task] = {}
        self._active: set[str] = set()
        self._waiters: dict[str, set[asyncio.Event]] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._claim_event = asyncio.Event()
        self._claim_poll = max(0.05, min(1.0, self.lease_s / 4.0))
        self._stopping = asyncio.Event()
        self._killed = False
        self._loop: asyncio.AbstractEventLoop | None = None
        # Queue/store I/O runs off the event loop on this one thread;
        # maintenance gets its own so compaction never queues behind —
        # or blocks — claim and submit traffic.
        self._io = ThreadPoolExecutor(max_workers=1,
                                      thread_name_prefix="serve-io")
        self._mx = ThreadPoolExecutor(max_workers=1,
                                      thread_name_prefix="serve-mx")
        self._maintenance_lock: asyncio.Lock | None = None

    def _q(self, fn, *args, **kwargs):
        """Run one queue/store operation on the I/O thread."""
        return self._loop.run_in_executor(
            self._io, lambda: fn(*args, **kwargs))

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "JobServer":
        """Bind, start the worker pool and the claim/heartbeat loops."""
        self._loop = asyncio.get_running_loop()
        self._maintenance_lock = asyncio.Lock()
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        # A dead predecessor that ran under the same --server-id (a
        # stable identity is the documented fleet setup) left running
        # rows stamped with our name.  claim() never self-steals and
        # the heartbeat only extends jobs we actually run, so re-queue
        # them now — nothing of ours is live yet — or they would sit
        # "running" until some *other* server outlives their lease.
        await self._q(self.queue.release, self.server_id)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        for coro in (self._claim_loop(), self._heartbeat_loop()):
            task = self._loop.create_task(coro)
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        if self.maintenance_interval > 0:
            task = self._loop.create_task(self._maintenance_loop())
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        return self

    async def _maintenance_loop(self) -> None:
        """Periodic journal compaction + store GC (``repro serve``
        housekeeping; also available on demand via POST /maintenance)."""
        while True:
            await asyncio.sleep(self.maintenance_interval)
            await self._maintenance_async()

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or POST /shutdown)."""
        await self._stopping.wait()

    async def shutdown(self) -> None:
        """Stop accepting, cancel in-flight jobs, release their leases
        back to the queue (a peer picks them up warm), free the pool."""
        if self._server is not None:
            self._server.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already-dead transport
                pass
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if not self._killed:
            try:
                self.queue.release(self.server_id)
            except Exception:  # noqa: BLE001 - shutdown best-effort
                pass
        self.registry.close()
        self.store.close()
        self.queue.close()
        self._io.shutdown(wait=False)
        self._mx.shutdown(wait=False)
        self._stopping.set()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- claiming and leases ---------------------------------------------

    async def _claim_loop(self) -> None:
        """Drain the shared queue: claim up to ``workers`` jobs at a
        time; wake instantly on local submissions/completions, poll on
        a short interval for peers' submissions and expired leases."""
        while True:
            try:
                while len(self._active) < self.workers:
                    row = await self._q(self.queue.claim, self.server_id)
                    if row is None:
                        break
                    job = self.registry.adopt(row)
                    self._active.add(job.id)
                    self._schedule(job)
                self._claim_event.clear()
                try:
                    await asyncio.wait_for(self._claim_event.wait(),
                                           timeout=self._claim_poll)
                except asyncio.TimeoutError:
                    pass
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the loop must survive
                await asyncio.sleep(self._claim_poll)

    async def _heartbeat_loop(self) -> None:
        """Extend the leases of the jobs this server is actually
        running — never every row stamped with its name, so a zombie
        row from a crashed same-id predecessor expires on schedule —
        and abandon any job whose lease was lost (another server owns
        it now; running on would duplicate work and clobber nothing,
        but burn the pool for no reason).  Each beat also mirrors the
        feed high-water seq onto the row, so a later re-claim rebases
        the event sequence past everything our clients saw."""
        while True:
            await asyncio.sleep(self.lease_s / 3.0)
            leases = {}
            for job_id in list(self._active):
                local = self.registry.find(job_id)
                leases[job_id] = (local.last_seq
                                  if local is not None else None)
            if not leases:
                continue
            try:
                owned = set(await self._q(self.queue.heartbeat,
                                          self.server_id, leases))
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - retry next beat
                continue
            for job_id in leases:
                if job_id not in owned:
                    local = self.registry.find(job_id)
                    if local is not None:
                        self._abandon(local)
                    else:
                        task = self._job_tasks.get(job_id)
                        if task is not None and not task.done():
                            task.cancel()

    def _abandon(self, job: Job) -> None:
        """Stop work on a job whose lease this server lost.

        No terminal transition and no ``state`` event: the job is
        alive under its new owner, and a local ``cancelled`` would
        read as the job's end to stream followers.  SSE streams are
        woken instead; they notice ``abandoned`` and fall back to the
        queue-row state stream (the new owner has the full feed)."""
        job.abandoned = True
        task = self._job_tasks.get(job.id)
        if task is not None and not task.done():
            task.cancel()
        self._on_job_event(job)

    # -- job scheduling --------------------------------------------------

    def _schedule(self, job: Job) -> None:
        task = self._loop.create_task(self._run_job(job))
        self._job_tasks[job.id] = task
        self._tasks.add(task)

        def _done(t, job_id=job.id):
            self._tasks.discard(t)
            self._job_tasks.pop(job_id, None)
            self._active.discard(job_id)
            self._claim_event.set()

        task.add_done_callback(_done)

    async def _run_job(self, job: Job) -> None:
        try:
            if await self._cancelled(job):
                return
            self.registry.transition(job, JobState.RUNNING)
            if job.kind == "explore":
                await self._run_explore(job)
            else:
                await self._run_optimize(job)
        except asyncio.CancelledError:
            # Shutdown or a lost lease, not a job failure: the queue row
            # (released, or re-claimed by the new owner) stays live and
            # the journals make the next run warm.
            raise
        except JobStateError:
            raise
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            detail = "".join(traceback.format_exception_only(error)).strip()
            if not job.state.terminal:
                self.registry.transition(job, JobState.FAILED, error=detail)
                await self._q(self.queue.finish, job.id, self.server_id,
                              JobState.FAILED, error=detail,
                              completed=job.completed, resumed=job.resumed,
                              total=job.total, last_seq=job.last_seq)

    async def _cancelled(self, job: Job) -> bool:
        """Local cancel flag, or — checked at chunk boundaries — the
        cluster-wide flag a cancel sent to any peer set on the row."""
        if job.state.terminal or job.abandoned:
            return True
        if not job.cancel_requested:
            row = await self._q(self.queue.get, job.id)
            if row is not None:
                if row.cancel_requested:
                    job.cancel_requested = True
                elif (row.state == JobState.RUNNING.value
                        and row.server_id != self.server_id):
                    # Lease lost between heartbeats: abandon quietly —
                    # no terminal event (the job lives on under its new
                    # owner), and the ownership guard voids our queue
                    # writes anyway.
                    self._abandon(job)
                    return True
        if job.cancel_requested and not job.state.terminal:
            self.registry.transition(job, JobState.CANCELLED)
            await self._q(self.queue.finish, job.id, self.server_id,
                          JobState.CANCELLED, completed=job.completed,
                          resumed=job.resumed, total=job.total,
                          last_seq=job.last_seq)
            return True
        return False

    # -- explore jobs ----------------------------------------------------

    @staticmethod
    def _explore_config(params: dict) -> FlowConfig:
        from repro.core.pm_pass import PMOptions

        return FlowConfig(
            pm=PMOptions(
                ordering=params.get("ordering", "output_first"),
                partial=bool(params.get("partial", False)),
                enabled=not params.get("no_pm", False)),
            scheduler=params.get("scheduler", "list"),
            sim_backend=params.get("sim_backend", "auto"),
            label=params.get("label", "serve"))

    async def _run_explore(self, job: Job) -> None:
        params = job.params
        circuits = params["circuits"]
        budgets = params["budgets"]
        sim_vectors = int(params.get("sim_vectors", 0))
        config = self._explore_config(params)
        planned = plan_jobs(circuits, budgets, [config], sim_vectors)
        job.total = len(planned)

        journal_path = self.journal_dir / f"{job.key}.jsonl"
        completed = load_point_journal(journal_path)
        points: dict[int, ExplorationPoint] = {}
        pending = []
        for index, key, spec, cfg, n_sim in planned:
            if key in completed:
                points[index] = completed[key]
            else:
                pending.append((index, key, spec, cfg, n_sim))
        job.resumed = len(planned) - len(pending)
        job.completed = job.resumed
        for index in sorted(points):
            self.registry.push(job, {
                "type": "point", "resumed": True,
                "point": points[index].to_dict()})
        if points:
            self._push_pareto(job, points)
        await self._q(self.queue.progress, job.id, self.server_id,
                      completed=job.completed, resumed=job.resumed,
                      total=job.total, last_seq=job.last_seq)

        # A non-positive chunk_size used to slice empty chunks and drop
        # every planned point on the floor; _validate_params 400s the
        # obvious garbage and this clamp catches the rest.
        chunk_size = max(1, int(params.get("chunk_size", self.chunk_size)))
        chunks = [pending[i:i + chunk_size]
                  for i in range(0, len(pending), chunk_size)]
        # Crash recovery hinges on this journal: fsync every point.
        journal = open_point_journal(journal_path, durability="record")
        futures: set = set()
        try:
            futures = {
                self._loop.run_in_executor(self.pool, run_chunk,
                                           (self.store, chunk))
                for chunk in chunks}
            while futures:
                if await self._cancelled(job):
                    for future in futures:
                        future.cancel()
                    await asyncio.gather(*futures, return_exceptions=True)
                    return
                done, futures = await asyncio.wait(
                    futures, return_when=asyncio.FIRST_COMPLETED)
                for future in done:
                    for index, key, point in future.result():
                        points[index] = point
                        journal_point(journal, key, point)
                        job.completed += 1
                        self.registry.push(job, {
                            "type": "point", "resumed": False,
                            "point": point.to_dict()})
                    self._push_pareto(job, points)
                await self._q(self.queue.progress, job.id, self.server_id,
                              completed=job.completed,
                              last_seq=job.last_seq)
        finally:
            for future in futures:  # a failed/cancelled job's leftovers
                future.cancel()
                future.add_done_callback(_reap)
            journal.close()
        if await self._cancelled(job):
            return

        result = ExplorationResult(
            points=tuple(points[i] for i in sorted(points)),
            resumed=job.resumed)
        front = result.pareto()
        best = result.best()
        payload = {
            "points": len(result.points),
            "resumed": result.resumed,
            "store_hits": result.store_hits,
            "store_misses": result.store_misses,
            "pareto_size": len(front.points),
            "pareto": [p.to_dict() for p in front.points],
            "best": best.to_dict(),
        }
        self.registry.transition(job, JobState.DONE, result=payload)
        await self._q(self.queue.finish, job.id, self.server_id,
                      JobState.DONE, result=payload,
                      completed=job.completed, resumed=job.resumed,
                      total=job.total, last_seq=job.last_seq)

    def _push_pareto(self, job: Job,
                     points: dict[int, ExplorationPoint]) -> None:
        result = ExplorationResult(
            points=tuple(points[i] for i in sorted(points)))
        front = result.pareto()
        self.registry.push(job, {
            "type": "pareto",
            "size": len(front.points),
            "of": len(result.points),
            "points": [
                {"circuit": p.circuit, "n_steps": p.n_steps,
                 "config_label": p.config_label, "area": p.area,
                 "power_reduction_pct": p.power_reduction_pct}
                for p in front.points],
        })

    # -- optimize jobs ---------------------------------------------------

    async def _run_optimize(self, job: Job) -> None:
        params = job.params
        search = {name: params[name]
                  for name in ("driver", "objective", "iters", "seed",
                               "restarts", "beam_width", "workers",
                               "time_budget")
                  if name in params}
        progress_path = self.journal_dir / f"{job.key}.progress.jsonl"
        try:
            progress_path.unlink()  # each run streams afresh
        except FileNotFoundError:
            pass
        payload = {
            "circuit": params.get("circuit"),
            "search": search,
            "budgets": list(params["budgets"]),
            "schedulers": list(params.get("schedulers", ["list"])),
            "sim_vectors": int(params.get("sim_vectors", 128)),
            "partial": bool(params.get("partial", False)),
            "store": self.store,
            "journal": str(self.journal_dir / f"{job.key}.jsonl"),
            "progress_path": str(progress_path),
        }
        if "graph" in params:
            payload["graph"] = params["graph"]

        future = self._loop.run_in_executor(self.pool, run_optimize_job,
                                            payload)
        offset = 0
        while True:
            records, offset = read_progress(progress_path, offset)
            for record in records:
                job.completed += 1
                self.registry.push(job, {"type": "best", **record})
            if records:
                await self._q(self.queue.progress, job.id, self.server_id,
                              completed=job.completed,
                              last_seq=job.last_seq)
            if future.done():
                break
            if await self._cancelled(job):
                # The pool worker cannot be interrupted mid-search; the
                # job is cancelled from the client's point of view and
                # the worker's journal writes still warm the next run.
                future.cancel()
                future.add_done_callback(_reap)
                return
            await asyncio.sleep(PROGRESS_POLL_S)
        summary = future.result()
        records, offset = read_progress(progress_path, offset)
        for record in records:
            job.completed += 1
            self.registry.push(job, {"type": "best", **record})
        if await self._cancelled(job):
            return
        job.total = summary["evaluations"] + summary["reused"]
        self.registry.transition(job, JobState.DONE, result=summary)
        await self._q(self.queue.finish, job.id, self.server_id,
                      JobState.DONE, result=summary,
                      completed=job.completed, resumed=job.resumed,
                      total=job.total, last_seq=job.last_seq)

    # -- maintenance -----------------------------------------------------

    async def _maintenance_async(self) -> dict:
        """Maintenance off the event loop: compaction and store GC are
        blocking file + SQLite I/O that used to freeze every in-flight
        response for their whole duration."""
        async with self._maintenance_lock:
            return await self._loop.run_in_executor(self._mx,
                                                    self.maintenance)

    def maintenance(self) -> dict:
        """Compact every journal and garbage-collect the store — the
        upkeep that lets a server instance run indefinitely.

        Journals of queued/running jobs — anywhere in the cluster, not
        just on this server — are skipped: their writers hold open
        append handles, and compaction's atomic replace would strand
        those appends on the unlinked inode.
        """
        active = self.queue.active_keys()
        guarded = {f"{key}.jsonl" for key in active}
        journals = {}
        for path in sorted(self.journal_dir.glob("*.jsonl")):
            if not path.exists():
                continue
            if path.name.endswith(".progress.jsonl"):
                continue  # transient sidecar, not journal-format
            if path.name in guarded:
                journals[path.name] = {"skipped": "job in flight"}
                continue
            outcome = compact_journal(path)
            journals[path.name] = {
                "kept": outcome.kept, "dropped": outcome.dropped,
                "bytes_before": outcome.bytes_before,
                "bytes_after": outcome.bytes_after}
        registry = self.registry.compact()
        if registry is not None:
            journals["jobs.jsonl"] = {
                "kept": registry.kept, "dropped": registry.dropped,
                "bytes_before": registry.bytes_before,
                "bytes_after": registry.bytes_after}
        return {"journals": journals, "store": self.store.gc(),
                "queue": self.queue.checkpoint()}

    def stats(self) -> dict:
        return {
            "jobs": self.queue.counts(),
            "server_id": self.server_id,
            "active": len(self._active),
            "workers": self.workers,
            "store": {
                "entries": len(self.store),
                "bytes": self.store.total_bytes(),
                "hits": self.store.stats.hits,
                "misses": self.store.stats.misses,
                "evictions": self.store.stats.evictions,
            },
        }

    # -- snapshots -------------------------------------------------------

    def _snapshot(self, row: JobRow, since: int | None = None) -> dict:
        """Merge the authoritative queue row with the local event feed.

        A job this server owns (or finished) answers with its live
        local view; anything else — queued, or another server's — gets
        the queue row plus an empty feed (events live with the owner;
        follow them over its SSE endpoint).
        """
        job = self.registry.find(row.id)
        if job is not None and row.server_id == self.server_id:
            view = job.snapshot(since=since)
            view["server_id"] = row.server_id
            view["claims"] = row.claims
            return view
        view = row.snapshot()
        view["last_seq"] = 0
        view["events_dropped"] = 0
        if since is not None:
            view["events"] = []
        return view

    def _on_job_event(self, job: Job) -> None:
        """Registry hook: wake every SSE stream following this job."""
        for waiter in self._waiters.get(job.id, ()):
            waiter.set()

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            keep = True
            while keep and not self._stopping.is_set():
                keep = await self._serve_one(reader, writer)
        except asyncio.CancelledError:
            pass  # server shutdown/kill mid-request: drop the connection
        except (ConnectionError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except Exception:  # noqa: BLE001 - never kill the acceptor
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        """Read + answer one request; returns False to close the
        connection (error, ``Connection: close``, SSE stream end)."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=self.idle_timeout_s)
        except asyncio.TimeoutError:
            return False  # idle keep-alive connection: just close
        except ValueError:
            await self._respond(writer, 431,
                                {"error": "request line too long"},
                                close=True)
            return False
        if not request_line:
            return False  # client went away
        if len(request_line) > MAX_HEADER_BYTES:
            await self._respond(writer, 431,
                                {"error": "request line too long"},
                                close=True)
            return False
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            await self._respond(writer, 400,
                                {"error": "malformed request line"},
                                close=True)
            return False
        method, target = parts[0].upper(), parts[1]
        version = parts[2].upper() if len(parts) > 2 else "HTTP/1.1"

        # Everything after the request line — headers and body — reads
        # under one deadline: a trickling client can no longer pin a
        # connection (and its buffers) open forever.
        try:
            headers, raw, problem = await asyncio.wait_for(
                self._read_rest(reader), timeout=self.request_timeout_s)
        except asyncio.TimeoutError:
            await self._respond(writer, 408,
                                {"error": "request read timeout"},
                                close=True)
            return False
        except ValueError:
            await self._respond(writer, 431,
                                {"error": "header line too long"},
                                close=True)
            return False
        if problem is not None:
            await self._respond(writer, problem[0], problem[1], close=True)
            return False

        keep = headers.get("connection", "").lower() != "close"
        if version == "HTTP/1.0":
            keep = headers.get("connection", "").lower() == "keep-alive"

        body = {}
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                await self._respond(
                    writer, 400,
                    {"error": "request body is not valid JSON"},
                    close=not keep)
                return keep
            if not isinstance(body, dict):
                await self._respond(
                    writer, 400,
                    {"error": "request body must be a JSON object"},
                    close=not keep)
                return keep

        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {name: values[-1]
                 for name, values in parse_qs(url.query).items()}

        segments = path.split("/")
        if (method == "GET" and len(segments) == 4
                and segments[1] == "jobs" and segments[3] == "events"):
            try:
                await self._stream_events(writer, segments[2], headers,
                                          query)
            except (ConnectionError, BrokenPipeError):
                pass
            return False  # the stream consumed the connection

        try:
            status, payload = await self._route(method, path, query, body)
        except Exception:  # noqa: BLE001 - response boundary
            status, payload = 500, {"error": "internal server error"}
        await self._respond(writer, status, payload, close=not keep)
        if path == "/shutdown":
            return False
        return keep

    async def _read_rest(self, reader: asyncio.StreamReader):
        """Headers + raw body; returns ``(headers, raw, problem)``."""
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > MAX_HEADER_BYTES:
                return headers, b"", (431,
                                      {"error": "header line too long"})
            if len(headers) >= MAX_HEADERS:
                return headers, b"", (431, {"error": "too many headers"})
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            return headers, b"", (400, {"error": "bad content-length"})
        if content_length < 0:
            return headers, b"", (400, {"error": "bad content-length"})
        if content_length > MAX_BODY_BYTES:
            return headers, b"", (413,
                                  {"error": "request body too large"})
        raw = b""
        if content_length:
            raw = await reader.readexactly(content_length)
        return headers, raw, None

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, close: bool) -> None:
        data = json.dumps(payload).encode("utf-8")
        connection = "close" if close else "keep-alive"
        writer.write(
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Server: {SERVER_NAME}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n\r\n".encode("ascii"))
        writer.write(data)
        await writer.drain()

    # -- routing ---------------------------------------------------------

    async def _route(self, method: str, path: str, query: dict,
                     body: dict) -> tuple[int, dict]:
        try:
            if path == "/health" and method == "GET":
                counts = await self._q(self.queue.counts)
                return 200, {"ok": True, "server_id": self.server_id,
                             "jobs": counts}
            if path == "/stats" and method == "GET":
                return 200, await self._q(self.stats)
            if path == "/jobs" and method == "GET":
                rows = await self._q(self.queue.jobs)
                return 200, {"jobs": [self._snapshot(row)
                                      for row in rows]}
            if path == "/jobs" and method == "POST":
                return await self._submit(body)
            if path.startswith("/jobs/"):
                return await self._job_route(method, path, query)
            if path == "/maintenance" and method == "POST":
                return 200, await self._maintenance_async()
            if path == "/shutdown" and method == "POST":
                self._loop.call_soon(
                    lambda: self._loop.create_task(self.shutdown()))
                return 200, {"ok": True, "stopping": True}
        except UnknownJobError as error:
            return 404, {"error": f"unknown job {error.args[0]!r}"}
        except JobStateError as error:
            return 409, {"error": str(error)}
        except JobError as error:
            return 400, {"error": str(error)}
        return 404, {"error": f"no route {method} {path}"}

    async def _submit(self, body: dict) -> tuple[int, dict]:
        kind = body.get("kind")
        params = body.get("params", {})
        problem = _validate_params(kind, params)
        if problem:
            return 400, {"error": problem}
        row, created = await self._q(self.queue.submit, kind, params)
        self._claim_event.set()
        return (201 if created else 200), self._snapshot(row)

    async def _job_route(self, method: str, path: str,
                         query: dict) -> tuple[int, dict]:
        parts = path.split("/")  # ['', 'jobs', '<id>', ...rest]
        job_id = parts[2]
        rest = parts[3:]
        row = await self._q(self.queue.get, job_id)
        if row is None:
            raise UnknownJobError(job_id)
        if not rest and method == "GET":
            since = None
            if "since" in query:
                try:
                    since = int(query["since"])
                except ValueError:
                    return 400, {"error": "since must be an integer"}
            return 200, self._snapshot(row, since=since)
        if rest == ["cancel"] and method == "POST":
            outcome = await self._q(self.queue.request_cancel, job_id)
            local = self.registry.find(job_id)
            if local is not None and not local.state.terminal:
                self.registry.request_cancel(local)
            row = await self._q(self.queue.get, job_id) or row
            return 200, {"ok": True, "immediate": outcome == "immediate",
                         **self._snapshot(row)}
        return 404, {"error": f"no route {method} {path}"}

    # -- server-sent events ----------------------------------------------

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job_id: str, headers: dict,
                             query: dict) -> None:
        """``GET /jobs/<id>/events``: chunked ``text/event-stream``.

        Local jobs stream their feed live (woken by the registry hook,
        no polling); ``Last-Event-ID`` (or ``?last_event_id=``) resumes
        past already-seen events, and a feed gap is surfaced as an
        explicit ``gap`` event.  Jobs owned elsewhere stream
        queue-level ``state`` transitions — follow the owner for the
        full feed.  The stream ends when the job is terminal.
        """
        row = await self._q(self.queue.get, job_id)
        if row is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {job_id!r}"},
                                close=True)
            return
        since = 0
        raw_since = headers.get("last-event-id") or query.get(
            "last_event_id")
        if raw_since:
            try:
                since = int(raw_since)
            except ValueError:
                await self._respond(
                    writer, 400,
                    {"error": "Last-Event-ID must be an integer"},
                    close=True)
                return
        writer.write((
            "HTTP/1.1 200 OK\r\n"
            f"Server: {SERVER_NAME}\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n").encode("ascii"))
        await writer.drain()
        last_remote_state = None
        while True:
            job = self.registry.find(job_id)
            row = await self._q(self.queue.get, job_id)
            if row is None:
                break
            if (job is not None and not job.abandoned
                    and row.server_id == self.server_id):
                since = await self._stream_local(writer, job, since)
                row = await self._q(self.queue.get, job_id)
                if row is None or row.server_id == self.server_id:
                    break  # finished here: terminal state already sent
                continue  # lease moved mid-stream: fall back to remote
            if row.state != last_remote_state:
                self._write_frame(writer, None, "state", {
                    "type": "state", "state": row.state,
                    "completed": row.completed,
                    "server_id": row.server_id})
                await writer.drain()
                last_remote_state = row.state
            if row.terminal:
                break
            await asyncio.sleep(self._claim_poll)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _stream_local(self, writer: asyncio.StreamWriter,
                            job: Job, since: int) -> int:
        """Stream a local job's feed until it goes terminal — or until
        this server loses the job's lease, so a client attached to a
        deposed server falls back to the queue-row stream instead of
        hanging on keep-alives forever; returns the last seq sent (for
        the remote fallback's resume)."""
        waiter = asyncio.Event()
        waiters = self._waiters.setdefault(job.id, set())
        waiters.add(waiter)
        try:
            while True:
                waiter.clear()
                events, dropped = self.registry.events_since(job, since)
                if dropped:
                    self._write_frame(writer, None, "gap",
                                      {"type": "gap", "dropped": dropped})
                for event in events:
                    since = event["seq"]
                    self._write_frame(writer, event["seq"],
                                      event.get("type", "event"), event)
                if events or dropped:
                    await writer.drain()
                if job.state.terminal or job.abandoned:
                    return since
                try:
                    await asyncio.wait_for(waiter.wait(),
                                           timeout=self.sse_keepalive_s)
                except asyncio.TimeoutError:
                    self._write_chunk(writer, b": keep-alive\n\n")
                    await writer.drain()
                    # Belt and braces for a heartbeat that cannot reach
                    # the queue: notice a moved lease ourselves.
                    row = await self._q(self.queue.get, job.id)
                    if row is None or row.server_id != self.server_id:
                        return since
        finally:
            waiters.discard(waiter)
            if not waiters:
                self._waiters.pop(job.id, None)

    def _write_frame(self, writer: asyncio.StreamWriter,
                     eid: int | None, event_type: str,
                     data: dict) -> None:
        text = ""
        if eid is not None:
            text += f"id: {eid}\n"
        text += f"event: {event_type}\n"
        text += f"data: {json.dumps(data, separators=(',', ':'))}\n\n"
        self._write_chunk(writer, text.encode("utf-8"))

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")


_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            408: "Request Timeout", 409: "Conflict",
            413: "Payload Too Large", 431: "Request Header Fields Too Large",
            500: "Internal Server Error"}


def _validate_params(kind, params) -> str | None:
    """Cheap request-shape validation; deep problems fail the job with
    a recorded error instead of a 400."""
    if kind not in ("explore", "optimize"):
        return f"kind must be 'explore' or 'optimize', got {kind!r}"
    if not isinstance(params, dict):
        return "params must be a JSON object"
    budgets = params.get("budgets")
    if kind == "explore":
        circuits = params.get("circuits")
        if (not isinstance(circuits, list) or not circuits
                or not all(isinstance(c, str) for c in circuits)):
            return "params.circuits must be a non-empty list of circuit names"
        if isinstance(budgets, dict):
            if not all(isinstance(v, list) and v for v in budgets.values()):
                return "params.budgets map needs a non-empty list per circuit"
        elif not (isinstance(budgets, list) and budgets):
            return "params.budgets must be a non-empty list (or per-circuit map)"
        chunk = params.get("chunk_size")
        if chunk is not None and (isinstance(chunk, bool)
                                  or not isinstance(chunk, int)
                                  or chunk < 1):
            return "params.chunk_size must be a positive integer"
    else:
        if not isinstance(params.get("circuit"), str) \
                and "graph" not in params:
            return "params.circuit must name a circuit (or pass params.graph)"
        if not (isinstance(budgets, list) and budgets):
            return "params.budgets must be a non-empty list"
    return None


# -- embedding helpers ---------------------------------------------------


class ServerHandle:
    """A server running on a background thread (tests, benches, CLI
    helpers).  ``stop()`` is graceful and idempotent."""

    def __init__(self, server: JobServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                lambda: self._loop.create_task(self.server.shutdown()))
        self._thread.join(timeout)

    def kill(self, timeout: float = 30.0) -> None:
        """Hard stop: abandon in-flight jobs without marking them
        terminal or releasing their leases, as a crash would.  What
        survives is exactly what a killed process leaves: the journals
        and the queue rows, whose leases expire on their own."""
        def _abort() -> None:
            self.server._killed = True
            for task in list(self.server._tasks):
                task.cancel()
            if self.server.pool is not None:
                self.server.pool.shutdown(wait=False, cancel_futures=True)
                self.server.pool = None
            if self.server._server is not None:
                self.server._server.close()
            for w in list(self.server._connections):
                try:
                    w.close()
                except Exception:  # noqa: BLE001
                    pass
            self.server._stopping.set()

        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(_abort)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(state_dir: "str | Path", **kwargs) -> ServerHandle:
    """Start a :class:`JobServer` on a daemon thread; returns once the
    port is bound."""
    started = threading.Event()
    holder: dict[str, object] = {}

    async def _main() -> None:
        server = JobServer(state_dir, **kwargs)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        try:
            await server.serve_forever()
        finally:
            if server._server is not None or server.pool is not None:
                await server.shutdown()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except Exception as error:  # pragma: no cover - startup failure
            holder["error"] = error
            started.set()

    thread = threading.Thread(target=_runner, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("job server failed to start within 30s")
    if "error" in holder:
        raise RuntimeError("job server failed to start") \
            from holder["error"]  # type: ignore[call-arg]
    return ServerHandle(holder["server"], holder["loop"], thread)
