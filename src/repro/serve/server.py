"""The asyncio job server: HTTP/JSON in front, a process pool behind.

One :class:`JobServer` owns four things:

* a stdlib-only HTTP/JSON API (``asyncio.start_server`` + hand-rolled
  HTTP/1.1 parsing — one request per connection, ``Connection:
  close``), so any client from ``curl`` to :class:`repro.serve.client.
  ServeClient` can talk to it;
* a persistent :class:`~concurrent.futures.ProcessPoolExecutor` every
  job shards its work onto — many concurrent jobs multiplex one pool;
* an :class:`~repro.pipeline.index.IndexedArtifactStore` under
  ``<state_dir>/store`` shared by all workers, so every stage artifact
  and candidate evaluation any job ever computed warms every later job;
* a :class:`~repro.serve.jobs.JobRegistry` journaled to
  ``<state_dir>/jobs.jsonl``: kill the server mid-job and the next
  start re-queues the interrupted jobs, whose content-keyed resume
  journals under ``<state_dir>/journals/`` skip the finished points.

Endpoints (all JSON)::

    GET  /health                     liveness + job counts
    GET  /stats                      store/pool/job statistics
    GET  /jobs                       every job, newest last
    POST /jobs                       {"kind": "explore"|"optimize",
                                      "params": {...}} -> job snapshot
    GET  /jobs/<id>?since=<seq>      snapshot + events past <seq>
    POST /jobs/<id>/cancel           cooperative cancellation
    POST /maintenance                journal compaction + store GC
    POST /shutdown                   graceful stop

Incremental results stream through the per-job event feed: ``point``
events as sweep points finish (journal-resumed ones first), ``pareto``
events with the current non-dominated front, ``best`` events as the
optimizer improves, one terminal ``state``/``done`` pair at the end.
"""

from __future__ import annotations

import asyncio
import json
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.opt.journal import compact_journal
from repro.pipeline.config import FlowConfig
from repro.pipeline.explore import (
    ExplorationPoint,
    ExplorationResult,
    journal_point,
    load_point_journal,
    open_point_journal,
    plan_jobs,
    run_chunk,
)
from repro.pipeline.index import IndexedArtifactStore
from repro.serve.jobs import (
    Job,
    JobError,
    JobRegistry,
    JobState,
    JobStateError,
    UnknownJobError,
)
from repro.serve.work import read_progress, run_optimize_job

SERVER_NAME = "repro-serve/1"

#: How often (seconds) a running optimize job's progress file is polled.
PROGRESS_POLL_S = 0.05


def _reap(future) -> None:
    """Swallow the outcome of an abandoned future (cancelled job)."""
    if not future.cancelled():
        future.exception()


class JobServer:
    """Async multi-tenant exploration/optimization server."""

    def __init__(self, state_dir: "str | Path", host: str = "127.0.0.1",
                 port: int = 0, workers: int = 2,
                 max_store_entries: int = 65536,
                 chunk_size: int = 1,
                 maintenance_interval: float = 0.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.maintenance_interval = maintenance_interval
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal_dir = self.state_dir / "journals"
        self.journal_dir.mkdir(exist_ok=True)
        self.host = host
        self.port = port
        self.workers = workers
        self.chunk_size = max(1, chunk_size)
        self.store = IndexedArtifactStore(self.state_dir / "store",
                                          max_entries=max_store_entries)
        self.registry = JobRegistry(self.state_dir / "jobs.jsonl")
        self.pool: ProcessPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._stopping = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "JobServer":
        """Bind, start the worker pool, re-queue interrupted jobs."""
        self._loop = asyncio.get_running_loop()
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        for job in self.registry.recoverable():
            self._schedule(job)
        if self.maintenance_interval > 0:
            task = self._loop.create_task(self._maintenance_loop())
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        return self

    async def _maintenance_loop(self) -> None:
        """Periodic journal compaction + store GC (``repro serve``
        housekeeping; also available on demand via POST /maintenance)."""
        while True:
            await asyncio.sleep(self.maintenance_interval)
            self.maintenance()

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or POST /shutdown)."""
        await self._stopping.wait()

    async def shutdown(self) -> None:
        """Stop accepting, cancel in-flight jobs (their journals make
        the rerun warm), release the pool."""
        if self._server is not None:
            self._server.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        self.registry.close()
        self.store.close()
        self._stopping.set()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- job scheduling --------------------------------------------------

    def _schedule(self, job: Job) -> None:
        task = self._loop.create_task(self._run_job(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        try:
            self.registry.transition(job, JobState.RUNNING)
            if job.kind == "explore":
                await self._run_explore(job)
            else:
                await self._run_optimize(job)
        except asyncio.CancelledError:
            # Server shutdown, not a job failure: leave the job queued in
            # the registry journal so the next start re-runs (= resumes) it.
            raise
        except JobStateError:
            raise
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            detail = "".join(traceback.format_exception_only(error)).strip()
            if not job.state.terminal:
                self.registry.transition(job, JobState.FAILED, error=detail)

    def _cancelled(self, job: Job) -> bool:
        if job.cancel_requested and not job.state.terminal:
            self.registry.transition(job, JobState.CANCELLED)
            return True
        return job.state.terminal

    # -- explore jobs ----------------------------------------------------

    @staticmethod
    def _explore_config(params: dict) -> FlowConfig:
        from repro.core.pm_pass import PMOptions

        return FlowConfig(
            pm=PMOptions(
                ordering=params.get("ordering", "output_first"),
                partial=bool(params.get("partial", False)),
                enabled=not params.get("no_pm", False)),
            scheduler=params.get("scheduler", "list"),
            sim_backend=params.get("sim_backend", "auto"),
            label=params.get("label", "serve"))

    async def _run_explore(self, job: Job) -> None:
        params = job.params
        circuits = params["circuits"]
        budgets = params["budgets"]
        sim_vectors = int(params.get("sim_vectors", 0))
        config = self._explore_config(params)
        planned = plan_jobs(circuits, budgets, [config], sim_vectors)
        job.total = len(planned)

        journal_path = self.journal_dir / f"{job.key}.jsonl"
        completed = load_point_journal(journal_path)
        points: dict[int, ExplorationPoint] = {}
        pending = []
        for index, key, spec, cfg, n_sim in planned:
            if key in completed:
                points[index] = completed[key]
            else:
                pending.append((index, key, spec, cfg, n_sim))
        job.resumed = len(planned) - len(pending)
        job.completed = job.resumed
        for index in sorted(points):
            self.registry.push(job, {
                "type": "point", "resumed": True,
                "point": points[index].to_dict()})
        if points:
            self._push_pareto(job, points)

        chunk_size = int(params.get("chunk_size", self.chunk_size))
        chunks = [pending[i:i + chunk_size]
                  for i in range(0, len(pending), max(1, chunk_size))]
        # Crash recovery hinges on this journal: fsync every point.
        journal = open_point_journal(journal_path, durability="record")
        futures: set = set()
        try:
            futures = {
                self._loop.run_in_executor(self.pool, run_chunk,
                                           (self.store, chunk))
                for chunk in chunks}
            while futures:
                if self._cancelled(job):
                    for future in futures:
                        future.cancel()
                    await asyncio.gather(*futures, return_exceptions=True)
                    return
                done, futures = await asyncio.wait(
                    futures, return_when=asyncio.FIRST_COMPLETED)
                for future in done:
                    for index, key, point in future.result():
                        points[index] = point
                        journal_point(journal, key, point)
                        job.completed += 1
                        self.registry.push(job, {
                            "type": "point", "resumed": False,
                            "point": point.to_dict()})
                    self._push_pareto(job, points)
        finally:
            for future in futures:  # a failed/cancelled job's leftovers
                future.cancel()
                future.add_done_callback(_reap)
            journal.close()
        if self._cancelled(job):
            return

        result = ExplorationResult(
            points=tuple(points[i] for i in sorted(points)),
            resumed=job.resumed)
        front = result.pareto()
        best = result.best()
        self.registry.transition(job, JobState.DONE, result={
            "points": len(result.points),
            "resumed": result.resumed,
            "store_hits": result.store_hits,
            "store_misses": result.store_misses,
            "pareto_size": len(front.points),
            "pareto": [p.to_dict() for p in front.points],
            "best": best.to_dict(),
        })

    def _push_pareto(self, job: Job,
                     points: dict[int, ExplorationPoint]) -> None:
        result = ExplorationResult(
            points=tuple(points[i] for i in sorted(points)))
        front = result.pareto()
        self.registry.push(job, {
            "type": "pareto",
            "size": len(front.points),
            "of": len(result.points),
            "points": [
                {"circuit": p.circuit, "n_steps": p.n_steps,
                 "config_label": p.config_label, "area": p.area,
                 "power_reduction_pct": p.power_reduction_pct}
                for p in front.points],
        })

    # -- optimize jobs ---------------------------------------------------

    async def _run_optimize(self, job: Job) -> None:
        params = job.params
        search = {name: params[name]
                  for name in ("driver", "objective", "iters", "seed",
                               "restarts", "beam_width", "workers",
                               "time_budget")
                  if name in params}
        progress_path = self.journal_dir / f"{job.key}.progress.jsonl"
        try:
            progress_path.unlink()  # each run streams afresh
        except FileNotFoundError:
            pass
        payload = {
            "circuit": params.get("circuit"),
            "search": search,
            "budgets": list(params["budgets"]),
            "schedulers": list(params.get("schedulers", ["list"])),
            "sim_vectors": int(params.get("sim_vectors", 128)),
            "partial": bool(params.get("partial", False)),
            "store": self.store,
            "journal": str(self.journal_dir / f"{job.key}.jsonl"),
            "progress_path": str(progress_path),
        }
        if "graph" in params:
            payload["graph"] = params["graph"]

        future = self._loop.run_in_executor(self.pool, run_optimize_job,
                                            payload)
        offset = 0
        while True:
            records, offset = read_progress(progress_path, offset)
            for record in records:
                job.completed += 1
                self.registry.push(job, {"type": "best", **record})
            if future.done():
                break
            if self._cancelled(job):
                # The pool worker cannot be interrupted mid-search; the
                # job is cancelled from the client's point of view and
                # the worker's journal writes still warm the next run.
                future.cancel()
                future.add_done_callback(_reap)
                return
            await asyncio.sleep(PROGRESS_POLL_S)
        summary = future.result()
        records, offset = read_progress(progress_path, offset)
        for record in records:
            job.completed += 1
            self.registry.push(job, {"type": "best", **record})
        if self._cancelled(job):
            return
        job.total = summary["evaluations"] + summary["reused"]
        self.registry.transition(job, JobState.DONE, result=summary)

    # -- maintenance -----------------------------------------------------

    def maintenance(self) -> dict:
        """Compact every journal and garbage-collect the store — the
        upkeep that lets one server instance run indefinitely.

        Journals of queued/running jobs are skipped: their writers hold
        open append handles, and compaction's atomic replace would strand
        those appends on the unlinked inode.
        """
        active = {job.key for job in self.registry.jobs()
                  if not job.state.terminal}
        journals = {}
        for path in sorted(self.journal_dir.glob("*.jsonl")):
            if not path.exists():
                continue
            if path.name.endswith(".progress.jsonl"):
                continue  # transient sidecar, not journal-format
            if any(path.name.startswith(key) for key in active):
                journals[path.name] = {"skipped": "job in flight"}
                continue
            outcome = compact_journal(path)
            journals[path.name] = {
                "kept": outcome.kept, "dropped": outcome.dropped,
                "bytes_before": outcome.bytes_before,
                "bytes_after": outcome.bytes_after}
        registry = self.registry.compact()
        if registry is not None:
            journals["jobs.jsonl"] = {
                "kept": registry.kept, "dropped": registry.dropped,
                "bytes_before": registry.bytes_before,
                "bytes_after": registry.bytes_after}
        return {"journals": journals, "store": self.store.gc()}

    def stats(self) -> dict:
        jobs = self.registry.jobs()
        by_state: dict[str, int] = {}
        for job in jobs:
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
        return {
            "jobs": by_state,
            "workers": self.workers,
            "store": {
                "entries": len(self.store),
                "bytes": self.store.total_bytes(),
                "hits": self.store.stats.hits,
                "misses": self.store.stats.misses,
                "evictions": self.store.stats.evictions,
            },
        }

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._handle_request(reader)
        except Exception:  # noqa: BLE001 - never kill the acceptor
            status, body = 500, {"error": "internal server error"}
        payload = json.dumps(body).encode("utf-8")
        writer.write(
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Server: {SERVER_NAME}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n".encode("ascii"))
        writer.write(payload)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              ) -> tuple[int, dict]:
        try:
            request_line = await asyncio.wait_for(reader.readline(),
                                                  timeout=10.0)
        except asyncio.TimeoutError:
            return 408, {"error": "request timeout"}
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad content-length"}
        body = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                return 400, {"error": "request body is not valid JSON"}
            if not isinstance(body, dict):
                return 400, {"error": "request body must be a JSON object"}
        url = urlsplit(target)
        query = {name: values[-1]
                 for name, values in parse_qs(url.query).items()}
        return self._route(method, url.path.rstrip("/") or "/", query, body)

    def _route(self, method: str, path: str, query: dict,
               body: dict) -> tuple[int, dict]:
        try:
            if path == "/health" and method == "GET":
                return 200, {"ok": True, "jobs": self.stats()["jobs"]}
            if path == "/stats" and method == "GET":
                return 200, self.stats()
            if path == "/jobs" and method == "GET":
                return 200, {"jobs": [job.snapshot()
                                      for job in self.registry.jobs()]}
            if path == "/jobs" and method == "POST":
                return self._submit(body)
            if path.startswith("/jobs/"):
                return self._job_route(method, path, query)
            if path == "/maintenance" and method == "POST":
                return 200, self.maintenance()
            if path == "/shutdown" and method == "POST":
                self._loop.call_soon(
                    lambda: self._loop.create_task(self.shutdown()))
                return 200, {"ok": True, "stopping": True}
        except UnknownJobError as error:
            return 404, {"error": f"unknown job {error.args[0]!r}"}
        except JobStateError as error:
            return 409, {"error": str(error)}
        except JobError as error:
            return 400, {"error": str(error)}
        return 404, {"error": f"no route {method} {path}"}

    def _submit(self, body: dict) -> tuple[int, dict]:
        kind = body.get("kind")
        params = body.get("params", {})
        problem = _validate_params(kind, params)
        if problem:
            return 400, {"error": problem}
        job, created = self.registry.submit(kind, params)
        if created:
            self._schedule(job)
        return (201 if created else 200), job.snapshot()

    def _job_route(self, method: str, path: str,
                   query: dict) -> tuple[int, dict]:
        parts = path.split("/")  # ['', 'jobs', '<id>', ...rest]
        job = self.registry.get(parts[2])
        rest = parts[3:]
        if not rest and method == "GET":
            since = None
            if "since" in query:
                try:
                    since = int(query["since"])
                except ValueError:
                    return 400, {"error": "since must be an integer"}
            return 200, job.snapshot(since=since)
        if rest == ["cancel"] and method == "POST":
            immediate = self.registry.request_cancel(job)
            return 200, {"ok": True, "immediate": immediate,
                         **job.snapshot()}
        return 404, {"error": f"no route {method} {path}"}


_REASONS = {200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            408: "Request Timeout", 409: "Conflict",
            500: "Internal Server Error"}


def _validate_params(kind, params) -> str | None:
    """Cheap request-shape validation; deep problems fail the job with
    a recorded error instead of a 400."""
    if kind not in ("explore", "optimize"):
        return f"kind must be 'explore' or 'optimize', got {kind!r}"
    if not isinstance(params, dict):
        return "params must be a JSON object"
    budgets = params.get("budgets")
    if kind == "explore":
        circuits = params.get("circuits")
        if (not isinstance(circuits, list) or not circuits
                or not all(isinstance(c, str) for c in circuits)):
            return "params.circuits must be a non-empty list of circuit names"
        if isinstance(budgets, dict):
            if not all(isinstance(v, list) and v for v in budgets.values()):
                return "params.budgets map needs a non-empty list per circuit"
        elif not (isinstance(budgets, list) and budgets):
            return "params.budgets must be a non-empty list (or per-circuit map)"
    else:
        if not isinstance(params.get("circuit"), str) \
                and "graph" not in params:
            return "params.circuit must name a circuit (or pass params.graph)"
        if not (isinstance(budgets, list) and budgets):
            return "params.budgets must be a non-empty list"
    return None


# -- embedding helpers ---------------------------------------------------


class ServerHandle:
    """A server running on a background thread (tests, benches, CLI
    helpers).  ``stop()`` is graceful and idempotent."""

    def __init__(self, server: JobServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                lambda: self._loop.create_task(self.server.shutdown()))
        self._thread.join(timeout)

    def kill(self, timeout: float = 30.0) -> None:
        """Hard stop: abandon in-flight jobs without marking them
        terminal, as a crash would.  What survives is exactly what a
        killed process leaves: the journals."""
        def _abort() -> None:
            for task in list(self.server._tasks):
                task.cancel()
            if self.server.pool is not None:
                self.server.pool.shutdown(wait=False, cancel_futures=True)
                self.server.pool = None
            if self.server._server is not None:
                self.server._server.close()
            self.server._stopping.set()

        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(_abort)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_in_thread(state_dir: "str | Path", **kwargs) -> ServerHandle:
    """Start a :class:`JobServer` on a daemon thread; returns once the
    port is bound."""
    started = threading.Event()
    holder: dict[str, object] = {}

    async def _main() -> None:
        server = JobServer(state_dir, **kwargs)
        await server.start()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        started.set()
        try:
            await server.serve_forever()
        finally:
            if server._server is not None or server.pool is not None:
                await server.shutdown()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except Exception as error:  # pragma: no cover - startup failure
            holder["error"] = error
            started.set()

    thread = threading.Thread(target=_runner, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("job server failed to start within 30s")
    if "error" in holder:
        raise RuntimeError("job server failed to start") \
            from holder["error"]  # type: ignore[call-arg]
    return ServerHandle(holder["server"], holder["loop"], thread)
