"""Worker-side job bodies (top-level functions, so the pool can pickle
them).

Explore jobs reuse :func:`repro.pipeline.explore.run_chunk` directly —
the server plans the grid, diffs it against the job's resume journal,
and ships pending chunks here.  Optimize jobs run a whole
:func:`repro.opt.search.optimize` in one worker; incremental
best-so-far improvements — and, for the portfolio driver, evolving
Pareto-archive snapshots (``"type": "pareto"`` records) — stream back
through a sidecar JSONL progress file the server tails (the pool
cannot carry callbacks across the process boundary, a flushed
append-only file can).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.pm_pass import PMOptions
from repro.ir.serialize import graph_from_dict


def _load_graph(params: dict):
    """The job's circuit: a registry/family name or a serialized CDFG."""
    if "graph" in params:
        return graph_from_dict(params["graph"])
    from repro.circuits import build

    return build(params["circuit"])


def run_optimize_job(payload: dict) -> dict:
    """One full optimizer search; returns the JSON outcome summary.

    ``payload`` carries the circuit spec, a ``search`` dict of
    :class:`~repro.opt.search.SearchSpec` fields, the budget/scheduler
    dimensions, the shared artifact store (pickled by path), the
    evaluation resume journal, and the progress-file path to stream
    best-so-far improvements to.
    """
    from repro.opt.search import SearchSpec, optimize

    graph = _load_graph(payload)
    spec = SearchSpec(**payload.get("search", {}))
    progress_path = payload.get("progress_path")
    progress = None
    front_progress = None
    if progress_path:
        handle = open(progress_path, "a", encoding="utf-8")

        def _emit(record: dict) -> None:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

        def progress(step, score, candidate):
            _emit({
                "type": "best",
                "step": step,
                "score": score,
                "n_steps": candidate.n_steps,
                "scheduler": candidate.scheduler,
                "order": list(candidate.order),
            })

        def front_progress(round_index, archive):
            _emit({
                "type": "pareto",
                "round": round_index,
                "size": len(archive),
                "front": [entry.to_dict() for entry in archive.front()],
            })

    pm_base = PMOptions(partial=bool(payload.get("partial", False)))
    extra = {}
    if spec.driver == "portfolio":
        extra["front_progress"] = front_progress
    try:
        result = optimize(
            graph, spec,
            budgets=tuple(payload["budgets"]),
            schedulers=tuple(payload.get("schedulers", ("list",))),
            store=payload.get("store"),
            journal=payload.get("journal"),
            sim_vectors=int(payload.get("sim_vectors", 128)),
            pm_base=pm_base,
            # Serve journals are the crash-recovery record: fsync each.
            durability="record",
            progress=progress,
            **extra,
        )
    finally:
        if progress_path:
            handle.close()
    return {
        "outcome": result.outcome(),
        "evaluations": result.evaluations,
        "reused": result.reused,
        "resumed": result.resumed,
        "memo_hits": result.memo_hits,
        "store_hits": result.store_hits,
        "pareto_size": len(result.archive) if result.archive else 0,
        "improvement_over_greedy": result.improvement_over_greedy,
    }


def read_progress(path: "str | Path", offset: int) -> tuple[list[dict], int]:
    """New progress records past byte ``offset``; returns them plus the
    new offset.  Only complete (newline-terminated) lines are consumed,
    so a record mid-write is picked up whole on the next poll."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except FileNotFoundError:
        return [], offset
    records = []
    consumed = 0
    for line in data.split(b"\n")[:-1]:
        consumed += len(line) + 1
        try:
            record = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records, offset + consumed
