"""Long-running multi-tenant exploration/optimization serving.

The :mod:`repro.serve` package promotes the batch-shaped explorer and
optimizer into an always-on service:

* :class:`JobServer` — asyncio HTTP/JSON server multiplexing explore
  and optimize jobs from many clients over one persistent process pool
  and one SQLite-indexed artifact store;
* :class:`ServeClient` — the stdlib client the CLI and tests drive it
  with;
* :class:`JobRegistry` / :class:`Job` / :class:`JobState` — the
  journaled job table and its lifecycle state machine;
* :func:`start_in_thread` — run a server on a background thread (tests,
  benches, notebooks).

See ``docs/serving.md`` for the API and operational knobs.
"""

from repro.serve.client import (
    EventGapError,
    JobFailed,
    ServeClient,
    ServeError,
)
from repro.serve.jobs import (
    Job,
    JobError,
    JobRegistry,
    JobRow,
    JobState,
    JobStateError,
    LeaseStore,
    UnknownJobError,
    job_content_key,
)
from repro.serve.server import JobServer, ServerHandle, start_in_thread

__all__ = [
    "EventGapError",
    "Job",
    "JobError",
    "JobFailed",
    "JobRegistry",
    "JobRow",
    "JobServer",
    "JobState",
    "JobStateError",
    "LeaseStore",
    "ServeClient",
    "ServeError",
    "ServerHandle",
    "UnknownJobError",
    "job_content_key",
    "start_in_thread",
]
