"""Job identity, state machine, and the crash-safe registry.

One :class:`Job` is a client's request — an ``explore`` sweep or an
``optimize`` search — moving through a fixed lifecycle::

    queued ──> running ──> done
       │          ├──────> failed
       └──────────┴──────> cancelled

Transitions outside those edges raise :class:`JobStateError`; terminal
states are final.  Every job also carries a monotonically-sequenced
event feed (finished points, Pareto fronts, optimizer best-so-far) that
clients poll incrementally with ``?since=<seq>``.

Identity is content-addressed: :func:`job_content_key` digests
``(kind, params)``, and the job's resume journal lives under that key —
so resubmitting the same request after a crash (or on a warm store)
replays journaled work instead of recomputing it, and two clients
submitting the identical request while it is in flight share one job.

The registry itself journals every submission and state change to
``jobs.jsonl`` (the shared :mod:`repro.opt.journal` format, last record
per job wins), which is what lets a restarted server re-queue the jobs
a crash interrupted and still answer status queries for finished ones.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro.opt.journal import append_record, load_journal, open_journal

JOB_KINDS = ("explore", "optimize")

REGISTRY_JOURNAL_KIND = "serve-jobs"

#: Per-job event-feed memory bound; older events age out of the feed
#: (the count survives on ``events_dropped`` so pollers can tell).
MAX_EVENTS = 4096


class JobError(Exception):
    """Base class for job bookkeeping errors."""


class UnknownJobError(JobError, KeyError):
    """No job with that id."""


class JobStateError(JobError):
    """An illegal lifecycle transition was attempted."""


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = {JobState.DONE, JobState.FAILED, JobState.CANCELLED}

_TRANSITIONS: dict[JobState, set[JobState]] = {
    JobState.QUEUED: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.CANCELLED},
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}


def job_content_key(kind: str, params: dict) -> str:
    """Stable identity of one request: same (kind, params) — across
    submissions, clients, and server restarts — same key, same journal.
    """
    payload = json.dumps({"kind": kind, "params": params}, sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


@dataclass
class Job:
    """One submitted request and everything observable about it."""

    id: str
    kind: str
    params: dict
    key: str
    state: JobState = JobState.QUEUED
    error: str | None = None
    #: Work units when known (the explore grid size; optimize leaves it
    #: unset until the evaluation count arrives with the result).
    total: int | None = None
    completed: int = 0
    resumed: int = 0
    cancel_requested: bool = False
    result: dict | None = None
    events: list[dict] = field(default_factory=list)
    events_dropped: int = 0
    last_seq: int = 0

    def snapshot(self, since: int | None = None) -> dict:
        """JSON view; with ``since`` the event feed past that seq rides
        along (``since=0`` streams from the beginning)."""
        view = {
            "id": self.id,
            "kind": self.kind,
            "key": self.key,
            "state": self.state.value,
            "error": self.error,
            "total": self.total,
            "completed": self.completed,
            "resumed": self.resumed,
            "cancel_requested": self.cancel_requested,
            "result": self.result,
            "last_seq": self.last_seq,
            "events_dropped": self.events_dropped,
        }
        if since is not None:
            view["events"] = [e for e in self.events if e["seq"] > since]
        return view


class JobRegistry:
    """Thread-safe job table + lifecycle enforcement + crash journal."""

    def __init__(self, journal_path: "str | Path | None" = None) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._journal_path = (Path(journal_path)
                              if journal_path is not None else None)
        self._journal = None
        if self._journal_path is not None:
            self._restore()
            # Job state is the crash-recovery record: fsync every append.
            self._journal = open_journal(self._journal_path,
                                         REGISTRY_JOURNAL_KIND,
                                         durability="record")

    # -- persistence -----------------------------------------------------

    def _restore(self) -> None:
        """Load the last-known state of every journaled job."""
        top = 0
        for job_id, record in load_journal(self._journal_path).items():
            try:
                job = Job(
                    id=job_id,
                    kind=str(record["kind"]),
                    params=dict(record["params"]),
                    key=str(record["jkey"]),
                    state=JobState(record["state"]),
                    error=record.get("error"),
                    total=record.get("total"),
                    completed=int(record.get("completed", 0)),
                    resumed=int(record.get("resumed", 0)),
                    result=record.get("result"),
                )
            except (KeyError, TypeError, ValueError):
                continue  # stale/foreign record: not a job we can revive
            self._jobs[job.id] = job
            if job.id.startswith("j-"):
                try:
                    top = max(top, int(job.id.split("-")[1]))
                except (IndexError, ValueError):
                    pass
        self._ids = itertools.count(top + 1)

    def _persist(self, job: Job) -> None:
        if self._journal is None:
            return
        append_record(self._journal, job.id, {
            "kind": job.kind,
            "params": job.params,
            "jkey": job.key,
            "state": job.state.value,
            "error": job.error,
            "total": job.total,
            "completed": job.completed,
            "resumed": job.resumed,
            "result": job.result,
        })

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def compact(self):
        """Compact ``jobs.jsonl`` safely: the registry's own append
        handle is cycled around the atomic replace, so no state change
        is ever stranded on the replaced inode."""
        from repro.opt.journal import compact_journal

        with self._lock:
            if self._journal_path is None:
                return None
            if self._journal is not None:
                self._journal.close()
            outcome = compact_journal(self._journal_path,
                                      kind=REGISTRY_JOURNAL_KIND)
            self._journal = open_journal(self._journal_path,
                                         REGISTRY_JOURNAL_KIND,
                                         durability="record")
            return outcome

    # -- submission and lookup -------------------------------------------

    def submit(self, kind: str, params: dict) -> tuple[Job, bool]:
        """Register one request; returns ``(job, created)``.

        ``created`` is ``False`` when an identical request (same content
        key) is already queued or running — the callers share that job
        instead of racing two copies of the same work.
        """
        if kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {kind!r}; choose from "
                           f"{JOB_KINDS}")
        if not isinstance(params, dict):
            raise JobError(f"params must be an object, got {type(params)!r}")
        key = job_content_key(kind, params)
        with self._lock:
            for job in self._jobs.values():
                if job.key == key and not job.state.terminal:
                    return job, False
            job = Job(id=f"j-{next(self._ids)}-{key[:8]}", kind=kind,
                      params=dict(params), key=key)
            self._jobs[job.id] = job
            self._persist(job)
            return job, True

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def recoverable(self) -> list[Job]:
        """Jobs a previous process left unfinished, re-queued for a
        fresh run (their content-keyed journals make the rerun warm)."""
        with self._lock:
            revived = []
            for job in self._jobs.values():
                if not job.state.terminal:
                    job.state = JobState.QUEUED
                    job.cancel_requested = False
                    job.completed = 0
                    job.resumed = 0
                    revived.append(job)
            return revived

    # -- lifecycle -------------------------------------------------------

    def transition(self, job: Job, to: JobState,
                   error: str | None = None,
                   result: dict | None = None) -> None:
        with self._lock:
            if to not in _TRANSITIONS[job.state]:
                raise JobStateError(
                    f"job {job.id}: illegal transition "
                    f"{job.state.value} -> {to.value}")
            job.state = to
            if error is not None:
                job.error = error
            if result is not None:
                job.result = result
            self._persist(job)
            self._push(job, {"type": "state", "state": to.value,
                             **({"error": error} if error else {})})

    def request_cancel(self, job: Job) -> bool:
        """Ask for cancellation; ``True`` if it took effect immediately
        (the job was still queued).  A running job is cancelled
        cooperatively at its next chunk boundary."""
        with self._lock:
            if job.state.terminal:
                return False
            job.cancel_requested = True
            if job.state is JobState.QUEUED:
                job.state = JobState.CANCELLED
                self._persist(job)
                self._push(job, {"type": "state",
                                 "state": JobState.CANCELLED.value})
                return True
            return False

    # -- event feed ------------------------------------------------------

    def push(self, job: Job, event: dict) -> int:
        """Append one event to the job's feed; returns its seq."""
        with self._lock:
            return self._push(job, event)

    def _push(self, job: Job, event: dict) -> int:
        job.last_seq += 1
        job.events.append({"seq": job.last_seq, **event})
        if len(job.events) > MAX_EVENTS:
            drop = len(job.events) - MAX_EVENTS
            del job.events[:drop]
            job.events_dropped += drop
        return job.last_seq
