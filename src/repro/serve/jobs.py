"""Job identity, state machine, the per-server registry, and the
shared lease queue.

One :class:`Job` is a client's request — an ``explore`` sweep or an
``optimize`` search — moving through a fixed lifecycle::

    queued ──> running ──> done
       │          ├──────> failed
       └──────────┴──────> cancelled

Transitions outside those edges raise :class:`JobStateError`; terminal
states are final.  Every job also carries a monotonically-sequenced
event feed (finished points, Pareto fronts, optimizer best-so-far) that
clients poll incrementally with ``?since=<seq>`` or follow live over
the server's SSE endpoint.

Identity is content-addressed: :func:`job_content_key` digests
``(kind, params)``, and the job's resume journal lives under that key —
so resubmitting the same request after a crash (or on a warm store)
replays journaled work instead of recomputing it, and two clients
submitting the identical request while it is in flight share one job.

Multi-server deployments coordinate through :class:`LeaseStore`: a
WAL-mode SQLite queue (``<state>/queue.sqlite``) every server sharing
one ``state_dir`` drains together.  Submissions insert queue rows
(content-key dedup is cluster-wide), servers claim work inside
``BEGIN IMMEDIATE`` transactions that stamp ``(server_id,
lease_deadline)`` on the row, heartbeats extend live leases, and a
lease that expires — the owning server crashed or stalled — makes the
row claimable again.  The content-keyed resume journals make the
re-claimed job warm, so kill -9 of any server loses no finished work.

:class:`JobRegistry` remains the per-server view: the in-memory job
table and bounded event feeds for jobs *this* server claimed, with an
optional ``jobs.jsonl`` journal for embedded single-process use (the
shared :mod:`repro.opt.journal` format, last record per job wins).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro.opt.journal import append_record, load_journal, open_journal
from repro.pipeline.index import wal_connect

JOB_KINDS = ("explore", "optimize")

REGISTRY_JOURNAL_KIND = "serve-jobs"

#: Per-job event-feed memory bound; older events age out of the feed
#: (the count survives on ``events_dropped`` so pollers can tell).
MAX_EVENTS = 4096

#: How far a re-claimed job's event sequence jumps past the queue row's
#: mirrored high-water mark.  The mirror (progress/heartbeat writes)
#: can lag the dead owner's live feed by the events pushed since its
#: last write; a full ring of headroom keeps every new seq above
#: anything a client of the dead owner can have seen, so old
#: ``Last-Event-ID``/``since`` cursors stay valid — at worst they see
#: an explicit ``gap`` followed by the new owner's replay, never a
#: silent skip.
SEQ_REBASE_MARGIN = MAX_EVENTS


class JobError(Exception):
    """Base class for job bookkeeping errors."""


class UnknownJobError(JobError, KeyError):
    """No job with that id."""


class JobStateError(JobError):
    """An illegal lifecycle transition was attempted."""


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = {JobState.DONE, JobState.FAILED, JobState.CANCELLED}

_TRANSITIONS: dict[JobState, set[JobState]] = {
    JobState.QUEUED: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.CANCELLED},
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}


def job_content_key(kind: str, params: dict) -> str:
    """Stable identity of one request: same (kind, params) — across
    submissions, clients, and server restarts — same key, same journal.
    """
    payload = json.dumps({"kind": kind, "params": params}, sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


@dataclass
class Job:
    """One submitted request and everything observable about it."""

    id: str
    kind: str
    params: dict
    key: str
    state: JobState = JobState.QUEUED
    error: str | None = None
    #: Work units when known (the explore grid size; optimize leaves it
    #: unset until the evaluation count arrives with the result).
    total: int | None = None
    completed: int = 0
    resumed: int = 0
    cancel_requested: bool = False
    #: Set when this server lost the job's lease: work stops, but no
    #: terminal transition happens locally — the job is alive under
    #: its new owner, whose queue row is now the truth.
    abandoned: bool = False
    result: dict | None = None
    events: list[dict] = field(default_factory=list)
    events_dropped: int = 0
    last_seq: int = 0

    def snapshot(self, since: int | None = None) -> dict:
        """JSON view; with ``since`` the event feed past that seq rides
        along (``since=0`` streams from the beginning)."""
        view = {
            "id": self.id,
            "kind": self.kind,
            "key": self.key,
            "state": self.state.value,
            "error": self.error,
            "total": self.total,
            "completed": self.completed,
            "resumed": self.resumed,
            "cancel_requested": self.cancel_requested,
            "result": self.result,
            "last_seq": self.last_seq,
            "events_dropped": self.events_dropped,
        }
        if since is not None:
            view["events"] = [e for e in self.events if e["seq"] > since]
        return view


class JobRegistry:
    """Thread-safe job table + lifecycle enforcement + event feeds.

    ``max_events`` bounds each job's in-memory feed ring;
    ``on_event`` (called outside the lock, with the job) lets the
    server wake SSE streams the moment anything is pushed.
    """

    def __init__(self, journal_path: "str | Path | None" = None, *,
                 max_events: int = MAX_EVENTS,
                 on_event=None) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self.max_events = max(1, int(max_events))
        self._on_event = on_event
        self._journal_path = (Path(journal_path)
                              if journal_path is not None else None)
        self._journal = None
        if self._journal_path is not None:
            self._restore()
            # Job state is the crash-recovery record: fsync every append.
            self._journal = open_journal(self._journal_path,
                                         REGISTRY_JOURNAL_KIND,
                                         durability="record")

    # -- persistence -----------------------------------------------------

    def _restore(self) -> None:
        """Load the last-known state of every journaled job."""
        top = 0
        for job_id, record in load_journal(self._journal_path).items():
            try:
                job = Job(
                    id=job_id,
                    kind=str(record["kind"]),
                    params=dict(record["params"]),
                    key=str(record["jkey"]),
                    state=JobState(record["state"]),
                    error=record.get("error"),
                    total=record.get("total"),
                    completed=int(record.get("completed", 0)),
                    resumed=int(record.get("resumed", 0)),
                    result=record.get("result"),
                )
            except (KeyError, TypeError, ValueError):
                continue  # stale/foreign record: not a job we can revive
            self._jobs[job.id] = job
            if job.id.startswith("j-"):
                try:
                    top = max(top, int(job.id.split("-")[1]))
                except (IndexError, ValueError):
                    pass
        self._ids = itertools.count(top + 1)

    def _persist(self, job: Job) -> None:
        if self._journal is None:
            return
        append_record(self._journal, job.id, {
            "kind": job.kind,
            "params": job.params,
            "jkey": job.key,
            "state": job.state.value,
            "error": job.error,
            "total": job.total,
            "completed": job.completed,
            "resumed": job.resumed,
            "result": job.result,
        })

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def compact(self):
        """Compact ``jobs.jsonl`` safely: the registry's own append
        handle is cycled around the atomic replace, so no state change
        is ever stranded on the replaced inode."""
        from repro.opt.journal import compact_journal

        with self._lock:
            if self._journal_path is None:
                return None
            if self._journal is not None:
                self._journal.close()
            outcome = compact_journal(self._journal_path,
                                      kind=REGISTRY_JOURNAL_KIND)
            self._journal = open_journal(self._journal_path,
                                         REGISTRY_JOURNAL_KIND,
                                         durability="record")
            return outcome

    # -- submission and lookup -------------------------------------------

    def submit(self, kind: str, params: dict) -> tuple[Job, bool]:
        """Register one request; returns ``(job, created)``.

        ``created`` is ``False`` when an identical request (same content
        key) is already queued or running — the callers share that job
        instead of racing two copies of the same work.
        """
        if kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {kind!r}; choose from "
                           f"{JOB_KINDS}")
        if not isinstance(params, dict):
            raise JobError(f"params must be an object, got {type(params)!r}")
        key = job_content_key(kind, params)
        with self._lock:
            for job in self._jobs.values():
                if job.key == key and not job.state.terminal:
                    return job, False
            job = Job(id=f"j-{next(self._ids)}-{key[:8]}", kind=kind,
                      params=dict(params), key=key)
            self._jobs[job.id] = job
            self._persist(job)
            return job, True

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def find(self, job_id: str) -> "Job | None":
        """Like :meth:`get`, but ``None`` for an unknown id — the lookup
        a lease-queue server makes for jobs other servers may own."""
        with self._lock:
            return self._jobs.get(job_id)

    def adopt(self, row: "JobRow") -> Job:
        """Mirror a just-claimed queue row as this server's local job.

        The queue assigned the id; the local job starts ``queued`` so
        the ordinary ``queued -> running`` transition (and its feed
        event) still happens.  The feed's sequence continues from the
        row's ``last_seq`` — which :meth:`LeaseStore.claim` rebased
        past the previous owner's high-water mark on a re-claim — so a
        client cursor from the old owner's feed is always *behind* the
        new feed and resumes with an explicit gap + replay instead of
        silently filtering the new owner's events out.
        """
        with self._lock:
            job = Job(id=row.id, kind=row.kind, params=dict(row.params),
                      key=row.key)
            job.cancel_requested = bool(row.cancel_requested)
            job.last_seq = int(row.last_seq)
            self._jobs[row.id] = job
            return job

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def recoverable(self) -> list[Job]:
        """Jobs a previous process left unfinished, re-queued for a
        fresh run (their content-keyed journals make the rerun warm)."""
        with self._lock:
            revived = []
            for job in self._jobs.values():
                if not job.state.terminal:
                    job.state = JobState.QUEUED
                    job.cancel_requested = False
                    job.completed = 0
                    job.resumed = 0
                    revived.append(job)
            return revived

    # -- lifecycle -------------------------------------------------------

    def transition(self, job: Job, to: JobState,
                   error: str | None = None,
                   result: dict | None = None) -> None:
        with self._lock:
            if to not in _TRANSITIONS[job.state]:
                raise JobStateError(
                    f"job {job.id}: illegal transition "
                    f"{job.state.value} -> {to.value}")
            job.state = to
            if error is not None:
                job.error = error
            if result is not None:
                job.result = result
            self._persist(job)
            self._push(job, {"type": "state", "state": to.value,
                             **({"error": error} if error else {})})
        self._notify(job)

    def request_cancel(self, job: Job) -> bool:
        """Ask for cancellation; ``True`` if it took effect immediately
        (the job was still queued).  A running job is cancelled
        cooperatively at its next chunk boundary."""
        with self._lock:
            if job.state.terminal:
                return False
            job.cancel_requested = True
            if job.state is JobState.QUEUED:
                job.state = JobState.CANCELLED
                self._persist(job)
                self._push(job, {"type": "state",
                                 "state": JobState.CANCELLED.value})
            else:
                return False
        self._notify(job)
        return True

    # -- event feed ------------------------------------------------------

    def push(self, job: Job, event: dict) -> int:
        """Append one event to the job's feed; returns its seq."""
        with self._lock:
            seq = self._push(job, event)
        self._notify(job)
        return seq

    def _push(self, job: Job, event: dict) -> int:
        job.last_seq += 1
        job.events.append({"seq": job.last_seq, **event})
        if len(job.events) > self.max_events:
            drop = len(job.events) - self.max_events
            del job.events[:drop]
            job.events_dropped += drop
        return job.last_seq

    def _notify(self, job: Job) -> None:
        if self._on_event is not None:
            self._on_event(job)

    def events_since(self, job: Job, since: int) -> tuple[list[dict], int]:
        """Feed events past ``since`` plus the count that aged out of
        the ring before they could be seen (the gap an honest stream
        must surface instead of silently skipping)."""
        with self._lock:
            events = [e for e in job.events if e["seq"] > since]
            dropped = 0
            if events and events[0]["seq"] > since + 1:
                dropped = events[0]["seq"] - since - 1
            return events, dropped


# -- the shared lease queue ----------------------------------------------


TERMINAL_STATES = tuple(state.value for state in _TERMINAL)

ACTIVE_STATES = (JobState.QUEUED.value, JobState.RUNNING.value)

QUEUE_NAME = "queue.sqlite"

QUEUE_FORMAT = 2

_QUEUE_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    n INTEGER NOT NULL UNIQUE,
    key TEXT NOT NULL,
    kind TEXT NOT NULL,
    params TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    error TEXT,
    result TEXT,
    total INTEGER,
    completed INTEGER NOT NULL DEFAULT 0,
    resumed INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    server_id TEXT,
    lease_deadline REAL,
    claims INTEGER NOT NULL DEFAULT 0,
    last_seq INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state, n);
CREATE INDEX IF NOT EXISTS jobs_by_key ON jobs(key);
CREATE TABLE IF NOT EXISTS qmeta (
    k TEXT PRIMARY KEY,
    v INTEGER NOT NULL
);
INSERT OR IGNORE INTO qmeta (k, v) VALUES ('format', {format});
INSERT OR IGNORE INTO qmeta (k, v) VALUES ('n', 0);
""".format(format=QUEUE_FORMAT)

_ROW_COLUMNS = ("id, n, key, kind, params, state, error, result, total, "
                "completed, resumed, cancel_requested, server_id, "
                "lease_deadline, claims, last_seq")


@dataclass(frozen=True)
class JobRow:
    """One queue row: the cluster-wide truth about a job."""

    id: str
    n: int
    key: str
    kind: str
    params: dict
    state: str
    error: str | None
    result: dict | None
    total: int | None
    completed: int
    resumed: int
    cancel_requested: bool
    server_id: str | None
    lease_deadline: float | None
    claims: int
    #: Mirrored feed high-water mark: the owner writes its event seq
    #: here with progress/heartbeat updates, and a re-claim rebases it
    #: (``+ SEQ_REBASE_MARGIN``) so feed seqs never rewind across
    #: owners.
    last_seq: int

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self) -> dict:
        """The JSON view every server answers for this job, local or
        not (feed fields ride along only where the feed lives)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "key": self.key,
            "state": self.state,
            "error": self.error,
            "total": self.total,
            "completed": self.completed,
            "resumed": self.resumed,
            "cancel_requested": self.cancel_requested,
            "result": self.result,
            "server_id": self.server_id,
            "claims": self.claims,
        }


def _row(raw) -> JobRow:
    return JobRow(
        id=raw[0], n=raw[1], key=raw[2], kind=raw[3],
        params=json.loads(raw[4]), state=raw[5], error=raw[6],
        result=json.loads(raw[7]) if raw[7] else None,
        total=raw[8], completed=raw[9], resumed=raw[10],
        cancel_requested=bool(raw[11]), server_id=raw[12],
        lease_deadline=raw[13], claims=raw[14], last_seq=raw[15])


class LeaseStore:
    """The shared job queue N servers drain over one ``state_dir``.

    Every mutation is one SQLite transaction against a WAL database,
    so any number of server processes (or threads) coordinate through
    the filesystem alone:

    * :meth:`submit` dedups in-flight requests cluster-wide by content
      key and assigns the job id;
    * :meth:`claim` picks the oldest claimable row — ``queued``, or
      ``running`` with an expired lease — inside ``BEGIN IMMEDIATE``,
      stamping ``(server_id, lease_deadline)`` before returning, so two
      servers can never claim the same job;
    * :meth:`heartbeat` extends the leases of exactly the jobs the
      caller says it is running — never every row stamped with its
      name, so a server restarted under the same identity cannot keep
      a dead predecessor's leases fresh — and reports which of them it
      still owns (a lost lease means a stalled server should abandon
      the work: someone else owns it now);
    * :meth:`finish` and :meth:`progress` are ownership-guarded: a
      server that lost its lease cannot clobber the re-claimant's row;
    * :meth:`release` re-queues a gracefully-stopping server's running
      jobs immediately, without waiting out their leases.

    ``now`` parameters default to ``time.time()`` and exist so tests
    can drive lease expiry deterministically.
    """

    def __init__(self, path: "str | Path", *,
                 lease_s: float = 30.0) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        self.path = Path(path)
        self.lease_s = float(lease_s)
        self._lock = threading.Lock()
        self._conn = None
        self._conn_pid: int | None = None

    def _db(self):
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # One connection shared across this server's threads (the
            # event loop plus its executor), serialized by self._lock.
            self._conn = wal_connect(self.path, check_same_thread=False)
            self._conn.executescript(_QUEUE_SCHEMA)
            have = {row[1] for row in self._conn.execute(
                "PRAGMA table_info(jobs)")}
            if "last_seq" not in have:  # format-1 queue: migrate in place
                self._conn.execute(
                    "ALTER TABLE jobs ADD COLUMN last_seq INTEGER "
                    "NOT NULL DEFAULT 0")
            self._conn_pid = pid
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._conn_pid = None

    def _transaction(self, body):
        """Run ``body(conn)`` inside one BEGIN IMMEDIATE transaction."""
        with self._lock:
            conn = self._db()
            conn.execute("BEGIN IMMEDIATE")
            try:
                outcome = body(conn)
                conn.execute("COMMIT")
                return outcome
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    # -- submission ------------------------------------------------------

    def submit(self, kind: str, params: dict) -> tuple[JobRow, bool]:
        """Enqueue one request; returns ``(row, created)``.

        ``created`` is ``False`` when an identical request (same
        content key) is queued or running anywhere in the cluster —
        the callers share that job instead of racing two copies.
        """
        if kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {kind!r}; choose from "
                           f"{JOB_KINDS}")
        if not isinstance(params, dict):
            raise JobError(f"params must be an object, got {type(params)!r}")
        key = job_content_key(kind, params)

        def body(conn):
            raw = conn.execute(
                f"SELECT {_ROW_COLUMNS} FROM jobs WHERE key=? AND state"
                " IN (?, ?) ORDER BY n LIMIT 1",
                (key, *ACTIVE_STATES)).fetchone()
            if raw is not None:
                return _row(raw), False
            conn.execute("UPDATE qmeta SET v = v + 1 WHERE k='n'")
            n = conn.execute(
                "SELECT v FROM qmeta WHERE k='n'").fetchone()[0]
            job_id = f"j-{n}-{key[:8]}"
            conn.execute(
                "INSERT INTO jobs (id, n, key, kind, params) "
                "VALUES (?, ?, ?, ?, ?)",
                (job_id, n, key, kind,
                 json.dumps(params, sort_keys=True, default=str)))
            raw = conn.execute(
                f"SELECT {_ROW_COLUMNS} FROM jobs WHERE id=?",
                (job_id,)).fetchone()
            return _row(raw), True

        return self._transaction(body)

    # -- claiming and leases ---------------------------------------------

    def claim(self, server_id: str,
              now: float | None = None) -> JobRow | None:
        """Claim the oldest claimable job for ``server_id``, or None.

        Claimable: ``queued``, or ``running`` with an expired lease held
        by *another* server (a server never steals a job from itself —
        its own stalled lease still has a live local task behind it).
        Claiming resets the progress counters: the new run re-counts
        journal replays itself.  A *re*-claim also rebases ``last_seq``
        to the mirrored high-water mark plus :data:`SEQ_REBASE_MARGIN`,
        so the new owner's event feed continues strictly above every
        seq the old owner's clients can have seen.
        """
        now = time.time() if now is None else now

        def body(conn):
            raw = conn.execute(
                f"SELECT {_ROW_COLUMNS} FROM jobs WHERE state=? OR "
                "(state=? AND lease_deadline < ? AND server_id != ?) "
                "ORDER BY n LIMIT 1",
                (JobState.QUEUED.value, JobState.RUNNING.value, now,
                 server_id)).fetchone()
            if raw is None:
                return None
            conn.execute(
                "UPDATE jobs SET state=?, server_id=?, lease_deadline=?, "
                "claims=claims+1, completed=0, resumed=0, "
                "last_seq=last_seq + "
                "(CASE WHEN claims > 0 THEN ? ELSE 0 END) WHERE id=?",
                (JobState.RUNNING.value, server_id, now + self.lease_s,
                 SEQ_REBASE_MARGIN, raw[0]))
            fresh = conn.execute(
                f"SELECT {_ROW_COLUMNS} FROM jobs WHERE id=?",
                (raw[0],)).fetchone()
            return _row(fresh)

        return self._transaction(body)

    def heartbeat(self, server_id: str, jobs,
                  now: float | None = None) -> list[str]:
        """Extend the leases on the given jobs; returns the ids among
        them ``server_id`` still owns (missing = re-claimed by a peer).

        ``jobs`` is the ids of the jobs the caller is *actually
        running* — either an iterable of ids, or a mapping of id to
        the job's feed high-water ``last_seq``, which is mirrored onto
        the row so a later re-claim can rebase the event sequence.
        Only the listed rows are touched: a row stamped with this
        ``server_id`` by a crashed predecessor (a server restarted
        under a stable identity) keeps its old deadline, expires on
        schedule, and becomes re-claimable instead of being kept
        fresh forever.
        """
        now = time.time() if now is None else now
        leases = (dict(jobs) if isinstance(jobs, dict)
                  else {job_id: None for job_id in jobs})

        def body(conn):
            owned = []
            for job_id, last_seq in leases.items():
                sets = "lease_deadline=?"
                values: list = [now + self.lease_s]
                if last_seq is not None:
                    sets += ", last_seq=?"
                    values.append(int(last_seq))
                if conn.execute(
                        f"UPDATE jobs SET {sets} WHERE id=? AND "
                        "server_id=? AND state=?",
                        (*values, job_id, server_id,
                         JobState.RUNNING.value)).rowcount:
                    owned.append(job_id)
            return owned

        return self._transaction(body)

    def release(self, server_id: str) -> int:
        """Re-queue every running job ``server_id`` owns (graceful
        shutdown: no reason to make the peers wait out the lease)."""

        def body(conn):
            return conn.execute(
                "UPDATE jobs SET state=?, server_id=NULL, "
                "lease_deadline=NULL WHERE server_id=? AND state=?",
                (JobState.QUEUED.value, server_id,
                 JobState.RUNNING.value)).rowcount

        return self._transaction(body)

    # -- ownership-guarded progress --------------------------------------

    def progress(self, job_id: str, server_id: str, *,
                 completed: int | None = None,
                 resumed: int | None = None,
                 total: int | None = None,
                 last_seq: int | None = None) -> bool:
        """Mirror live counters (and the event-feed high-water mark)
        onto the row so any server can answer status queries and a
        re-claim can rebase the feed; a no-op unless ``server_id``
        owns the job."""
        sets, values = [], []
        for column, value in (("completed", completed),
                              ("resumed", resumed), ("total", total),
                              ("last_seq", last_seq)):
            if value is not None:
                sets.append(f"{column}=?")
                values.append(int(value))
        if not sets:
            return False

        def body(conn):
            return conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE id=? AND "
                "server_id=? AND state=?",
                (*values, job_id, server_id,
                 JobState.RUNNING.value)).rowcount > 0

        return self._transaction(body)

    def finish(self, job_id: str, server_id: str, state: JobState, *,
               error: str | None = None, result: dict | None = None,
               completed: int | None = None, resumed: int | None = None,
               total: int | None = None,
               last_seq: int | None = None) -> bool:
        """Terminal transition, guarded by lease ownership.

        Returns ``False`` when ``server_id`` no longer owns the row
        (its lease expired and another server re-claimed the job) —
        the caller must abandon the work, not record it.
        """
        if state not in _TERMINAL:
            raise JobStateError(f"finish() needs a terminal state, "
                                f"got {state.value}")
        sets = ["state=?", "error=?", "result=?", "lease_deadline=NULL"]
        values: list = [state.value, error,
                        json.dumps(result) if result is not None else None]
        for column, value in (("completed", completed),
                              ("resumed", resumed), ("total", total),
                              ("last_seq", last_seq)):
            if value is not None:
                sets.append(f"{column}=?")
                values.append(int(value))

        def body(conn):
            return conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE id=? AND "
                "server_id=? AND state=?",
                (*values, job_id, server_id,
                 JobState.RUNNING.value)).rowcount > 0

        return self._transaction(body)

    def request_cancel(self, job_id: str) -> "str | None":
        """Flag a job for cancellation, wherever it runs.

        Returns ``"immediate"`` (was queued — cancelled on the spot),
        ``"cooperative"`` (running — its owner stops at the next chunk
        boundary), ``"noop"`` (already terminal), or ``None`` for an
        unknown id.
        """

        def body(conn):
            raw = conn.execute(
                "SELECT state FROM jobs WHERE id=?", (job_id,)).fetchone()
            if raw is None:
                return None
            state = raw[0]
            if state == JobState.QUEUED.value:
                conn.execute(
                    "UPDATE jobs SET state=?, cancel_requested=1, "
                    "server_id=NULL, lease_deadline=NULL WHERE id=?",
                    (JobState.CANCELLED.value, job_id))
                return "immediate"
            if state == JobState.RUNNING.value:
                conn.execute(
                    "UPDATE jobs SET cancel_requested=1 WHERE id=?",
                    (job_id,))
                return "cooperative"
            return "noop"

        return self._transaction(body)

    # -- lookup ----------------------------------------------------------

    def get(self, job_id: str) -> JobRow | None:
        with self._lock:
            raw = self._db().execute(
                f"SELECT {_ROW_COLUMNS} FROM jobs WHERE id=?",
                (job_id,)).fetchone()
        return _row(raw) if raw is not None else None

    def jobs(self) -> list[JobRow]:
        """Every job in the cluster, oldest first."""
        with self._lock:
            rows = self._db().execute(
                f"SELECT {_ROW_COLUMNS} FROM jobs ORDER BY n").fetchall()
        return [_row(raw) for raw in rows]

    def counts(self) -> dict[str, int]:
        with self._lock:
            rows = self._db().execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        return {state: count for state, count in rows}

    def active_keys(self) -> set[str]:
        """Content keys of queued/running jobs anywhere in the cluster
        (their journals must not be compacted under the writers)."""
        with self._lock:
            rows = self._db().execute(
                "SELECT key FROM jobs WHERE state IN (?, ?)",
                ACTIVE_STATES).fetchall()
        return {key for (key,) in rows}

    def checkpoint(self) -> dict[str, int]:
        """Fold the WAL back into the database (maintenance)."""
        with self._lock:
            self._db().execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return self.counts()
