"""Stdlib HTTP client for a :class:`~repro.serve.server.JobServer`.

``ServeClient`` is the programmatic face the CLI (``repro submit``,
``repro jobs``) and the tests use.  Plain calls ride one persistent
keep-alive connection per thread (reopened transparently when the
server closes it); :meth:`stream` follows a job's events live over the
server's SSE endpoint, reconnecting with ``Last-Event-ID`` after a
drop, with the old ``?since=`` poll loop kept as ``mode="poll"``.

    >>> client = ServeClient(port=8642)
    >>> job = client.submit("explore", circuits=["gcd"], budgets=[6, 7])
    >>> for event in client.stream(job["id"]):
    ...     print(event["type"])
    >>> client.job(job["id"])["state"]
    'done'
"""

from __future__ import annotations

import http.client
import json
import threading
import time

TERMINAL = ("done", "failed", "cancelled")

#: Reopen rather than reuse a keep-alive connection idle this long.
#: The server drops idle connections at 75 s; a POST racing that close
#: would fail after it was fully sent — exactly the failure that must
#: NOT be retried — so the client stays clear of the window.
MAX_CONN_IDLE_S = 60.0


class ServeError(RuntimeError):
    """An HTTP-level error response from the server."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"server returned {status}: "
                         f"{message or payload!r}")
        self.status = status
        self.payload = payload


class JobFailed(ServeError):
    """A waited-on job finished in ``failed`` state."""

    def __init__(self, snapshot: dict) -> None:
        RuntimeError.__init__(
            self, f"job {snapshot.get('id')} failed: "
                  f"{snapshot.get('error') or 'unknown error'}")
        self.status = 0
        self.payload = snapshot


class EventGapError(ServeError):
    """The server's bounded event ring aged events out before this
    client saw them (raised only when the caller asked to be strict)."""

    def __init__(self, job_id: str, dropped: int) -> None:
        RuntimeError.__init__(
            self, f"job {job_id}: {dropped} event(s) dropped before "
                  "they could be streamed")
        self.status = 0
        self.payload = {"job_id": job_id, "dropped": dropped}
        self.dropped = dropped


class ServeClient:
    """Thin JSON-over-HTTP client with per-thread keep-alive."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()

    # -- connection management -------------------------------------------

    def _conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        idle = time.monotonic() - getattr(self._local, "used_at", 0.0)
        if conn is not None and idle > MAX_CONN_IDLE_S:
            self.close()  # probably reaped server-side: don't race it
            conn = None
        if conn is None:
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=self.timeout)
            self._local.conn = conn
            self._local.used_at = time.monotonic()
        return conn

    def close(self) -> None:
        """Drop this thread's persistent connection (if any)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        payload = json.dumps(body) if body is not None else None
        for attempt in (0, 1):
            conn = self._conn()
            try:
                conn.request(method, path, body=payload, headers={
                    "Content-Type": "application/json"})
            except (http.client.HTTPException, ConnectionError, OSError):
                # The send itself failed, so no complete request
                # reached the server and a retry cannot double-apply
                # it — a keep-alive connection the server closed
                # between requests dies exactly here.
                self.close()
                if attempt:
                    raise
                continue
            try:
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                # The request was fully sent and may have been acted
                # on before the connection died; replaying it could
                # apply a POST twice, so only idempotent GETs retry
                # past this point.
                self.close()
                if attempt or method != "GET":
                    raise
                continue
            self._local.used_at = time.monotonic()
            if response.will_close:
                self.close()
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServeError(response.status, data)
            return data
        raise AssertionError("unreachable")

    # -- endpoints -------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def submit(self, kind: str, **params) -> dict:
        """Submit one job; returns its snapshot (which may be an
        already-running job when an identical request is in flight
        anywhere in the cluster)."""
        return self._request("POST", "/jobs",
                             {"kind": kind, "params": params})

    def job(self, job_id: str, since: int | None = None) -> dict:
        path = f"/jobs/{job_id}"
        if since is not None:
            path += f"?since={since}"
        return self._request("GET", path)

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def maintenance(self) -> dict:
        return self._request("POST", "/maintenance")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- following jobs --------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05, raise_on_failure: bool = True) -> dict:
        """Block until the job reaches a terminal state; returns the
        final snapshot.  Works against any server in the cluster."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in TERMINAL:
                if snapshot["state"] == "failed" and raise_on_failure:
                    raise JobFailed(snapshot)
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} after "
                    f"{timeout:.0f}s")
            time.sleep(poll)

    def stream(self, job_id: str, timeout: float = 300.0,
               poll: float = 0.05, mode: str = "sse", since: int = 0,
               raise_on_gap: bool = False):
        """Yield the job's events incrementally until it terminates.

        ``mode="sse"`` (the default) holds the server's
        ``/jobs/<id>/events`` stream open and yields events the moment
        the server pushes them, resuming with ``Last-Event-ID`` if the
        connection drops.  ``mode="poll"`` is the legacy ``?since=``
        loop.  Either way events carry a monotonic ``seq`` and are
        never yielded twice; events that aged out of the server's
        bounded ring before they could be seen surface as an explicit
        ``{"type": "gap", "dropped": n}`` event — or as
        :class:`EventGapError` with ``raise_on_gap=True`` — instead of
        being silently skipped.
        """
        if mode == "sse":
            return self._stream_sse(job_id, timeout, since, raise_on_gap)
        if mode == "poll":
            return self._stream_poll(job_id, timeout, poll, since,
                                     raise_on_gap)
        raise ValueError(f"mode must be 'sse' or 'poll', got {mode!r}")

    def _stream_poll(self, job_id: str, timeout: float, poll: float,
                     since: int, raise_on_gap: bool):
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id, since=since)
            events = snapshot.get("events", ())
            if events and events[0]["seq"] > since + 1:
                dropped = events[0]["seq"] - since - 1
                if raise_on_gap:
                    raise EventGapError(job_id, dropped)
                yield {"type": "gap", "dropped": dropped}
            for event in events:
                since = max(since, event["seq"])
                yield event
            if snapshot["state"] in TERMINAL \
                    and snapshot.get("last_seq", 0) <= since:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still streaming after {timeout:.0f}s")
            time.sleep(poll)

    def _stream_sse(self, job_id: str, timeout: float, since: int,
                    raise_on_gap: bool):
        deadline = time.monotonic() + timeout
        while True:
            conn = http.client.HTTPConnection(self.host, self.port,
                                              timeout=self.timeout)
            terminal = False
            try:
                headers = {"Accept": "text/event-stream"}
                if since:
                    headers["Last-Event-ID"] = str(since)
                conn.request("GET", f"/jobs/{job_id}/events",
                             headers=headers)
                response = conn.getresponse()
                if response.status >= 400:
                    raw = response.read()
                    try:
                        data = json.loads(raw) if raw else {}
                    except json.JSONDecodeError:
                        data = {"error": raw.decode("utf-8", "replace")}
                    raise ServeError(response.status, data)
                for event, eid in self._parse_sse(response, deadline,
                                                  job_id):
                    if event.get("type") == "gap" and raise_on_gap:
                        raise EventGapError(job_id,
                                            int(event.get("dropped", 0)))
                    if eid is not None:
                        since = max(since, eid)
                    yield event
                    if event.get("type") == "state" \
                            and event.get("state") in TERMINAL:
                        terminal = True
            finally:
                conn.close()
            if terminal:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still streaming after {timeout:.0f}s")
            time.sleep(0.2)  # dropped mid-stream: resume via Last-Event-ID

    @staticmethod
    def _parse_sse(response, deadline: float, job_id: str):
        """Decode ``id:``/``event:``/``data:`` frames off one response;
        ends (for the caller to reconnect) when the connection drops."""
        eid: int | None = None
        etype: str | None = None
        data_lines: list[str] = []
        while True:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still streaming past its deadline")
            try:
                line = response.readline()
            except (http.client.HTTPException, ConnectionError, OSError):
                return
            if not line:
                return  # server closed the stream
            text = line.decode("utf-8", "replace").rstrip("\r\n")
            if not text:
                if data_lines:
                    try:
                        payload = json.loads("\n".join(data_lines))
                    except json.JSONDecodeError:
                        payload = None
                    if isinstance(payload, dict):
                        if etype and "type" not in payload:
                            payload["type"] = etype
                        yield payload, eid
                eid, etype, data_lines = None, None, []
                continue
            if text.startswith(":"):
                continue  # keep-alive comment
            name, _, value = text.partition(":")
            if value.startswith(" "):
                value = value[1:]
            if name == "id":
                try:
                    eid = int(value)
                except ValueError:
                    eid = None
            elif name == "event":
                etype = value
            elif name == "data":
                data_lines.append(value)
