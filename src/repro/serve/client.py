"""Stdlib HTTP client for a :class:`~repro.serve.server.JobServer`.

``ServeClient`` is the programmatic face the CLI (``repro submit``,
``repro jobs``) and the tests use; each call is one short-lived
``http.client`` request, so any number of clients can hammer one server
concurrently with no shared connection state.

    >>> client = ServeClient(port=8642)
    >>> job = client.submit("explore", circuits=["gcd"], budgets=[6, 7])
    >>> for event in client.stream(job["id"]):
    ...     print(event["type"])
    >>> client.job(job["id"])["state"]
    'done'
"""

from __future__ import annotations

import http.client
import json
import time


class ServeError(RuntimeError):
    """An HTTP-level error response from the server."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"server returned {status}: "
                         f"{message or payload!r}")
        self.status = status
        self.payload = payload


class JobFailed(ServeError):
    """A waited-on job finished in ``failed`` state."""

    def __init__(self, snapshot: dict) -> None:
        RuntimeError.__init__(
            self, f"job {snapshot.get('id')} failed: "
                  f"{snapshot.get('error') or 'unknown error'}")
        self.status = 0
        self.payload = snapshot


class ServeClient:
    """Thin JSON-over-HTTP client; one request per call."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(method, path, body=payload, headers={
                "Content-Type": "application/json",
                "Connection": "close"})
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServeError(response.status, data)
            return data
        finally:
            conn.close()

    # -- endpoints -------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def submit(self, kind: str, **params) -> dict:
        """Submit one job; returns its snapshot (which may be an
        already-running job when an identical request is in flight)."""
        return self._request("POST", "/jobs",
                             {"kind": kind, "params": params})

    def job(self, job_id: str, since: int | None = None) -> dict:
        path = f"/jobs/{job_id}"
        if since is not None:
            path += f"?since={since}"
        return self._request("GET", path)

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def maintenance(self) -> dict:
        return self._request("POST", "/maintenance")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- polling conveniences --------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05, raise_on_failure: bool = True) -> dict:
        """Block until the job reaches a terminal state; returns the
        final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                if snapshot["state"] == "failed" and raise_on_failure:
                    raise JobFailed(snapshot)
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} after "
                    f"{timeout:.0f}s")
            time.sleep(poll)

    def stream(self, job_id: str, timeout: float = 300.0,
               poll: float = 0.05):
        """Yield the job's events incrementally until it terminates.

        Each event dict carries a monotonic ``seq``; polling picks up
        exactly the events past the last seen one, so no event is
        yielded twice.
        """
        deadline = time.monotonic() + timeout
        since = 0
        while True:
            snapshot = self.job(job_id, since=since)
            for event in snapshot.get("events", ()):
                since = max(since, event["seq"])
                yield event
            if snapshot["state"] in ("done", "failed", "cancelled") \
                    and snapshot["last_seq"] <= since:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still streaming after {timeout:.0f}s")
            time.sleep(poll)
