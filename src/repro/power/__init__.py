"""Power models: paper weights, static expectation, simulated activity."""

from repro.power.profile import profile_selects
from repro.power.simulated import (
    MonteCarloPower,
    PowerComparison,
    SimulatedPower,
    compare_designs,
    measure_power,
)
from repro.power.static import (
    SelectModel,
    StaticPowerReport,
    all_execution_probabilities,
    execution_probability,
    expected_op_counts,
    static_power,
)
from repro.power.weights import PAPER_WEIGHTS, PowerWeights

__all__ = [
    "MonteCarloPower",
    "PAPER_WEIGHTS",
    "PowerComparison",
    "PowerWeights",
    "SimulatedPower",
    "compare_designs",
    "measure_power",
    "profile_selects",
    "SelectModel",
    "StaticPowerReport",
    "all_execution_probabilities",
    "execution_probability",
    "expected_op_counts",
    "static_power",
]
