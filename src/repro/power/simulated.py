"""Simulation-based power estimation (paper Table III).

The paper synthesized both designs to gates and measured them with
Synopsys DesignPower.  Our stand-in: run the cycle-accurate RTL simulator
on random input vectors for the original and power-managed designs and
convert switching activity into weighted energy:

* execution units: ``class weight x toggled-bit fraction`` per activation
  (a shut-down unit sees zero toggles and is charged nothing);
* registers: a per-toggled-bit charge;
* controller: a per-literal-per-cycle charge, so the power-managed
  controller — which the paper notes is "slightly more complex" — eats
  part of the datapath savings exactly as Table III shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.ops import ResourceClass
from repro.power.weights import PowerWeights
from repro.rtl.design import SynthesizedDesign
from repro.sim.simulator import RTLSimulator
from repro.sim.vectors import random_vectors

# Energy per toggled register bit, relative to the paper's unit weights.
REGISTER_BIT_ENERGY = 0.10
# Energy per controller literal per cycle.
CONTROLLER_LITERAL_ENERGY = 0.012


@dataclass(frozen=True)
class SimulatedPower:
    """Average energy per processed sample, by component."""

    fu_energy: dict[ResourceClass, float]
    register_energy: float
    controller_energy: float
    samples: int

    @property
    def datapath(self) -> float:
        return sum(self.fu_energy.values()) + self.register_energy

    @property
    def total(self) -> float:
        return self.datapath + self.controller_energy


def measure_power(
    design: SynthesizedDesign,
    vectors: list[dict[str, int]] | None = None,
    n_vectors: int = 256,
    seed: int = 1996,
    power_management: bool = True,
    weights: PowerWeights = PowerWeights(),
) -> SimulatedPower:
    """Average per-sample energy of ``design`` over random vectors."""
    graph = design.graph
    if vectors is None:
        vectors = random_vectors(graph, n_vectors, width=design.width,
                                 seed=seed)
    simulator = RTLSimulator(design, power_management=power_management)
    _, activity = simulator.run_many(vectors)
    samples = len(vectors)

    fu_energy: dict[ResourceClass, float] = {}
    for cls, toggles in activity.fu_input_toggles.items():
        out = activity.fu_output_toggles.get(cls, 0)
        # Toggled fraction of the unit's 3 datapath-width interfaces.
        activity_factor = (toggles + out) / (3.0 * design.width)
        fu_energy[cls] = weights.of(cls) * activity_factor / samples

    register_energy = REGISTER_BIT_ENERGY * activity.register_toggles / samples
    controller_energy = (
        CONTROLLER_LITERAL_ENERGY * activity.controller_literals / samples
    )
    return SimulatedPower(
        fu_energy=fu_energy,
        register_energy=register_energy,
        controller_energy=controller_energy,
        samples=samples,
    )


@dataclass(frozen=True)
class PowerComparison:
    """Table III row: original vs power-managed design."""

    orig: SimulatedPower
    managed: SimulatedPower
    area_orig: int
    area_new: int

    @property
    def area_increase(self) -> float:
        return self.area_new / self.area_orig if self.area_orig else 0.0

    @property
    def reduction_pct(self) -> float:
        if self.orig.total == 0:
            return 0.0
        return 100.0 * (self.orig.total - self.managed.total) / self.orig.total

    @property
    def datapath_reduction_pct(self) -> float:
        if self.orig.datapath == 0:
            return 0.0
        return 100.0 * (self.orig.datapath - self.managed.datapath) \
            / self.orig.datapath


def compare_designs(
    orig: SynthesizedDesign,
    managed: SynthesizedDesign,
    n_vectors: int = 256,
    seed: int = 1996,
    weights: PowerWeights = PowerWeights(),
) -> PowerComparison:
    """Simulate both designs on the *same* vector set and compare."""
    vectors = random_vectors(orig.graph, n_vectors, width=orig.width,
                             seed=seed)
    power_orig = measure_power(orig, vectors=vectors,
                               power_management=False, weights=weights)
    power_new = measure_power(managed, vectors=vectors,
                              power_management=True, weights=weights)
    return PowerComparison(
        orig=power_orig,
        managed=power_new,
        area_orig=orig.area().total,
        area_new=managed.area().total,
    )
