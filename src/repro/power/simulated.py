"""Simulation-based power estimation (paper Table III).

The paper synthesized both designs to gates and measured them with
Synopsys DesignPower.  Our stand-in: run the cycle-accurate simulation on
random input vectors for the original and power-managed designs and
convert switching activity into weighted energy:

* execution units: ``class weight x toggled-bit fraction`` per activation
  (a shut-down unit sees zero toggles and is charged nothing);
* registers: a per-toggled-bit charge;
* controller: a per-literal-per-cycle charge, so the power-managed
  controller — which the paper notes is "slightly more complex" — eats
  part of the datapath savings exactly as Table III shows.

Simulation runs on a batch engine selected by ``backend=`` — the
vectorized NumPy backend by default where available, else the
:class:`~repro.sim.engine.CompiledEngine`; both are bit-identical to the
interpreted :class:`~repro.sim.simulator.RTLSimulator` oracle, so every
estimate below is backend-independent at a fixed seed.  Two estimation
modes:

* fixed-sample (``vectors``/``n_vectors``): one batch, exact legacy
  numbers — what the golden Table III regression pins;
* Monte Carlo (``rel_tol=...``): draw vector blocks from a stream until
  the per-sample energy estimate's confidence interval is tighter than
  ``rel_tol`` of the mean, and report the CI achieved.  On the
  vectorized backend every block is materialized as a pre-generated
  ``(block, n_inputs)`` array before simulation, so the hot loop is
  array code end to end.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable

from repro.ir.ops import ResourceClass
from repro.power.weights import PowerWeights
from repro.rtl.design import SynthesizedDesign
from repro.sim.activity import ActivityCounter
from repro.sim.backend import create_engine
from repro.sim.vectors import (
    iter_random_vectors,
    random_vectors,
    vectors_to_array,
)

# Energy per toggled register bit, relative to the paper's unit weights.
REGISTER_BIT_ENERGY = 0.10
# Energy per controller literal per cycle.
CONTROLLER_LITERAL_ENERGY = 0.012


@dataclass(frozen=True)
class SimulatedPower:
    """Average energy per processed sample, by component.

    ``chosen_backend`` records which simulation engine actually produced
    the numbers (``"compiled"``, ``"vectorized"`` or ``"packed"`` —
    ``auto`` and ``packed`` requests may resolve differently).  It is
    observability metadata, excluded from equality: reports from
    different backends at the same seed stay equal, which is exactly the
    bit-identity guarantee the parity tests pin down."""

    fu_energy: dict[ResourceClass, float]
    register_energy: float
    controller_energy: float
    samples: int
    chosen_backend: str | None = field(default=None, compare=False)

    @property
    def datapath(self) -> float:
        return sum(self.fu_energy.values()) + self.register_energy

    @property
    def total(self) -> float:
        return self.datapath + self.controller_energy


@dataclass(frozen=True)
class MonteCarloPower(SimulatedPower):
    """A :class:`SimulatedPower` with its convergence diagnostics.

    ``ci_halfwidth`` is the half-width of the ``confidence`` interval on
    the per-sample total energy, estimated over the means of the
    ``blocks`` full-size blocks, using a Student-t quantile (partial
    trailing blocks of a finite stream feed the estimate but not the
    statistics) — ``math.inf`` when fewer than the minimum four full
    blocks ran, so no interval was computed;
    ``converged`` is False when ``max_vectors`` was hit (or the vector
    stream ran dry) before the requested ``rel_tol`` was reached.
    """

    rel_tol: float = 0.0
    confidence: float = 0.95
    ci_halfwidth: float = 0.0
    blocks: int = 0
    converged: bool = True

    @property
    def rel_ci(self) -> float:
        """CI half-width as a fraction of the total energy estimate."""
        return self.ci_halfwidth / abs(self.total) if self.total else 0.0


# Full blocks required before the Monte Carlo loop may declare
# convergence; below this the CI on the block means is meaningless.
_MIN_BLOCKS = 4


def _t_quantile(p: float, df: int) -> float:
    """Student-t quantile via the Cornish-Fisher expansion around the
    normal quantile — accurate to <1% for ``df >= 3``, the smallest the
    estimator ever uses (``_MIN_BLOCKS - 1``).  Using the normal z here
    would be badly anti-conservative at small block counts."""
    z = statistics.NormalDist().inv_cdf(p)
    g1 = (z ** 3 + z) / 4.0
    g2 = (5 * z ** 5 + 16 * z ** 3 + 3 * z) / 96.0
    g3 = (3 * z ** 7 + 19 * z ** 5 + 17 * z ** 3 - 15 * z) / 384.0
    return z + g1 / df + g2 / df ** 2 + g3 / df ** 3


def _power_from_activity(activity: ActivityCounter, samples: int,
                         width: int, weights: PowerWeights,
                         ) -> tuple[dict[ResourceClass, float], float, float]:
    """Component energies per sample from merged switching activity."""
    fu_energy: dict[ResourceClass, float] = {}
    for cls, toggles in activity.fu_input_toggles.items():
        out = activity.fu_output_toggles.get(cls, 0)
        # Toggled fraction of the unit's 3 datapath-width interfaces.
        activity_factor = (toggles + out) / (3.0 * width)
        fu_energy[cls] = weights.of(cls) * activity_factor / samples
    register_energy = REGISTER_BIT_ENERGY * activity.register_toggles / samples
    controller_energy = (
        CONTROLLER_LITERAL_ENERGY * activity.controller_literals / samples
    )
    return fu_energy, register_energy, controller_energy


def _run_block(engine, block) -> object:
    """Run one vector block on ``engine`` the fastest way it supports.

    Lists of vector dicts go to the vectorized backend as a pre-packed
    input matrix; ``(batch, n_inputs)`` arrays go to the compiled
    backend as reconstructed dicts (slow path, for API symmetry).
    """
    run_array = getattr(engine, "run_array", None)
    if isinstance(block, list):
        if run_array is not None:
            return run_array(vectors_to_array(block, engine.input_names))
        return engine.run_batch(block)
    if run_array is not None:
        return run_array(block)
    import numpy as np

    if not np.issubdtype(np.asarray(block).dtype, np.integer):
        raise TypeError(
            f"input matrix must have an integer dtype, "
            f"got {np.asarray(block).dtype}")
    names = engine.input_names
    if block.ndim != 2 or block.shape[1] != len(names):
        raise ValueError(
            f"expected a (batch, {len(names)}) input matrix, "
            f"got shape {block.shape}")
    return engine.run_batch([dict(zip(names, row))
                             for row in block.tolist()])


def _engine_name(engine) -> str | None:
    """Backend name a power report should carry: the resolution recorded
    by ``create_engine``, or the engine's own class tag for prebuilt
    engines passed in directly."""
    return getattr(engine, "chosen_backend", None) \
        or getattr(engine, "backend", None)


def measure_power(
    design: SynthesizedDesign,
    vectors: Iterable[dict[str, int]] | None = None,
    n_vectors: int = 256,
    seed: int = 1996,
    power_management: bool = True,
    weights: PowerWeights | None = None,
    rel_tol: float | None = None,
    confidence: float = 0.95,
    block_size: int = 64,
    max_vectors: int = 1 << 16,
    engine=None,
    backend: str = "auto",
) -> SimulatedPower:
    """Average per-sample energy of ``design``.

    Fixed mode (``rel_tol=None``): simulate ``vectors`` (or ``n_vectors``
    seeded random ones) in one batch.  Monte Carlo mode (``rel_tol``
    set): draw ``block_size`` vectors at a time — from ``vectors`` if
    given (any iterable of dicts or a pre-generated ``(n, n_inputs)``
    input matrix), else from an endless seeded random stream — until the
    ``confidence`` interval of the per-sample energy is within
    ``rel_tol`` of the mean or ``max_vectors`` have been simulated;
    returns :class:`MonteCarloPower`.

    ``backend`` selects the batch engine (``"compiled"``,
    ``"vectorized"`` or ``"auto"``, see :func:`repro.sim.create_engine`);
    the backends are bit-identical, so reports are byte-equal across
    them at the same seed.  ``engine`` reuses a prebuilt engine instead
    (its persistent state included); by default a cold-state engine is
    built, which reproduces the legacy simulator's numbers exactly.
    """
    weights = weights if weights is not None else PowerWeights()
    if engine is None:
        engine = create_engine(design, power_management=power_management,
                               backend=backend)
    elif engine.design is not design \
            or engine.power_management != power_management:
        raise ValueError(
            "prebuilt engine does not match: it was compiled for "
            f"design {engine.design.name!r} with power_management="
            f"{engine.power_management}, but this call asked for "
            f"{design.name!r} with power_management={power_management}")
    is_matrix = vectors is not None and hasattr(vectors, "ndim")
    if rel_tol is None:
        if vectors is None:
            vectors = random_vectors(design.graph, n_vectors,
                                     width=design.width, seed=seed)
        batch = _run_block(engine, vectors) if is_matrix \
            else _run_block(engine, list(vectors))
        fu, reg, ctrl = _power_from_activity(
            batch.activity, batch.samples, design.width, weights)
        return SimulatedPower(fu_energy=fu, register_energy=reg,
                              controller_energy=ctrl, samples=batch.samples,
                              chosen_backend=_engine_name(engine))

    if rel_tol <= 0.0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    if is_matrix:
        matrix, offset = vectors, 0
        stream = None
    else:
        stream = iter(vectors) if vectors is not None \
            else iter_random_vectors(design.graph, None, width=design.width,
                                     seed=seed)
    total = ActivityCounter(width=design.width)
    block_means: list[float] = []
    samples = 0
    halfwidth = math.inf
    converged = False
    while samples < max_vectors:
        # max_vectors is a hard simulation budget: clamp the last block.
        take = min(block_size, max_vectors - samples)
        if stream is None:
            block = matrix[offset:offset + take]
            offset += block.shape[0]
            if block.shape[0] == 0:
                break  # finite matrix ran dry
        else:
            block = list(islice(stream, take))
            if not block:
                break  # finite stream ran dry
        result = _run_block(engine, block)
        total.merge(result.activity)
        samples += result.samples
        if result.samples == block_size:
            # Partial trailing blocks (finite stream ran short) still
            # count toward the energy estimate but are excluded from the
            # batch-means statistics: weighting a short block equally
            # would bias the mean and SEM the CI is computed from.
            fu, reg, ctrl = _power_from_activity(
                result.activity, result.samples, design.width, weights)
            block_means.append(sum(fu.values()) + reg + ctrl)
        if len(block_means) >= _MIN_BLOCKS:
            mean = statistics.fmean(block_means)
            sem = statistics.stdev(block_means) / math.sqrt(len(block_means))
            halfwidth = sem * _t_quantile(0.5 + confidence / 2.0,
                                          len(block_means) - 1)
            if halfwidth <= rel_tol * abs(mean):
                converged = True
                break
    if samples == 0:
        raise ValueError("vector stream produced no vectors")
    fu, reg, ctrl = _power_from_activity(total, samples, design.width,
                                         weights)
    return MonteCarloPower(
        fu_energy=fu, register_energy=reg, controller_energy=ctrl,
        samples=samples, chosen_backend=_engine_name(engine),
        rel_tol=rel_tol, confidence=confidence,
        ci_halfwidth=halfwidth, blocks=len(block_means),
        converged=converged)


@dataclass(frozen=True)
class PowerComparison:
    """Table III row: original vs power-managed design."""

    orig: SimulatedPower
    managed: SimulatedPower
    area_orig: int
    area_new: int

    @property
    def area_increase(self) -> float:
        return self.area_new / self.area_orig if self.area_orig else 0.0

    @property
    def reduction_pct(self) -> float:
        if self.orig.total == 0:
            return 0.0
        return 100.0 * (self.orig.total - self.managed.total) / self.orig.total

    @property
    def datapath_reduction_pct(self) -> float:
        if self.orig.datapath == 0:
            return 0.0
        return 100.0 * (self.orig.datapath - self.managed.datapath) \
            / self.orig.datapath


def compare_designs(
    orig: SynthesizedDesign,
    managed: SynthesizedDesign,
    n_vectors: int = 256,
    seed: int = 1996,
    weights: PowerWeights | None = None,
    backend: str = "auto",
) -> PowerComparison:
    """Simulate both designs on the *same* vector set and compare."""
    weights = weights if weights is not None else PowerWeights()
    vectors = random_vectors(orig.graph, n_vectors, width=orig.width,
                             seed=seed)
    power_orig = measure_power(orig, vectors=vectors,
                               power_management=False, weights=weights,
                               backend=backend)
    power_new = measure_power(managed, vectors=vectors,
                              power_management=True, weights=weights,
                              backend=backend)
    return PowerComparison(
        orig=power_orig,
        managed=power_new,
        area_orig=orig.area().total,
        area_new=managed.area().total,
    )
