"""Profile-driven select probabilities.

The paper's Table II assumes every multiplexor picks each input with
probability 1/2.  Real workloads are biased (e.g. GCD's done-test is almost
always 'not done'), which is why Table III's simulated savings differ from
Table II's expectations.  ``profile_selects`` closes the loop: evaluate the
circuit on a workload, measure how often each select driver is true, and
return a :class:`~repro.power.static.SelectModel` that makes the static
model predict the simulated behaviour.
"""

from __future__ import annotations

from repro.ir.graph import CDFG
from repro.power.static import SelectModel
from repro.sim.reference import evaluate_all


def profile_selects(graph: CDFG, vectors: list[dict[str, int]],
                    width: int = 8) -> SelectModel:
    """Measured P(select == 1) for every mux select driver in ``graph``."""
    if not vectors:
        raise ValueError("need at least one vector to profile")
    drivers = {m.select_operand for m in graph.muxes()}
    ones = {d: 0 for d in drivers}
    for vector in vectors:
        values = evaluate_all(graph, vector, width=width)
        for driver in drivers:
            if values[driver]:
                ones[driver] += 1
    n = len(vectors)
    return SelectModel(
        default=0.5,
        per_driver={d: count / n for d, count in ones.items()},
    )
