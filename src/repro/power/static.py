"""Static expected-activation power model (paper Table II).

After the PM pass, each operation carries guards ``(mux, side)``: it
executes only when every guarding multiplexor selects the required side.
Assuming each *distinct select signal* is 1 with probability ``p`` (paper:
uniform, p = 0.5) and distinct signals are independent, the execution
probability of a node is the product over its distinct (driver, value)
requirements — two guards sharing the same select driver count once, and
contradictory requirements on the same driver make the node dead (P = 0).

This reproduces the paper's Table II columns: average number of executions
per operation class and the datapath power reduction percentage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pm_pass import PMResult
from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.power.weights import PowerWeights


@dataclass(frozen=True)
class SelectModel:
    """Probability that each select signal evaluates to 1.

    ``default`` applies to every driver not in ``per_driver`` (keyed by the
    select *driver node id*).  The paper uses 0.5 everywhere; profiles from
    the RTL simulator can override per driver.
    """

    default: float = 0.5
    per_driver: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for p in (self.default, *self.per_driver.values()):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"select probability {p} outside [0, 1]")

    def prob_one(self, driver: int) -> float:
        return self.per_driver.get(driver, self.default)


def execution_probability(
    result: PMResult,
    node_id: int,
    selects: SelectModel = SelectModel(),
) -> float:
    """P(node executes) under the PM result's guards."""
    graph = result.graph
    guards = result.gating.get(node_id, ())
    required: dict[int, int] = {}
    for mux_id, side in guards:
        driver = graph.node(mux_id).select_operand
        if driver in required and required[driver] != side:
            return 0.0  # contradictory requirements: never needed
        required[driver] = side
    prob = 1.0
    for driver, side in required.items():
        p1 = selects.prob_one(driver)
        prob *= p1 if side == 1 else 1.0 - p1
    return prob


def all_execution_probabilities(
    result: PMResult, selects: SelectModel = SelectModel()
) -> dict[int, float]:
    """Execution probability of every schedulable operation."""
    return {
        node.nid: execution_probability(result, node.nid, selects)
        for node in result.graph.operations()
    }


def expected_op_counts(
    result: PMResult, selects: SelectModel = SelectModel()
) -> dict[ResourceClass, float]:
    """Table II columns 5-9: average executions per operation class."""
    counts: dict[ResourceClass, float] = {}
    probs = all_execution_probabilities(result, selects)
    for node in result.graph.operations():
        cls = node.resource
        counts[cls] = counts.get(cls, 0.0) + probs[node.nid]
    return counts


@dataclass(frozen=True)
class StaticPowerReport:
    """Datapath power with and without power management (weighted)."""

    baseline: float
    managed: float

    @property
    def reduction_pct(self) -> float:
        """Table II last column."""
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.baseline - self.managed) / self.baseline


def static_power(
    result: PMResult,
    weights: PowerWeights = PowerWeights(),
    selects: SelectModel = SelectModel(),
) -> StaticPowerReport:
    """Expected weighted datapath power per computation, vs the baseline
    where every operation always executes."""
    graph: CDFG = result.graph
    baseline = weights.total(graph)
    probs = all_execution_probabilities(result, selects)
    managed = sum(
        weights.of(node.resource) * probs[node.nid]
        for node in graph.operations()
    )
    return StaticPowerReport(baseline=baseline, managed=managed)
