"""Relative power weights of execution units.

The paper obtained these "using timing simulation with random input
vectors" on an 8-bit datapath: MUX:1, COMP:4, +:3, -:3, *:20.  All power
numbers in Table II are relative to these weights, so we adopt them as the
default model and let users recalibrate (e.g. from our own RTL simulator's
switching counts) via a custom ``PowerWeights``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass

PAPER_WEIGHTS: dict[ResourceClass, float] = {
    ResourceClass.MUX: 1.0,
    ResourceClass.COMP: 4.0,
    ResourceClass.ADD: 3.0,
    ResourceClass.SUB: 3.0,
    ResourceClass.MUL: 20.0,
    ResourceClass.LOGIC: 4.0,
}


@dataclass(frozen=True)
class PowerWeights:
    """Per-execution of one operation on a unit of each class."""

    per_class: dict[ResourceClass, float] = field(
        default_factory=lambda: dict(PAPER_WEIGHTS))

    def of(self, cls: ResourceClass) -> float:
        try:
            return self.per_class[cls]
        except KeyError:
            raise KeyError(f"no power weight for resource class {cls}") from None

    def of_node(self, graph: CDFG, nid: int) -> float:
        return self.of(graph.node(nid).resource)

    def total(self, graph: CDFG) -> float:
        """Weighted cost of executing every operation once (the paper's
        'without power management all operations are always executed')."""
        return sum(self.of(node.resource) for node in graph.operations())
