"""Exact time-constrained, resource-minimizing scheduling (branch & bound).

A reference implementation for small graphs: enumerates start-step
assignments within each op's [ASAP, ALAP] window in topological order,
pruning on (a) precedence violations, (b) a running peak-usage cost bound,
and (c) a memoized admissible lower bound per search depth — for every
suffix of unplaced ops, each resource class must sustain at least
``ceil(occupied cells / window span)`` concurrent units, so a branch is
cut as soon as ``cost(max(current peaks, suffix bound)) >= best``.  The
incumbent is seeded with the greedy ``minimize_resources`` schedule, so
the search only ever explores strictly-improving branches (it certifies
the heuristic instead of rediscovering it).  Still exponential in the
worst case, but the paper's largest benchmark (cordic, 152 ops) now
finishes instead of hitting the node limit — intended to certify the
heuristics (`minimize_resources`, force-directed) on the paper's
benchmarks and in property tests, not for production use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.sched.resources import Allocation, UNIT_COST
from repro.sched.schedule import Schedule
from repro.sched.timing import TimingFrame


@dataclass(frozen=True)
class ExactResult:
    schedule: Schedule
    allocation: Allocation
    explored: int  # search nodes visited


def _suffix_bounds(graph: CDFG, ops: list[int], frame: TimingFrame,
                   ) -> list[dict[ResourceClass, int]]:
    """``bounds[i]``: admissible per-class peak lower bound for ``ops[i:]``.

    Computed once (memoized over the search depth): the unplaced suffix
    ops of one class must fit ``sum(latencies)`` occupancy cells into the
    union of their static windows, so the peak is at least the ceiling of
    cells over span.  Static windows are supersets of the dynamically
    feasible ones, which keeps the bound admissible.
    """
    bounds: list[dict[ResourceClass, int]] = [{} for _ in range(len(ops) + 1)]
    cells: dict[ResourceClass, int] = {}
    lo: dict[ResourceClass, int] = {}
    hi: dict[ResourceClass, int] = {}
    for i in range(len(ops) - 1, -1, -1):
        node = graph.node(ops[i])
        cls = node.resource
        cells[cls] = cells.get(cls, 0) + node.latency
        lo[cls] = min(lo.get(cls, frame.asap[ops[i]]), frame.asap[ops[i]])
        last = frame.alap[ops[i]] + node.latency
        hi[cls] = max(hi.get(cls, last), last)
        bounds[i] = {
            c: -(-cells[c] // max(hi[c] - lo[c], 1)) for c in cells
        }
    return bounds


def _seed_incumbent(graph: CDFG, n_steps: int,
                    ) -> tuple[float, dict[int, int]]:
    """Greedy incumbent so the search starts with a tight upper bound."""
    from repro.sched.minimize import minimize_resources

    try:
        found = minimize_resources(graph, n_steps)
    except Exception:  # pragma: no cover - defensive: search still works
        return float("inf"), {}
    assignment = {
        nid: found.schedule.step_of(nid)
        for nid in graph.topological_order()
        if graph.node(nid).is_schedulable
    }
    return found.allocation.cost(), assignment


def exact_minimum_schedule(graph: CDFG, n_steps: int,
                           node_limit: int = 200_000) -> ExactResult:
    """Provably minimum-cost allocation schedule for ``graph``.

    Raises ``InfeasibleScheduleError`` via TimingFrame when ``n_steps`` is
    below the critical path, and ``RuntimeError`` when the search exceeds
    ``node_limit`` nodes (graph too large for exact search).
    """
    frame = TimingFrame.compute(graph, n_steps)
    ops = [nid for nid in graph.topological_order()
           if graph.node(nid).is_schedulable]
    suffix_bounds = _suffix_bounds(graph, ops, frame)

    seed_cost, seed_assignment = _seed_incumbent(graph, n_steps)
    best_cost: list[float] = [seed_cost]
    best_assignment: dict[int, int] = dict(seed_assignment)
    found = [seed_cost != float("inf")]
    explored = [0]

    # usage[(slot, class)] running occupancy; peak[class] running max.
    usage: dict[tuple[int, ResourceClass], int] = {}
    peak: dict[ResourceClass, int] = {}

    def bound_of(index: int) -> int:
        """Admissible cost bound: current peaks joined with the memoized
        suffix requirement of the still-unplaced ops."""
        suffix = suffix_bounds[index]
        total = 0
        for cls, floor in suffix.items():
            total += UNIT_COST[cls] * max(floor, peak.get(cls, 0))
        for cls, n in peak.items():
            if cls not in suffix:
                total += UNIT_COST[cls] * n
        return total

    assignment: dict[int, int] = {}

    def available(nid: int) -> int:
        """Step the value of (possibly zero-latency) ``nid`` is ready."""
        node = graph.node(nid)
        if node.is_schedulable:
            return assignment[nid] + node.latency
        preds = graph.preds(nid)
        return max((available(p) for p in preds), default=0)

    def earliest(nid: int) -> int:
        early = frame.asap[nid]
        for pred in graph.preds(nid):
            early = max(early, available(pred))
        return early

    def search(index: int) -> None:
        explored[0] += 1
        if explored[0] > node_limit:
            raise RuntimeError(
                f"exact search exceeded {node_limit} nodes; "
                "graph too large for exact scheduling")
        if bound_of(index) >= best_cost[0]:
            return  # the partial cost already meets the incumbent
        if index == len(ops):
            best_cost[0] = sum(UNIT_COST[c] * n for c, n in peak.items())
            best_assignment.clear()
            best_assignment.update(assignment)
            found[0] = True
            return
        nid = ops[index]
        node = graph.node(nid)
        for step in range(earliest(nid), frame.alap[nid] + 1):
            # Occupy.
            touched: list[tuple[int, ResourceClass]] = []
            peak_backup = peak.get(node.resource, 0)
            for s in range(step, step + node.latency):
                key = (s, node.resource)
                usage[key] = usage.get(key, 0) + 1
                touched.append(key)
                if usage[key] > peak.get(node.resource, 0):
                    peak[node.resource] = usage[key]
            assignment[nid] = step
            search(index + 1)
            # Release.
            del assignment[nid]
            for key in touched:
                usage[key] -= 1
            peak[node.resource] = peak_backup

    search(0)
    assert found[0], "TimingFrame guaranteed at least one schedule"

    start = dict(best_assignment)
    for nid in graph.topological_order():
        if nid in start:
            continue
        preds = graph.preds(nid)
        start[nid] = max(
            (start[p] + graph.node(p).latency for p in preds), default=0)
    schedule = Schedule(graph=graph, n_steps=n_steps, start=start)
    schedule.verify()
    return ExactResult(schedule=schedule,
                       allocation=schedule.resource_usage(),
                       explored=explored[0])
