"""Exact time-constrained, resource-minimizing scheduling (branch & bound).

A reference implementation for small graphs: enumerates start-step
assignments within each op's [ASAP, ALAP] window in topological order,
pruning on (a) precedence violations, (b) a running peak-usage cost bound,
and (c) an admissible lower bound (the cost of the usage accumulated so
far can only grow).  Exponential in the worst case — intended to certify
the heuristics (`minimize_resources`, force-directed) on the paper's small
benchmarks and in property tests, not for production use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.sched.resources import Allocation, UNIT_COST
from repro.sched.schedule import Schedule
from repro.sched.timing import TimingFrame


@dataclass(frozen=True)
class ExactResult:
    schedule: Schedule
    allocation: Allocation
    explored: int  # search nodes visited


def exact_minimum_schedule(graph: CDFG, n_steps: int,
                           node_limit: int = 200_000) -> ExactResult:
    """Provably minimum-cost allocation schedule for ``graph``.

    Raises ``InfeasibleScheduleError`` via TimingFrame when ``n_steps`` is
    below the critical path, and ``RuntimeError`` when the search exceeds
    ``node_limit`` nodes (graph too large for exact search).
    """
    frame = TimingFrame.compute(graph, n_steps)
    ops = [nid for nid in graph.topological_order()
           if graph.node(nid).is_schedulable]

    best_cost: list[float] = [float("inf")]
    best_assignment: dict[int, int] = {}
    found = [False]
    explored = [0]

    # usage[(slot, class)] running occupancy; peak[class] running max.
    usage: dict[tuple[int, ResourceClass], int] = {}
    peak: dict[ResourceClass, int] = {}

    def cost_of(peaks: dict[ResourceClass, int]) -> int:
        return sum(UNIT_COST[cls] * n for cls, n in peaks.items())

    assignment: dict[int, int] = {}

    def available(nid: int) -> int:
        """Step the value of (possibly zero-latency) ``nid`` is ready."""
        node = graph.node(nid)
        if node.is_schedulable:
            return assignment[nid] + node.latency
        preds = graph.preds(nid)
        return max((available(p) for p in preds), default=0)

    def earliest(nid: int) -> int:
        early = frame.asap[nid]
        for pred in graph.preds(nid):
            early = max(early, available(pred))
        return early

    def search(index: int) -> None:
        explored[0] += 1
        if explored[0] > node_limit:
            raise RuntimeError(
                f"exact search exceeded {node_limit} nodes; "
                "graph too large for exact scheduling")
        if cost_of(peak) >= best_cost[0]:
            return  # admissible bound: peaks never shrink
        if index == len(ops):
            best_cost[0] = cost_of(peak)
            best_assignment.clear()
            best_assignment.update(assignment)
            found[0] = True
            return
        nid = ops[index]
        node = graph.node(nid)
        for step in range(earliest(nid), frame.alap[nid] + 1):
            # Occupy.
            touched: list[tuple[int, ResourceClass]] = []
            peak_backup = peak.get(node.resource, 0)
            for s in range(step, step + node.latency):
                key = (s, node.resource)
                usage[key] = usage.get(key, 0) + 1
                touched.append(key)
                if usage[key] > peak.get(node.resource, 0):
                    peak[node.resource] = usage[key]
            assignment[nid] = step
            search(index + 1)
            # Release.
            del assignment[nid]
            for key in touched:
                usage[key] -= 1
            peak[node.resource] = peak_backup

    search(0)
    assert found[0], "TimingFrame guaranteed at least one schedule"

    start = dict(best_assignment)
    for nid in graph.topological_order():
        if nid in start:
            continue
        preds = graph.preds(nid)
        start[nid] = max(
            (start[p] + graph.node(p).latency for p in preds), default=0)
    schedule = Schedule(graph=graph, n_steps=n_steps, start=start)
    schedule.verify()
    return ExactResult(schedule=schedule,
                       allocation=schedule.resource_usage(),
                       explored=explored[0])
