"""The Schedule object: node -> control step, with verification and reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.sched.resources import Allocation


class ScheduleError(Exception):
    """Raised when a schedule violates precedence, bounds or resources."""


@dataclass
class Schedule:
    """A complete assignment of start steps to nodes.

    ``start`` maps every node id (including zero-latency nodes, whose start
    is the step their value becomes available) to its start step.  For a
    pipelined schedule, ``initiation_interval`` gives the II; resource usage
    is then counted modulo II because consecutive samples overlap.
    """

    graph: CDFG
    n_steps: int
    start: dict[int, int] = field(default_factory=dict)
    initiation_interval: int | None = None

    def step_of(self, nid: int) -> int:
        try:
            return self.start[nid]
        except KeyError:
            raise ScheduleError(f"node {nid} is not scheduled") from None

    def finish_of(self, nid: int) -> int:
        return self.step_of(nid) + self.graph.node(nid).latency

    def ops_in_step(self, step: int) -> list[int]:
        """Schedulable ops occupying ``step`` (multi-cycle ops span steps)."""
        result = []
        for node in self.graph.operations():
            s = self.step_of(node.nid)
            if s <= step < s + node.latency:
                result.append(node.nid)
        return result

    def resource_usage(self) -> Allocation:
        """Max concurrent units per class over all steps (modulo II when
        pipelined) — the allocation this schedule requires."""
        usage: dict[tuple[int, ResourceClass], int] = {}
        ii = self.initiation_interval
        for node in self.graph.operations():
            s = self.step_of(node.nid)
            for step in range(s, s + node.latency):
                slot = step % ii if ii else step
                key = (slot, node.resource)
                usage[key] = usage.get(key, 0) + 1
        peak: dict[ResourceClass, int] = {}
        for (_, cls), n in usage.items():
            peak[cls] = max(peak.get(cls, 0), n)
        return Allocation(peak)

    def verify(self, allocation: Allocation | None = None) -> None:
        """Raise ScheduleError unless the schedule is valid.

        Checks: every node scheduled; steps within [0, n_steps); every
        precedence (data + control) satisfied; optional resource limits.
        """
        for node in self.graph:
            if node.nid not in self.start:
                raise ScheduleError(f"node {node.label()} unscheduled")
            s = self.start[node.nid]
            if s < 0 or s + node.latency > self.n_steps:
                raise ScheduleError(
                    f"node {node.label()} at step {s} (latency "
                    f"{node.latency}) exceeds {self.n_steps} steps"
                )
            for pred in self.graph.preds(node.nid):
                if self.finish_of(pred) > s:
                    raise ScheduleError(
                        f"precedence violated: {self.graph.node(pred).label()} "
                        f"finishes at {self.finish_of(pred)} but "
                        f"{node.label()} starts at {s}"
                    )
        if allocation is not None:
            used = self.resource_usage()
            for cls, n in used.counts.items():
                if n > allocation.get(cls):
                    raise ScheduleError(
                        f"resource overflow: {n} {cls.value} units used, "
                        f"{allocation.get(cls)} allocated"
                    )

    def table(self) -> str:
        """Human-readable step table (1-indexed steps, like paper Figs 1-2)."""
        lines = [f"schedule of {self.graph.name!r} in {self.n_steps} steps"]
        if self.initiation_interval:
            lines[0] += f" (II={self.initiation_interval})"
        for step in range(self.n_steps):
            ops = [self.graph.node(nid).label() for nid in self.ops_in_step(step)]
            lines.append(f"  step {step + 1}: {', '.join(ops) if ops else '-'}")
        return "\n".join(lines)
