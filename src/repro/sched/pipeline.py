"""Functional pipelining support (paper §IV-B).

A k-stage pipeline over an L-step schedule accepts a new input sample every
II = ceil(L / k) steps; k samples are in flight at once.  From the paper's
angle: pipelining *adds control steps* (raises L) while keeping throughput
(II) fixed or better, and those extra steps are exactly the slack the PM
pass needs to schedule controlling signals first.

Resource sharing across overlapped samples is modelled by counting unit
occupancy modulo II (see ``Schedule.resource_usage``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.sched.minimize import MinimizeResult, minimize_resources
from repro.sched.timing import critical_path_length


@dataclass(frozen=True)
class PipelineSpec:
    """A latency / initiation-interval pair describing a pipelined design."""

    n_steps: int
    n_stages: int

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ValueError("a pipeline needs at least one stage")
        if self.n_steps < self.n_stages:
            raise ValueError(
                f"{self.n_stages} stages cannot fit in {self.n_steps} steps"
            )

    @property
    def initiation_interval(self) -> int:
        return -(-self.n_steps // self.n_stages)  # ceil division

    @property
    def effective_steps_per_sample(self) -> int:
        """Paper: 'the effective number of control steps needed to process
        one input sample is reduced' — this is the II."""
        return self.initiation_interval


def require_feasible(graph: CDFG, spec: PipelineSpec) -> int:
    """Validate that ``spec``'s step budget can hold ``graph`` at all.

    Returns the critical path length; raises :class:`ValueError` naming it
    when ``n_steps`` falls short, so callers fail at the spec instead of
    deep inside the list scheduler.
    """
    cp = critical_path_length(graph)
    if spec.n_steps < cp:
        raise ValueError(
            f"pipeline spec of {spec.n_steps} steps cannot hold "
            f"{graph.name!r}: its critical path needs {cp} control steps")
    return cp


def pipelined_minimize(graph: CDFG, spec: PipelineSpec) -> MinimizeResult:
    """Minimum-resource schedule of ``graph`` under a pipeline spec."""
    require_feasible(graph, spec)
    return minimize_resources(graph, spec.n_steps,
                              initiation_interval=spec.initiation_interval)


def slack_gained(graph: CDFG, spec: PipelineSpec) -> int:
    """Extra control steps pipelining makes available over the critical
    path at the same (or better) throughput.

    Raises :class:`ValueError` (naming the critical path) when the spec is
    infeasible for ``graph`` — slack can never be negative.
    """
    return spec.n_steps - require_feasible(graph, spec)
