"""ASAP / ALAP timing analysis over CDFGs.

Control steps are 0-indexed: a node with start ``s`` and latency ``l``
occupies steps ``s .. s+l-1`` and its result is available at step ``s+l``.
Zero-latency nodes (inputs, constants, wiring) produce their value at their
start step and occupy no execution unit.

All analyses respect both data edges and control edges, so the PM pass's
added precedence (paper step 10) automatically tightens ASAP/ALAP — this is
exactly the re-timing of steps 4-5 of the paper's pseudo-code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG


class InfeasibleScheduleError(Exception):
    """The graph cannot be scheduled within the requested control steps."""


def asap_times(graph: CDFG) -> dict[int, int]:
    """Earliest start step of every node (paper's ASAP values)."""
    asap: dict[int, int] = {}
    for nid in graph.topological_order():
        preds = graph.preds(nid)
        if not preds:
            asap[nid] = 0
        else:
            asap[nid] = max(asap[p] + graph.node(p).latency for p in preds)
    return asap


def critical_path_length(graph: CDFG) -> int:
    """Minimum number of control steps any schedule needs (paper Table I
    column 2: *Critical Path*)."""
    asap = asap_times(graph)
    if not asap:
        return 0
    return max(asap[nid] + graph.node(nid).latency for nid in asap)


def alap_times(graph: CDFG, n_steps: int) -> dict[int, int]:
    """Latest start step of every node for a ``n_steps`` schedule.

    Raises InfeasibleScheduleError if ``n_steps`` is below the critical path.
    """
    alap: dict[int, int] = {}
    for nid in reversed(graph.topological_order()):
        node = graph.node(nid)
        succs = graph.succs(nid)
        if not succs:
            alap[nid] = n_steps - node.latency
        else:
            alap[nid] = min(alap[s] for s in succs) - node.latency
        if alap[nid] < 0:
            raise InfeasibleScheduleError(
                f"{n_steps} control steps infeasible: node {node.label()} "
                f"would need to start at step {alap[nid]}"
            )
    return alap


@dataclass(frozen=True)
class TimingFrame:
    """ASAP/ALAP pair for a fixed step budget, with mobility helpers.

    This is the object the PM pass inspects for the paper's step-6 test
    (``ASAP > ALAP`` => power management not possible).
    """

    n_steps: int
    asap: dict[int, int]
    alap: dict[int, int]

    @classmethod
    def compute(cls, graph: CDFG, n_steps: int) -> "TimingFrame":
        asap = asap_times(graph)
        alap = alap_times(graph, n_steps)
        for nid, early in asap.items():
            if early > alap[nid]:
                raise InfeasibleScheduleError(
                    f"node {graph.node(nid).label()}: ASAP {early} > "
                    f"ALAP {alap[nid]} with {n_steps} steps"
                )
        return cls(n_steps=n_steps, asap=dict(asap), alap=dict(alap))

    def mobility(self, nid: int) -> int:
        """Slack of a node: number of alternative start steps."""
        return self.alap[nid] - self.asap[nid]

    def is_feasible(self) -> bool:
        return all(self.asap[n] <= self.alap[n] for n in self.asap)


def try_timing(graph: CDFG, n_steps: int) -> TimingFrame | None:
    """TimingFrame if ``graph`` fits in ``n_steps``, else None.

    This is the feasibility probe the PM pass runs after tentatively adding
    control edges (paper steps 4-7).
    """
    try:
        return TimingFrame.compute(graph, n_steps)
    except InfeasibleScheduleError:
        return None
