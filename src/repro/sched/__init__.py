"""Scheduling: timing analysis, list/force-directed schedulers, pipelining."""

from repro.sched.exact import ExactResult, exact_minimum_schedule
from repro.sched.force_directed import force_directed_schedule
from repro.sched.list_scheduler import ListSchedulingFailure, list_schedule
from repro.sched.minimize import MinimizeResult, minimize_resources
from repro.sched.modulo import (
    ModuloResult,
    ModuloSchedulingError,
    minimize_initiation_interval,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
)
from repro.sched.pipeline import (
    PipelineSpec,
    pipelined_minimize,
    require_feasible,
    slack_gained,
)
from repro.sched.resources import (
    Allocation,
    UNIT_COST,
    lower_bound_allocation,
    single_unit_allocation,
    unbounded_allocation,
)
from repro.sched.schedule import Schedule, ScheduleError
from repro.sched.timing import (
    InfeasibleScheduleError,
    TimingFrame,
    alap_times,
    asap_times,
    critical_path_length,
    try_timing,
)

__all__ = [
    "Allocation",
    "InfeasibleScheduleError",
    "ListSchedulingFailure",
    "MinimizeResult",
    "ModuloResult",
    "ModuloSchedulingError",
    "PipelineSpec",
    "Schedule",
    "ScheduleError",
    "TimingFrame",
    "UNIT_COST",
    "alap_times",
    "asap_times",
    "ExactResult",
    "critical_path_length",
    "exact_minimum_schedule",
    "force_directed_schedule",
    "list_schedule",
    "lower_bound_allocation",
    "minimize_initiation_interval",
    "minimize_resources",
    "modulo_schedule",
    "pipelined_minimize",
    "recurrence_mii",
    "require_feasible",
    "resource_mii",
    "single_unit_allocation",
    "slack_gained",
    "try_timing",
    "unbounded_allocation",
]
