"""Resource-constrained list scheduling.

This is our stand-in for HYPER's scheduler (paper step 11): given a step
budget and an execution-unit allocation, place every operation honouring
data *and control* precedence.  Priority is deadline-first (smallest ALAP),
which keeps forced operations from missing their slot.

Supports functional pipelining: with ``initiation_interval=II`` the resource
occupancy of a step is shared with all steps congruent modulo II, modelling
overlapped consecutive samples (paper §IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.sched.resources import Allocation
from repro.sched.schedule import Schedule
from repro.sched.timing import InfeasibleScheduleError, TimingFrame


@dataclass
class ListSchedulingFailure(Exception):
    """Scheduling failed; ``bottleneck`` is the resource class that ran out
    (used by the minimum-resource search to decide what to add)."""

    message: str
    bottleneck: ResourceClass | None = None

    def __str__(self) -> str:
        return self.message


def list_schedule(
    graph: CDFG,
    n_steps: int,
    allocation: Allocation,
    initiation_interval: int | None = None,
) -> Schedule:
    """Schedule ``graph`` into ``n_steps`` with ``allocation`` units.

    Raises :class:`InfeasibleScheduleError` if the precedence structure
    alone does not fit, or :class:`ListSchedulingFailure` if resources are
    the limit.
    """
    frame = TimingFrame.compute(graph, n_steps)  # raises if no slack at all
    ii = initiation_interval
    if ii is not None and ii <= 0:
        raise ValueError(f"initiation interval must be positive, got {ii}")

    start: dict[int, int] = {}
    finished_at: dict[int, int] = {}
    # busy[(slot, cls)] = units in use; slot = step % II when pipelining.
    busy: dict[tuple[int, ResourceClass], int] = {}

    def occupy(nid: int, step: int) -> None:
        node = graph.node(nid)
        start[nid] = step
        finished_at[nid] = step + node.latency
        if node.is_schedulable:
            for s in range(step, step + node.latency):
                slot = s % ii if ii else s
                key = (slot, node.resource)
                busy[key] = busy.get(key, 0) + 1

    def has_unit(node, step: int) -> bool:
        for s in range(step, step + node.latency):
            slot = s % ii if ii else s
            if busy.get((slot, node.resource), 0) >= allocation.get(node.resource):
                return False
        return True

    # Zero-latency and schedulable nodes are placed in one sweep; ops wait
    # in `pending` ordered by (alap, asap, nid).
    pending = set(graph.node_ids)

    for step in range(n_steps):
        # Place every zero-latency node whose predecessors are done (they
        # consume no unit and unlock their consumers within the same step).
        changed = True
        while changed:
            changed = False
            for nid in sorted(pending):
                node = graph.node(nid)
                if node.is_schedulable:
                    continue
                preds = graph.preds(nid)
                if all(p in finished_at and finished_at[p] <= step for p in preds):
                    ready_at = max((finished_at[p] for p in preds), default=0)
                    occupy(nid, max(ready_at, 0) if preds else 0)
                    pending.discard(nid)
                    changed = True

        ready = [
            nid for nid in pending
            if graph.node(nid).is_schedulable
            and all(p in finished_at and finished_at[p] <= step
                    for p in graph.preds(nid))
        ]
        ready.sort(key=lambda nid: (frame.alap[nid], frame.asap[nid], nid))

        for nid in ready:
            node = graph.node(nid)
            if node.latency + step > n_steps:
                raise ListSchedulingFailure(
                    f"{node.label()} cannot finish by step {n_steps}",
                    bottleneck=node.resource,
                )
            if has_unit(node, step):
                occupy(nid, step)
                pending.discard(nid)
            elif frame.alap[nid] == step:
                # Forced op with no free unit: this allocation cannot work.
                raise ListSchedulingFailure(
                    f"step {step}: no free {node.resource.value} unit for "
                    f"forced op {node.label()}",
                    bottleneck=node.resource,
                )

    if any(graph.node(nid).is_schedulable for nid in pending):
        leftover = [graph.node(n).label() for n in sorted(pending)
                    if graph.node(n).is_schedulable]
        raise ListSchedulingFailure(
            f"unscheduled ops after {n_steps} steps: {', '.join(leftover)}"
        )
    # Any remaining zero-latency nodes (e.g. outputs of last-step ops).
    for nid in sorted(pending):
        preds = graph.preds(nid)
        ready_at = max((finished_at[p] for p in preds), default=0)
        start[nid] = ready_at
        finished_at[nid] = ready_at

    schedule = Schedule(graph=graph, n_steps=n_steps, start=start,
                        initiation_interval=ii)
    schedule.verify(allocation)
    return schedule
