"""Execution-unit resource model.

An :class:`Allocation` says how many units of each
:class:`~repro.ir.ops.ResourceClass` the datapath provides.  Costs use the
paper's relative power weights as area proxies (a multiplier is far larger
than an adder), so "minimum resources" matches the intuition of HYPER's
resource-minimizing scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass

# Relative unit costs used when minimizing an allocation.  Mirrors the
# paper's power weights (MUX:1, COMP:4, +:3, -:3, *:20); LOGIC ~ COMP.
UNIT_COST: dict[ResourceClass, int] = {
    ResourceClass.MUX: 1,
    ResourceClass.COMP: 4,
    ResourceClass.ADD: 3,
    ResourceClass.SUB: 3,
    ResourceClass.MUL: 20,
    ResourceClass.LOGIC: 4,
}


@dataclass(frozen=True)
class Allocation:
    """Number of execution units available per resource class."""

    counts: dict[ResourceClass, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for cls, n in self.counts.items():
            if n < 0:
                raise ValueError(f"negative allocation for {cls}: {n}")

    def get(self, cls: ResourceClass) -> int:
        return self.counts.get(cls, 0)

    def with_extra(self, cls: ResourceClass, extra: int = 1) -> "Allocation":
        counts = dict(self.counts)
        counts[cls] = counts.get(cls, 0) + extra
        return Allocation(counts)

    def cost(self) -> int:
        """Weighted total unit cost (area proxy)."""
        return sum(UNIT_COST[cls] * n for cls, n in self.counts.items())

    def dominates(self, other: "Allocation") -> bool:
        """True if self has at least as many units of every class."""
        classes = set(self.counts) | set(other.counts)
        return all(self.get(c) >= other.get(c) for c in classes)

    def as_dict(self) -> dict[str, int]:
        return {cls.value: n for cls, n in sorted(self.counts.items(),
                                                  key=lambda kv: kv[0].value)}

    def __str__(self) -> str:
        inner = ", ".join(f"{c.value}:{n}" for c, n in
                          sorted(self.counts.items(), key=lambda kv: kv[0].value))
        return f"Allocation({inner})"


def unbounded_allocation(graph: CDFG) -> Allocation:
    """One unit per operation — always schedulable at the critical path."""
    counts: dict[ResourceClass, int] = {}
    for node in graph.operations():
        counts[node.resource] = counts.get(node.resource, 0) + 1
    return Allocation(counts)


def single_unit_allocation(graph: CDFG) -> Allocation:
    """One unit of each class used by the graph — the cheapest conceivable."""
    counts = {node.resource: 1 for node in graph.operations()}
    return Allocation(counts)


def lower_bound_allocation(graph: CDFG, n_steps: int) -> Allocation:
    """A simple lower bound: ceil(#ops of class / n_steps), at least 1."""
    totals: dict[ResourceClass, int] = {}
    for node in graph.operations():
        totals[node.resource] = totals.get(node.resource, 0) + 1
    steps = max(1, n_steps)
    return Allocation({cls: max(1, -(-n // steps)) for cls, n in totals.items()})
