"""Force-directed scheduling (Paulin & Knight, 1989).

Time-constrained scheduling that balances operation concurrency: each
unplaced op has a uniform placement probability over its [ASAP, ALAP]
window; distribution graphs accumulate expected usage per (class, step);
the op/step pair with the lowest total force (self force + effects on
predecessors and successors) is fixed first.

We provide FDS as an alternative base scheduler to study whether the PM
pass's results depend on the underlying scheduler (ablation
``bench_ablation_scheduler``); HYPER's own scheduler is different from
both, but the paper's algorithm only requires *some* resource-minimizing
time-constrained scheduler.
"""

from __future__ import annotations

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.sched.schedule import Schedule
from repro.sched.timing import TimingFrame, alap_times, asap_times


def _windows(graph: CDFG, asap: dict[int, int], alap: dict[int, int],
             fixed: dict[int, int]) -> tuple[dict[int, int], dict[int, int]]:
    """Recompute ASAP/ALAP windows given already-fixed start steps."""
    new_asap: dict[int, int] = {}
    for nid in graph.topological_order():
        if nid in fixed:
            new_asap[nid] = fixed[nid]
            continue
        preds = graph.preds(nid)
        if not preds:
            new_asap[nid] = asap[nid]
        else:
            new_asap[nid] = max(
                (new_asap[p] + graph.node(p).latency for p in preds),
                default=asap[nid],
            )
    new_alap: dict[int, int] = {}
    for nid in reversed(graph.topological_order()):
        if nid in fixed:
            new_alap[nid] = fixed[nid]
            continue
        node = graph.node(nid)
        succs = graph.succs(nid)
        if not succs:
            new_alap[nid] = alap[nid]
        else:
            new_alap[nid] = min(new_alap[s] for s in succs) - node.latency
    return new_asap, new_alap


def _distribution(graph: CDFG, asap, alap) -> dict[tuple[ResourceClass, int], float]:
    dg: dict[tuple[ResourceClass, int], float] = {}
    for node in graph.operations():
        lo, hi = asap[node.nid], alap[node.nid]
        width = hi - lo + 1
        for s in range(lo, hi + 1):
            for occupied in range(s, s + node.latency):
                key = (node.resource, occupied)
                dg[key] = dg.get(key, 0.0) + 1.0 / width
    return dg


def force_directed_schedule(graph: CDFG, n_steps: int) -> Schedule:
    """Schedule ``graph`` in ``n_steps`` steps minimizing peak concurrency."""
    TimingFrame.compute(graph, n_steps)  # feasibility
    base_asap = asap_times(graph)
    base_alap = alap_times(graph, n_steps)
    fixed: dict[int, int] = {}

    ops = [n.nid for n in graph.operations()]
    while len(fixed) < len(ops):
        asap, alap = _windows(graph, base_asap, base_alap, fixed)
        dg = _distribution(graph, asap, alap)

        best: tuple[float, int, int] | None = None  # (force, nid, step)
        for nid in ops:
            if nid in fixed:
                continue
            node = graph.node(nid)
            lo, hi = asap[nid], alap[nid]
            if lo == hi:
                # Forced op: fix immediately, zero force.
                best = (-float("inf"), nid, lo)
                break
            width = hi - lo + 1
            for step in range(lo, hi + 1):
                # Self force of moving the op's probability mass onto `step`.
                force = 0.0
                for s in range(lo, hi + 1):
                    for occ in range(s, s + node.latency):
                        dg_val = dg.get((node.resource, occ), 0.0)
                        old_prob = 1.0 / width
                        new_prob = 1.0 if s == step else 0.0
                        force += dg_val * (new_prob - old_prob)
                key = (force, nid, step)
                if best is None or key < best:
                    best = key
        assert best is not None
        _, nid, step = best
        fixed[nid] = step

    # Place zero-latency nodes at availability.
    start = dict(fixed)
    for nid in graph.topological_order():
        if nid in start:
            continue
        preds = graph.preds(nid)
        start[nid] = max((start[p] + graph.node(p).latency for p in preds),
                         default=0)
    schedule = Schedule(graph=graph, n_steps=n_steps, start=start)
    schedule.verify()
    return schedule
