"""Force-directed scheduling (Paulin & Knight, 1989).

Time-constrained scheduling that balances operation concurrency: each
unplaced op has a uniform placement probability over its [ASAP, ALAP]
window; distribution graphs accumulate expected usage per (class, step);
the op/step pair with the lowest total force (self force + effects on
predecessors and successors) is fixed first.

We provide FDS as an alternative base scheduler to study whether the PM
pass's results depend on the underlying scheduler (ablation
``bench_ablation_scheduler``); HYPER's own scheduler is different from
both, but the paper's algorithm only requires *some* resource-minimizing
time-constrained scheduler.
"""

from __future__ import annotations

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.sched.schedule import Schedule
from repro.sched.timing import TimingFrame, alap_times, asap_times


def _windows(graph: CDFG, asap: dict[int, int], alap: dict[int, int],
             fixed: dict[int, int]) -> tuple[dict[int, int], dict[int, int]]:
    """Recompute ASAP/ALAP windows given already-fixed start steps."""
    new_asap: dict[int, int] = {}
    for nid in graph.topological_order():
        if nid in fixed:
            new_asap[nid] = fixed[nid]
            continue
        preds = graph.preds(nid)
        if not preds:
            new_asap[nid] = asap[nid]
        else:
            new_asap[nid] = max(
                (new_asap[p] + graph.node(p).latency for p in preds),
                default=asap[nid],
            )
    new_alap: dict[int, int] = {}
    for nid in reversed(graph.topological_order()):
        if nid in fixed:
            new_alap[nid] = fixed[nid]
            continue
        node = graph.node(nid)
        succs = graph.succs(nid)
        if not succs:
            new_alap[nid] = alap[nid]
        else:
            new_alap[nid] = min(new_alap[s] for s in succs) - node.latency
    return new_asap, new_alap


def _distribution(graph: CDFG, asap, alap) -> dict[tuple[ResourceClass, int], float]:
    """Reference from-scratch distribution graph (kept as the oracle the
    incremental :class:`_DistributionGraph` is tested against)."""
    dg: dict[tuple[ResourceClass, int], float] = {}
    for node in graph.operations():
        lo, hi = asap[node.nid], alap[node.nid]
        width = hi - lo + 1
        for s in range(lo, hi + 1):
            for occupied in range(s, s + node.latency):
                key = (node.resource, occupied)
                dg[key] = dg.get(key, 0.0) + 1.0 / width
    return dg


class _DistributionGraph:
    """Expected-usage distribution maintained incrementally.

    The original implementation rebuilt the whole distribution from
    scratch on every placement iteration — O(ops x window x latency) per
    fixed node.  Placing one node only narrows the windows of the nodes
    on its precedence paths, so instead each node's contribution is
    retracted and re-added only when its window actually changed.

    Cell values are stored as exact integer counts per window width and
    reduced to a float on demand, so a subtract-then-add sequence can
    never leave floating-point residue behind (the schedule stays a pure
    function of the windows, not of the update order).
    """

    def __init__(self) -> None:
        # (class, step) -> {window width -> count}
        self._counts: dict[tuple[ResourceClass, int], dict[int, int]] = {}
        self._values: dict[tuple[ResourceClass, int], float] = {}
        self._windows: dict[int, tuple[int, int]] = {}  # nid -> (lo, hi)

    def get(self, key: tuple[ResourceClass, int],
            default: float = 0.0) -> float:
        return self._values.get(key, default)

    def _apply(self, node, lo: int, hi: int, sign: int) -> None:
        width = hi - lo + 1
        for s in range(lo, hi + 1):
            for occupied in range(s, s + node.latency):
                key = (node.resource, occupied)
                counts = self._counts.setdefault(key, {})
                counts[width] = counts.get(width, 0) + sign
                if counts[width] == 0:
                    del counts[width]
                self._values[key] = sum(
                    c / w for w, c in sorted(counts.items()))

    def update(self, graph: CDFG, asap, alap) -> int:
        """Sync with new windows; returns how many nodes were touched."""
        touched = 0
        for node in graph.operations():
            window = (asap[node.nid], alap[node.nid])
            previous = self._windows.get(node.nid)
            if window == previous:
                continue
            touched += 1
            if previous is not None:
                self._apply(node, previous[0], previous[1], -1)
            self._apply(node, window[0], window[1], +1)
            self._windows[node.nid] = window
        return touched


def force_directed_schedule(graph: CDFG, n_steps: int) -> Schedule:
    """Schedule ``graph`` in ``n_steps`` steps minimizing peak concurrency."""
    TimingFrame.compute(graph, n_steps)  # feasibility
    base_asap = asap_times(graph)
    base_alap = alap_times(graph, n_steps)
    fixed: dict[int, int] = {}
    dg = _DistributionGraph()

    ops = [n.nid for n in graph.operations()]
    # node.resource resolves through an enum table on every access; the
    # force loop reads it O(ops x window) times per placement, so cache
    # the per-op constants once.
    resource_of = {n.nid: n.resource for n in graph.operations()}
    latency_of = {n.nid: n.latency for n in graph.operations()}
    while len(fixed) < len(ops):
        asap, alap = _windows(graph, base_asap, base_alap, fixed)
        dg.update(graph, asap, alap)

        best: tuple[float, int, int] | None = None  # (force, nid, step)
        for nid in ops:
            if nid in fixed:
                continue
            lo, hi = asap[nid], alap[nid]
            if lo == hi:
                # Forced op: fix immediately, zero force.
                best = (-float("inf"), nid, lo)
                break
            width = hi - lo + 1
            resource, latency = resource_of[nid], latency_of[nid]
            # Self force of moving the op's probability mass onto `step`
            # is (usage under the candidate's occupied cells) minus the
            # window's mean usage — read each distribution cell once
            # instead of once per candidate step.
            cells = [dg.get((resource, occ))
                     for occ in range(lo, hi + latency)]
            mean = sum(
                sum(cells[s - lo:s - lo + latency])
                for s in range(lo, hi + 1)) / width
            for step in range(lo, hi + 1):
                force = sum(cells[step - lo:step - lo + latency]) - mean
                key = (force, nid, step)
                if best is None or key < best:
                    best = key
        assert best is not None
        _, nid, step = best
        fixed[nid] = step

    # Place zero-latency nodes at availability.
    start = dict(fixed)
    for nid in graph.topological_order():
        if nid in start:
            continue
        preds = graph.preds(nid)
        start[nid] = max((start[p] + graph.node(p).latency for p in preds),
                         default=0)
    schedule = Schedule(graph=graph, n_steps=n_steps, start=start)
    schedule.verify()
    return schedule
