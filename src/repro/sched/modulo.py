"""Iterative modulo scheduling (functional pipelining, paper §IV-B).

The legacy pipelining path (:mod:`repro.sched.pipeline`) fixes the
initiation interval by ceil-division ``II = ceil(L / k)`` and hands it to
the list scheduler.  This module instead *searches* for the smallest
feasible II, Rau-style:

1. bound the search from below with ``MII = max(ResMII, RecMII)`` —
   :func:`resource_mii` from unit occupancy, :func:`recurrence_mii` from
   dependence recurrences;
2. for each candidate II, run :func:`modulo_schedule`: a budgeted
   iterative scheduler that places operations against a *modulo
   reservation table* (unit occupancy counted mod II, multi-cycle ops
   spanning wrapped slots) and, when an operation finds no slot, forces
   a placement by evicting the least-critical conflicting occupants and
   any successors the move invalidates;
3. the first II that schedules wins; :func:`minimize_initiation_interval`
   falls back to the ceil-division list schedule when the search cannot
   beat it, so the found II is never worse than the legacy one.

Dependences are handled at the *operation* level: zero-latency wiring
chains are collapsed to edges between the schedulable producers and
consumers they connect (gap = producer latency), and the wiring nodes are
re-placed after the ops settle, exactly as the list scheduler does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.sched.minimize import minimize_resources
from repro.sched.resources import Allocation
from repro.sched.schedule import Schedule
from repro.sched.timing import TimingFrame


class ModuloSchedulingError(Exception):
    """No modulo schedule found at the attempted initiation interval.

    ``bottleneck`` names the resource class that ran out of reservation
    slots, when one could be identified.
    """

    def __init__(self, message: str,
                 bottleneck: ResourceClass | None = None) -> None:
        super().__init__(message)
        self.bottleneck = bottleneck


def resource_mii(graph: CDFG, allocation: Allocation) -> int:
    """Resource-constrained lower bound on the initiation interval.

    Each operation occupies one unit of its class for ``latency``
    consecutive slots of the reservation table, so a class with ``B``
    total busy-cycles on ``u`` units forces ``II >= ceil(B / u)``.
    """
    busy: dict[ResourceClass, int] = {}
    for node in graph.operations():
        busy[node.resource] = busy.get(node.resource, 0) + node.latency
    mii = 1
    for cls, total in busy.items():
        units = allocation.get(cls)
        if units <= 0:
            raise ValueError(
                f"allocation provides no {cls.value} unit but "
                f"{graph.name!r} needs {total} busy-cycles of it")
        mii = max(mii, -(-total // units))
    return mii


def recurrence_mii(
    graph: CDFG,
    recurrences: "tuple[tuple[int, int, int], ...] | list" = (),
) -> int:
    """Recurrence-constrained lower bound on the initiation interval.

    A dependence cycle with total latency ``B`` whose edges cross ``d``
    sample boundaries forces ``II >= ceil(B / d)``.  CDFGs are acyclic by
    construction (``add_control_edge`` refuses cycles), and every data and
    control edge stays within one sample, so for any valid CDFG this
    returns 1 — the honest answer, stated rather than hidden.  Explicit
    cross-sample ``recurrences`` (``(src, dst, distance)`` triples, e.g.
    from a future loop-carried IR) participate fully: feasibility of a
    candidate II is checked by positive-cycle detection over edge weights
    ``latency(src) - II * distance``, and the smallest feasible II is
    found by bisection.
    """
    edges: list[tuple[int, int, int, int]] = []
    total_latency = 0
    for node in graph:
        total_latency += node.latency
        for succ in graph.succs(node.nid):
            edges.append((node.nid, succ, node.latency, 0))
    for src, dst, distance in recurrences:
        if distance <= 0:
            raise ValueError(
                f"recurrence {src}->{dst}: distance must be >= 1 samples, "
                f"got {distance}")
        edges.append((src, dst, graph.node(src).latency, distance))
    nodes = graph.node_ids
    if not edges or _recurrence_feasible(nodes, edges, 1):
        return 1
    hi = max(1, total_latency)
    if not _recurrence_feasible(nodes, edges, hi):
        raise ModuloSchedulingError(
            f"{graph.name!r} has a dependence cycle with zero total "
            "sample distance; no initiation interval can satisfy it")
    lo = 1  # infeasible; hi is feasible
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _recurrence_feasible(nodes, edges, mid):
            hi = mid
        else:
            lo = mid
    return hi


def _recurrence_feasible(nodes, edges, ii: int) -> bool:
    """True when no dependence cycle is over-tight at ``ii``.

    Bellman-Ford longest-path relaxation over weights
    ``latency - ii * distance``; a relaxation still firing after |V|
    passes means a positive cycle, i.e. an unsatisfiable recurrence.
    """
    dist = {nid: 0 for nid in nodes}
    for _ in range(len(nodes)):
        changed = False
        for src, dst, latency, distance in edges:
            w = dist[src] + latency - ii * distance
            if w > dist[dst]:
                dist[dst] = w
                changed = True
        if not changed:
            return True
    return False


def _op_dependences(graph: CDFG) -> dict[int, set[int]]:
    """Operation-level precedence: ``deps[v]`` is the set of schedulable
    ops whose finish bounds ``v``'s start, with zero-latency wiring chains
    collapsed away (data and control edges alike)."""
    producers: dict[int, frozenset[int]] = {}
    for nid in graph.topological_order():
        node = graph.node(nid)
        if node.is_schedulable:
            producers[nid] = frozenset((nid,))
        else:
            roots: set[int] = set()
            for pred in graph.preds(nid):
                roots |= producers[pred]
            producers[nid] = frozenset(roots)
    deps: dict[int, set[int]] = {}
    for node in graph.operations():
        roots = set()
        for pred in graph.preds(node.nid):
            roots |= producers[pred]
        roots.discard(node.nid)
        deps[node.nid] = roots
    return deps


def modulo_schedule(
    graph: CDFG,
    n_steps: int,
    allocation: Allocation,
    initiation_interval: int,
    budget_ratio: int = 16,
) -> Schedule:
    """One fixed-II attempt of the iterative modulo scheduler.

    Places every operation within its ASAP/ALAP window against a modulo
    reservation table with ``allocation`` units per class.  Operations are
    tried deadline-first; one that finds no conflict-free slot in its
    ``[earliest, earliest + II - 1]`` window is *forced* in, evicting the
    least-critical same-class occupants (and any already-placed successors
    the move invalidates), which then re-enter the queue.  Total
    placements are bounded by ``budget_ratio * n_ops``.

    Raises :class:`~repro.sched.timing.InfeasibleScheduleError` when the
    precedence structure alone does not fit ``n_steps``, and
    :class:`ModuloSchedulingError` when no schedule was found at this II.
    """
    ii = initiation_interval
    if ii < 1:
        raise ValueError(f"initiation interval must be >= 1, got {ii}")
    frame = TimingFrame.compute(graph, n_steps)  # raises if no slack at all
    deps = _op_dependences(graph)
    consumers: dict[int, set[int]] = {nid: set() for nid in deps}
    for nid, roots in deps.items():
        for root in roots:
            consumers[root].add(nid)

    latency = {nid: graph.node(nid).latency for nid in deps}
    cls_of = {nid: graph.node(nid).resource for nid in deps}

    def priority(nid: int) -> tuple[int, int, int]:
        return (frame.alap[nid], frame.asap[nid], nid)

    start: dict[int, int] = {}
    last_start: dict[int, int] = {}
    # The modulo reservation table: units of `cls` busy in slot `s % II`.
    table: dict[tuple[int, ResourceClass], int] = {}

    def occupy(nid: int, step: int, sign: int) -> None:
        for k in range(latency[nid]):
            key = ((step + k) % ii, cls_of[nid])
            table[key] = table.get(key, 0) + sign

    def fits(nid: int, step: int) -> bool:
        need: dict[int, int] = {}
        for k in range(latency[nid]):
            slot = (step + k) % ii
            need[slot] = need.get(slot, 0) + 1
        cap = allocation.get(cls_of[nid])
        return all(table.get((slot, cls_of[nid]), 0) + n <= cap
                   for slot, n in need.items())

    def unschedule(nid: int) -> None:
        occupy(nid, start.pop(nid), -1)
        pending.add(nid)

    def force_in(nid: int, step: int) -> None:
        """Evict same-class occupants until ``nid`` fits at ``step``."""
        cls = cls_of[nid]
        cap = allocation.get(cls)
        need: dict[int, int] = {}
        for k in range(latency[nid]):
            slot = (step + k) % ii
            need[slot] = need.get(slot, 0) + 1
        for slot, n in need.items():
            if n > cap:
                raise ModuloSchedulingError(
                    f"II={ii}: {graph.node(nid).label()} alone needs {n} "
                    f"{cls.value} units in slot {slot} but only {cap} are "
                    "allocated", bottleneck=cls)
            while table.get((slot, cls), 0) + n > cap:
                victims = [
                    other for other in start
                    if cls_of[other] is cls and any(
                        (start[other] + k) % ii == slot
                        for k in range(latency[other]))
                ]
                # table > 0 implies a scheduled occupant exists.
                victim = max(victims, key=priority)
                unschedule(victim)

    pending = set(deps)
    budget = max(64, budget_ratio * len(pending))
    while pending:
        if budget <= 0:
            raise ModuloSchedulingError(
                f"II={ii}: placement budget exhausted after repeated "
                f"evictions on {graph.name!r}")
        budget -= 1
        nid = min(pending, key=priority)
        pending.discard(nid)
        earliest = frame.asap[nid]
        for dep in deps[nid]:
            if dep in start:
                earliest = max(earliest, start[dep] + latency[dep])
        deadline = frame.alap[nid]
        placed_at = None
        # Slots repeat with period II, so a window of II starts is enough.
        for step in range(earliest, min(deadline, earliest + ii - 1) + 1):
            if fits(nid, step):
                placed_at = step
                break
        if placed_at is None:
            placed_at = earliest
            previous = last_start.get(nid)
            if previous is not None and previous >= earliest:
                placed_at = previous + 1
            if placed_at > deadline:
                raise ModuloSchedulingError(
                    f"II={ii}: no reservation slot for "
                    f"{graph.node(nid).label()} within steps "
                    f"[{earliest}, {deadline}]", bottleneck=cls_of[nid])
            force_in(nid, placed_at)
        start[nid] = placed_at
        last_start[nid] = placed_at
        occupy(nid, placed_at, +1)
        finish = placed_at + latency[nid]
        for consumer in consumers[nid]:
            if consumer in start and start[consumer] < finish:
                unschedule(consumer)

    # Settle zero-latency nodes exactly as the list scheduler does:
    # sources at step 0, wiring/outputs at their operands' finish.
    for nid in graph.topological_order():
        node = graph.node(nid)
        if node.is_schedulable:
            continue
        preds = graph.preds(nid)
        start[nid] = max(
            (start[p] + graph.node(p).latency for p in preds), default=0)

    schedule = Schedule(graph=graph, n_steps=n_steps, start=start,
                        initiation_interval=ii)
    schedule.verify(allocation)
    return schedule


@dataclass(frozen=True)
class ModuloResult:
    """Outcome of the II-minimization search.

    ``method`` is ``"modulo"`` when the iterative scheduler found an II
    below the cap, ``"list"`` when the ceil-division incumbent (the legacy
    list-scheduled pipeline) was kept — either because it already sits at
    MII or because no smaller II was feasible.
    """

    schedule: Schedule
    allocation: Allocation
    initiation_interval: int
    mii: int
    res_mii: int
    rec_mii: int
    attempts: int
    method: str = "modulo"


def minimize_initiation_interval(
    graph: CDFG,
    n_steps: int,
    max_ii: int | None = None,
    allocation: Allocation | None = None,
    budget_ratio: int = 16,
) -> ModuloResult:
    """Smallest-II modulo schedule of ``graph`` within ``n_steps``.

    With ``allocation=None`` (the normal flow path) the resource budget is
    taken from the minimum-resource list schedule at ``II = max_ii`` — the
    legacy ceil-division pipeline — which doubles as the incumbent: the
    result's II is guaranteed ``<= max_ii`` whenever that schedule exists,
    and strictly smaller whenever the modulo scheduler finds one.  With an
    explicit ``allocation`` there is no incumbent and the search raises
    :class:`ModuloSchedulingError` when every ``II <= max_ii`` fails.
    """
    cap = n_steps if max_ii is None else max_ii
    if cap < 1:
        raise ValueError(f"initiation interval cap must be >= 1, got {cap}")
    cap = min(cap, n_steps) if n_steps >= 1 else cap

    incumbent = None
    if allocation is None:
        incumbent = minimize_resources(graph, n_steps,
                                       initiation_interval=cap)
        allocation = incumbent.allocation

    rec = recurrence_mii(graph)
    res = resource_mii(graph, allocation)
    mii = max(rec, res)

    attempts = 0
    for ii in range(mii, cap + 1):
        if incumbent is not None and ii == cap:
            break  # the incumbent already proves the cap is feasible
        attempts += 1
        try:
            schedule = modulo_schedule(graph, n_steps, allocation, ii,
                                       budget_ratio=budget_ratio)
        except ModuloSchedulingError:
            continue
        return ModuloResult(
            schedule=schedule, allocation=schedule.resource_usage(),
            initiation_interval=ii, mii=mii, res_mii=res, rec_mii=rec,
            attempts=attempts, method="modulo")

    if incumbent is not None:
        return ModuloResult(
            schedule=incumbent.schedule, allocation=incumbent.allocation,
            initiation_interval=cap, mii=mii, res_mii=res, rec_mii=rec,
            attempts=attempts, method="list")
    raise ModuloSchedulingError(
        f"no initiation interval in [{mii}, {cap}] schedules "
        f"{graph.name!r} in {n_steps} steps under {allocation}")
