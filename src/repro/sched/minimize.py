"""Minimum-resource scheduling under a latency constraint.

The paper's step 11 runs HYPER's scheduler "targeting minimum hardware
resources for the desired throughput".  We reproduce that with a greedy
search: start at a lower-bound allocation and add one unit of whichever
class the list scheduler reports as the bottleneck until scheduling
succeeds.  For the small allocations of HLS benchmarks this finds the same
results as exhaustive search (verified in the test suite), and it is the
behaviour downstream code relies on for the paper's Table II area column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.sched.list_scheduler import ListSchedulingFailure, list_schedule
from repro.sched.resources import (
    Allocation,
    lower_bound_allocation,
    unbounded_allocation,
)
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class MinimizeResult:
    schedule: Schedule
    allocation: Allocation
    attempts: int


def minimize_resources(
    graph: CDFG,
    n_steps: int,
    initiation_interval: int | None = None,
    start_from: Allocation | None = None,
) -> MinimizeResult:
    """Find a small allocation that schedules ``graph`` in ``n_steps``.

    Raises :class:`~repro.sched.timing.InfeasibleScheduleError` if no
    allocation can meet the step budget (precedence-bound).
    """
    ceiling = unbounded_allocation(graph)
    allocation = start_from or lower_bound_allocation(graph, n_steps)
    # Clip the starting point so we never exceed one-unit-per-op.
    allocation = Allocation({
        cls: min(n, max(ceiling.get(cls), 1))
        for cls, n in allocation.counts.items()
    })

    attempts = 0
    while True:
        attempts += 1
        try:
            schedule = list_schedule(graph, n_steps, allocation,
                                     initiation_interval=initiation_interval)
            # Trim: the schedule may not use everything we allocated.
            return MinimizeResult(schedule=schedule,
                                  allocation=schedule.resource_usage(),
                                  attempts=attempts)
        except ListSchedulingFailure as failure:
            bottleneck = failure.bottleneck
            if bottleneck is None or \
                    allocation.get(bottleneck) >= ceiling.get(bottleneck):
                # Bottleneck unknown or saturated: widen everything that is
                # still below the ceiling; if nothing is, precedence is the
                # limit and list_schedule would have raised Infeasible.
                widened = False
                for cls in ceiling.counts:
                    if allocation.get(cls) < ceiling.get(cls):
                        allocation = allocation.with_extra(cls)
                        widened = True
                if not widened:
                    raise
            else:
                allocation = allocation.with_extra(bottleneck)
