"""Area model.

Execution-unit areas follow the same relative scale as the paper's power
weights (a multiplier dwarfs an adder); registers, interconnect multiplexors
and controller literals are charged separately so the Table III comparison
(original vs power-managed design, where the PM controller is *more
complex*) has the right ingredients.  Absolute units are arbitrary; all
reproduced quantities are ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.ops import ResourceClass
from repro.sched.resources import Allocation

# Area units per execution unit of each class (8-bit datapath flavour).
FU_AREA: dict[ResourceClass, int] = {
    ResourceClass.MUX: 12,
    ResourceClass.COMP: 48,
    ResourceClass.ADD: 36,
    ResourceClass.SUB: 36,
    ResourceClass.MUL: 240,
    ResourceClass.LOGIC: 24,
}

REGISTER_AREA = 10       # one datapath-width register
INTERCONNECT_MUX_AREA = 4  # per steered input of an operand multiplexor
CONTROLLER_LITERAL_AREA = 2  # per literal in the control-logic expressions


def allocation_area(allocation: Allocation) -> int:
    """Area of the execution units alone."""
    return sum(FU_AREA[cls] * n for cls, n in allocation.counts.items())


@dataclass(frozen=True)
class AreaBreakdown:
    """Datapath + controller area of one synthesized design."""

    functional_units: int
    registers: int
    interconnect: int
    controller: int

    @property
    def datapath(self) -> int:
        return self.functional_units + self.registers + self.interconnect

    @property
    def total(self) -> int:
        return self.datapath + self.controller


def area_ratio(new: AreaBreakdown | int, orig: AreaBreakdown | int) -> float:
    """Table II/III 'Area Incr.' column: new / original."""
    new_total = new.total if isinstance(new, AreaBreakdown) else new
    orig_total = orig.total if isinstance(orig, AreaBreakdown) else orig
    if orig_total == 0:
        raise ValueError("original area is zero")
    return new_total / orig_total
