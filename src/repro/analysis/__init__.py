"""Analyses: circuit statistics, area model, mutual exclusion."""

from repro.analysis.area import (
    AreaBreakdown,
    CONTROLLER_LITERAL_AREA,
    FU_AREA,
    INTERCONNECT_MUX_AREA,
    REGISTER_AREA,
    allocation_area,
    area_ratio,
)
from repro.analysis.condition_graph import (
    ConditionGraph,
    ConditionSet,
    Relation,
    build_condition_graph,
)
from repro.analysis.mutex import (
    are_mutually_exclusive,
    can_share,
    guard_requirements,
    mutually_exclusive_pairs,
)
from repro.analysis.stats import CircuitStats, circuit_stats
from repro.analysis.verify_gating import (
    GatingUnsoundError,
    is_gating_sound,
    verify_gating,
)

__all__ = [
    "AreaBreakdown",
    "ConditionGraph",
    "ConditionSet",
    "Relation",
    "build_condition_graph",
    "CONTROLLER_LITERAL_AREA",
    "CircuitStats",
    "FU_AREA",
    "INTERCONNECT_MUX_AREA",
    "REGISTER_AREA",
    "allocation_area",
    "area_ratio",
    "are_mutually_exclusive",
    "can_share",
    "GatingUnsoundError",
    "circuit_stats",
    "is_gating_sound",
    "verify_gating",
    "guard_requirements",
    "mutually_exclusive_pairs",
]
