"""Condition graphs (Juan, Chaiyakul & Gajski, ICCAD'94 — the paper's [5]).

A hierarchical representation of the conditions under which each operation
executes, built from multiplexor nesting: every node carries a *condition
set* — the conjunction of ``(select driver, value)`` literals that must
hold for its result to be consumed.  The structure answers the relational
queries the classical mutual-exclusiveness literature uses:

* ``disjoint(a, b)``  — never both needed (sharable / paper's §II-C);
* ``subsumes(a, b)``  — whenever b is needed, a is too;
* ``independent(a, b)`` — conditions constrain different drivers.

This generalizes :mod:`repro.analysis.mutex` (which answers only
disjointness) and gives the PM pass's gating a second, independently
derived source of truth — the test suite cross-checks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.cones import compute_all_cones
from repro.ir.graph import CDFG


class Relation(Enum):
    DISJOINT = "disjoint"        # condition sets contradict
    EQUAL = "equal"              # identical condition sets
    A_SUBSUMES_B = "a-subsumes-b"  # a's conditions are a subset of b's
    B_SUBSUMES_A = "b-subsumes-a"
    OVERLAPPING = "overlapping"  # compatible, neither contains the other


@dataclass(frozen=True)
class ConditionSet:
    """Conjunction of (driver, value) literals; empty = unconditional."""

    literals: frozenset[tuple[int, int]] = frozenset()

    @property
    def is_unconditional(self) -> bool:
        return not self.literals

    def contradicts(self, other: "ConditionSet") -> bool:
        """True if no assignment satisfies both conjunctions.

        A self-contradictory set (dead code: the same driver required to
        be 0 and 1) contradicts everything, itself included.
        """
        seen: dict[int, int] = {}
        for driver, value in self.literals | other.literals:
            if seen.setdefault(driver, value) != value:
                return True
        return False

    def conjoin(self, other: "ConditionSet") -> "ConditionSet | None":
        """Conjunction, or None if contradictory."""
        if self.contradicts(other):
            return None
        return ConditionSet(self.literals | other.literals)


@dataclass
class ConditionGraph:
    """Per-operation condition sets for one CDFG."""

    graph: CDFG
    conditions: dict[int, ConditionSet] = field(default_factory=dict)

    def condition_of(self, nid: int) -> ConditionSet:
        return self.conditions.get(nid, ConditionSet())

    def relation(self, a: int, b: int) -> Relation:
        ca, cb = self.condition_of(a), self.condition_of(b)
        if ca.contradicts(cb):
            return Relation.DISJOINT
        if ca.literals == cb.literals:
            return Relation.EQUAL
        if ca.literals <= cb.literals:
            return Relation.A_SUBSUMES_B
        if cb.literals <= ca.literals:
            return Relation.B_SUBSUMES_A
        return Relation.OVERLAPPING

    def disjoint(self, a: int, b: int) -> bool:
        return self.relation(a, b) is Relation.DISJOINT

    def execution_probability(self, nid: int, p_one: float = 0.5) -> float:
        """Probability the op is needed, assuming independent drivers."""
        prob = 1.0
        for _driver, value in self.condition_of(nid).literals:
            prob *= p_one if value == 1 else 1.0 - p_one
        return prob


def build_condition_graph(graph: CDFG) -> ConditionGraph:
    """Derive condition sets from every MUX's shut-down cones.

    An op in the side-``s`` cone of a mux gains the literal
    ``(select driver, s)``; literals accumulate across nested muxes.
    Contradictory accumulation (op needed under c=0 by one mux and c=1 by
    another) marks dead code — the condition set keeps both literals and
    ``contradicts(self)`` callers observe the impossibility via
    probability 0 through :meth:`execution_probability` consumers.
    """
    cg = ConditionGraph(graph=graph)
    literal_sets: dict[int, set[tuple[int, int]]] = {}
    for mux_id, cones in compute_all_cones(graph).items():
        driver = graph.node(mux_id).select_operand
        for side in (0, 1):
            for nid in cones.shutdown[side]:
                literal_sets.setdefault(nid, set()).add((driver, side))
    cg.conditions = {
        nid: ConditionSet(frozenset(literals))
        for nid, literals in literal_sets.items()
    }
    return cg
