"""Circuit statistics (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.ops import ResourceClass
from repro.sched.timing import critical_path_length


@dataclass(frozen=True)
class CircuitStats:
    """Measured counterpart of a paper Table I row."""

    name: str
    critical_path: int
    mux: int
    comp: int
    add: int
    sub: int
    mul: int

    def as_row(self) -> tuple:
        return (self.name, self.critical_path, self.mux, self.comp,
                self.add, self.sub, self.mul)


def circuit_stats(graph: CDFG) -> CircuitStats:
    """Critical path (minimum control steps) and operation counts."""
    counts = {cls: 0 for cls in ResourceClass}
    for node in graph.operations():
        counts[node.resource] += 1
    return CircuitStats(
        name=graph.name,
        critical_path=critical_path_length(graph),
        mux=counts[ResourceClass.MUX],
        comp=counts[ResourceClass.COMP],
        add=counts[ResourceClass.ADD],
        sub=counts[ResourceClass.SUB],
        mul=counts[ResourceClass.MUL],
    )
