"""Mutually exclusive operation identification (paper §II-C).

Two operations are mutually exclusive when, whatever the inputs, the result
of only one of them is used.  In CDFG terms: they sit in *opposite* shut-
down cones of the same multiplexor, or more generally their accumulated
guard requirements contradict on some shared select driver.

The paper points out its power-management view is *more general* than the
classical resource-sharing use (ops need not be identical), but the same
analysis enables the classical optimization too: :func:`can_share` answers
whether two operations of one resource class may share an execution unit in
the same control step, which the binding stage exploits.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.cones import compute_all_cones
from repro.ir.graph import CDFG


def guard_requirements(graph: CDFG) -> dict[int, dict[int, set[int]]]:
    """For every node: select-driver id -> set of required select values,
    derived from *every* mux cone (independent of PM selection)."""
    requirements: dict[int, dict[int, set[int]]] = {}
    for mux_id, cones in compute_all_cones(graph).items():
        driver = graph.node(mux_id).select_operand
        for side in (0, 1):
            for nid in cones.shutdown[side]:
                req = requirements.setdefault(nid, {})
                req.setdefault(driver, set()).add(side)
    return requirements


def mutually_exclusive_pairs(graph: CDFG) -> set[frozenset[int]]:
    """All unordered pairs of schedulable ops that can never both be needed."""
    requirements = guard_requirements(graph)
    ops = [n.nid for n in graph.operations() if n.nid in requirements]
    pairs: set[frozenset[int]] = set()
    for a, b in combinations(ops, 2):
        if are_mutually_exclusive(graph, a, b, requirements):
            pairs.add(frozenset((a, b)))
    return pairs


def are_mutually_exclusive(
    graph: CDFG,
    a: int,
    b: int,
    requirements: dict[int, dict[int, set[int]]] | None = None,
) -> bool:
    """True if ops ``a`` and ``b`` are needed under contradictory conditions.

    Sufficient condition: some select driver must be 0 for one op and 1 for
    the other (sound, not complete — correlated conditions computed by
    different drivers are not detected, same as the condition-graph methods
    the paper cites).
    """
    if requirements is None:
        requirements = guard_requirements(graph)
    req_a = requirements.get(a, {})
    req_b = requirements.get(b, {})
    for driver, sides_a in req_a.items():
        sides_b = req_b.get(driver)
        if sides_b is None:
            continue
        # Required values are ANDed per node; if each node pins the driver
        # to a single, different value the two can never coexist.
        if len(sides_a) == 1 and len(sides_b) == 1 and sides_a != sides_b:
            return True
    return False


def can_share(graph: CDFG, a: int, b: int) -> bool:
    """May ``a`` and ``b`` share one execution unit in the same step?"""
    node_a, node_b = graph.node(a), graph.node(b)
    if not (node_a.is_schedulable and node_b.is_schedulable):
        return False
    if node_a.resource != node_b.resource:
        return False
    return are_mutually_exclusive(graph, a, b)
