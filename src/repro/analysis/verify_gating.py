"""Gating soundness verification.

Power management is only correct if a shut-down operation can never
influence an output: whenever a gated op's guard is false, every path from
the op to any output must pass through a multiplexor input that the
(guard-satisfying) select values de-select, or through another op that is
itself disabled under the same assignment.

``verify_gating`` checks this *structurally* for every gated operation by
propagating a taint from the op through the graph under each falsifying
assignment of its guard drivers: a data edge propagates taint unless it
enters a MUX data port that the assignment de-selects; select ports always
propagate (a tainted select means a tainted mux output).  Ops whose own
guard is false under the assignment produce no taint of their own but
still forward tainted operands — conservatively modelling stale registers.

This is the safety argument of the paper made executable; the flow runs it
after every PM pass in tests, and ``repro.flow.synthesize`` exposes it via
``verify=True``.
"""

from __future__ import annotations

from itertools import product

from repro.core.pm_pass import PMResult
from repro.ir.graph import CDFG
from repro.ir.node import MUX_IN0, MUX_IN1, MUX_SELECT
from repro.ir.ops import Op

# NOTE: repro.rtl.guards is imported lazily inside the functions below;
# importing it at module level would cycle through repro.rtl -> repro.alloc
# -> repro.analysis during package initialization.


class GatingUnsoundError(Exception):
    """A gated operation could reach an output while shut down."""


def _falsifying_assignments(guard) -> list[dict[int, int]]:
    """All driver assignments under which the guard is false.

    Enumerates the guard's own drivers only (2^k for k terms; cones are
    shallow in practice).  Every returned assignment fixes each driver to
    0 or 1.
    """
    drivers = [t.driver for t in guard.terms]
    required = {t.driver: t.value for t in guard.terms}
    assignments = []
    for values in product((0, 1), repeat=len(drivers)):
        assignment = dict(zip(drivers, values))
        if any(assignment[d] != required[d] for d in drivers):
            assignments.append(assignment)
    return assignments


def _taint_reaches_output(graph: CDFG, source: int,
                          assignment: dict[int, int]) -> int | None:
    """First output node reached by taint from ``source``, or None.

    ``assignment`` fixes some select-driver values; MUX nodes whose select
    driver is assigned block taint arriving on the de-selected data port.
    """
    tainted: set[int] = {source}
    frontier = [source]
    while frontier:
        nid = frontier.pop()
        for consumer_id in graph.data_succs(nid):
            consumer = graph.node(consumer_id)
            if consumer_id in tainted:
                continue
            if consumer.is_mux:
                select_driver = consumer.select_operand
                chosen = assignment.get(select_driver)
                if chosen is not None and select_driver not in tainted:
                    # The select value is known and clean: taint on the
                    # de-selected data port is blocked.
                    blocked_port = MUX_IN1 if chosen == 0 else MUX_IN0
                    arrives_only_blocked = all(
                        consumer.operands[port] != nid
                        for port in (MUX_SELECT, MUX_IN0, MUX_IN1)
                        if port != blocked_port
                    )
                    if arrives_only_blocked:
                        continue
            if consumer.op is Op.OUTPUT:
                return consumer_id
            tainted.add(consumer_id)
            frontier.append(consumer_id)
    return None


def verify_gating(result: PMResult) -> None:
    """Raise :class:`GatingUnsoundError` if any gated op could corrupt an
    output while disabled; return silently when gating is sound."""
    from repro.rtl.guards import all_guards

    graph = result.graph
    guards = all_guards(result)
    for nid in sorted(result.gating):
        guard = guards[nid]
        if guard.never:
            continue  # never loaded: stale forever, must still be blocked
        for assignment in _falsifying_assignments(guard):
            output = _taint_reaches_output(graph, nid, assignment)
            if output is not None:
                raise GatingUnsoundError(
                    f"gated op {graph.node(nid).label()} reaches output "
                    f"{graph.node(output).label()} under select assignment "
                    f"{assignment} that disables it"
                )


def is_gating_sound(result: PMResult) -> bool:
    """Boolean wrapper around :func:`verify_gating`."""
    try:
        verify_gating(result)
    except GatingUnsoundError:
        return False
    return True
