"""Guard expressions: the conditions under which a gated operation's input
latches are loaded.

The PM pass records per-node guards as ``(mux, side)`` pairs; the
controller needs them in terms of *stored condition values*: the mux's
select driver register must hold ``side``.  A guard is a conjunction of
such terms.  Guards over constant drivers fold away at build time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.lifetimes import resolve_source
from repro.core.pm_pass import PMResult
from repro.ir.graph import CDFG
from repro.ir.ops import Op


@dataclass(frozen=True)
class GuardTerm:
    """One conjunct: node ``driver``'s value must equal ``value`` (0/1)."""

    driver: int
    value: int


@dataclass(frozen=True)
class Guard:
    """Conjunction of terms; empty terms = always load (unguarded).

    ``never=True`` marks a contradiction (the op is provably never needed);
    synthesis keeps the op but its latches are never enabled.
    """

    terms: tuple[GuardTerm, ...] = ()
    never: bool = False

    @property
    def is_unconditional(self) -> bool:
        return not self.terms and not self.never

    @property
    def literal_count(self) -> int:
        """Literals this guard contributes to the controller equations."""
        return 0 if self.never else len(self.terms)

    def evaluate(self, values: dict[int, int]) -> bool:
        """True if the guarded op should execute given driver ``values``.

        Drivers produce comparison results; any nonzero value counts as 1.
        """
        if self.never:
            return False
        for term in self.terms:
            actual = 1 if values.get(term.driver, 0) else 0
            if actual != term.value:
                return False
        return True

    def describe(self, graph: CDFG) -> str:
        if self.never:
            return "never"
        if not self.terms:
            return "always"
        return " & ".join(
            f"{graph.node(t.driver).label()}={t.value}" for t in self.terms
        )


def _required_terms(result: PMResult, nid: int,
                    memo: dict[int, dict[int, int] | None]) -> dict[int, int] | None:
    """Driver -> required value map for ``nid``, transitively closed.

    If a guard's select driver is itself a gated operation, its condition
    register is only valid when the driver's own guard held — so the
    driver's requirements are conjoined in.  Returns None for a
    contradiction (the op is never needed).
    """
    if nid in memo:
        return memo[nid]
    memo[nid] = {}  # break (impossible) cycles defensively
    graph = result.graph
    required: dict[int, int] = {}

    def merge(extra: dict[int, int] | None) -> bool:
        if extra is None:
            return False
        for driver, value in extra.items():
            if driver in required and required[driver] != value:
                return False
            required[driver] = value
        return True

    for mux_id, side in result.gating.get(nid, ()):
        driver = graph.node(mux_id).select_operand
        driver_node = graph.node(driver)
        if driver_node.op is Op.CONST:
            actual = 1 if driver_node.value else 0
            if actual != side:
                memo[nid] = None
                return None
            continue  # constant condition satisfied: fold the term away
        if not merge({driver: side}):
            memo[nid] = None
            return None
        # Transitive validity: the driver's value is only trustworthy when
        # the driver itself was computed.  Resolve wiring (e.g. a shifted
        # condition) down to the operation that actually latches the value.
        root = resolve_source(graph, driver).root
        if root in result.gating and not merge(
                _required_terms(result, root, memo)):
            memo[nid] = None
            return None

    memo[nid] = required
    return required


def guard_of(result: PMResult, nid: int,
             _memo: dict[int, dict[int, int] | None] | None = None) -> Guard:
    """Build the load guard of node ``nid`` from the PM pass's gating map."""
    memo = _memo if _memo is not None else {}
    required = _required_terms(result, nid, memo)
    if required is None:
        return Guard(never=True)
    terms = tuple(GuardTerm(driver, value)
                  for driver, value in sorted(required.items()))
    return Guard(terms=terms)


def all_guards(result: PMResult) -> dict[int, Guard]:
    """Guard for every schedulable operation (unconditional if ungated)."""
    memo: dict[int, dict[int, int] | None] = {}
    return {
        node.nid: guard_of(result, node.nid, memo)
        for node in result.graph.operations()
    }
