"""Controller (FSM) generation.

The controller is a Moore machine with one state per control step.  Per
state it drives: result-register load enables (gated by guards for power-
managed ops — the paper's new controller routine), interconnect steering
selects, and input-register loads in state 0.

Complexity is measured in *literals* of the control equations: each load
or steering decode costs one state literal, and each guard term adds one
more.  The PM controller is therefore strictly more complex than the
baseline one — the effect the paper cites for Table III's slightly lower
savings — and the literal count feeds both the area and the power models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.fu_binding import Binding, FUInstance
from repro.alloc.interconnect import Interconnect
from repro.alloc.lifetimes import resolve_source
from repro.alloc.register_alloc import RegisterFile
from repro.rtl.guards import Guard


@dataclass(frozen=True)
class LoadSignal:
    """Load enable of one op's result register, active in one state."""

    op: int
    register: int            # Register.index
    state: int               # control step during which the load fires
    guard: Guard


@dataclass(frozen=True)
class SteerSignal:
    """Interconnect-mux select for (unit, port) during one state."""

    op: int
    unit: FUInstance
    port: int
    state: int
    source_index: int        # index into the port's source list


@dataclass
class Controller:
    """All control signals plus complexity accounting."""

    n_states: int
    loads: list[LoadSignal] = field(default_factory=list)
    steers: list[SteerSignal] = field(default_factory=list)
    input_loads: int = 0     # input registers, loaded in state 0

    def loads_in_state(self, state: int) -> list[LoadSignal]:
        return [s for s in self.loads if s.state == state]

    def steers_in_state(self, state: int) -> list[SteerSignal]:
        return [s for s in self.steers if s.state == state]

    @property
    def literal_count(self) -> int:
        """Total literals of the control equations (area/power driver)."""
        total = self.input_loads  # one decode each in state 0
        for load in self.loads:
            total += 1 + load.guard.literal_count
        for steer in self.steers:
            total += 1
        return total


def build_controller(
    binding: Binding,
    registers: RegisterFile,
    interconnect: Interconnect,
    guards: dict[int, Guard],
) -> Controller:
    """Derive the FSM signals from schedule, binding and guards."""
    schedule = binding.schedule
    graph = schedule.graph
    controller = Controller(n_states=schedule.n_steps)

    controller.input_loads = len(graph.inputs())

    for nid, unit in sorted(binding.assignment.items()):
        node = graph.node(nid)
        last_step = schedule.step_of(nid) + node.latency - 1
        guard = guards.get(nid, Guard())
        controller.loads.append(LoadSignal(
            op=nid,
            register=registers.register_of(nid).index,
            state=last_step,
            guard=guard,
        ))
        # Steering selects for every multi-source port the op uses.
        first_step = schedule.step_of(nid)
        for port in range(len(node.operands)):
            sources = interconnect.port_sources(unit, port)
            if len(sources) <= 1:
                continue
            ref = resolve_source(graph, node.operands[port])
            index = next(
                i for i, s in enumerate(sources) if s.source == ref
            )
            controller.steers.append(SteerSignal(
                op=nid, unit=unit, port=port, state=first_step,
                source_index=index,
            ))

    controller.loads.sort(key=lambda s: (s.state, s.register))
    controller.steers.sort(key=lambda s: (s.state, s.unit.name, s.port))
    return controller
