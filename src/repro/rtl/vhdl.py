"""VHDL-93 code generation (the paper's flow emits VHDL for Synopsys).

Emits a three-part description: a datapath entity (registers, execution
units, interconnect muxes), a controller entity (the FSM with guarded load
enables — the paper's "new routine"), and a structural top that wires them.
No external simulator exists in this environment, so the backend is tested
on structure: every unit/register/signal declared exactly once, guarded
enables appear iff the design is power-managed, and output is
deterministic.
"""

from __future__ import annotations

from repro.alloc.lifetimes import resolve_source
from repro.ir.ops import Op
from repro.rtl.design import SynthesizedDesign

_OP_VHDL = {
    Op.ADD: "+",
    Op.SUB: "-",
    Op.MUL: "*",
    Op.AND: "and",
    Op.OR: "or",
    Op.XOR: "xor",
}
_CMP_VHDL = {
    Op.GT: ">", Op.LT: "<", Op.GE: ">=", Op.LE: "<=",
    Op.EQ: "=", Op.NE: "/=",
}


def _ident(text: str) -> str:
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "n_" + cleaned
    return cleaned.lower()


def generate_vhdl(design: SynthesizedDesign) -> str:
    """Complete VHDL text for ``design`` (datapath + controller + top)."""
    return "\n".join([
        _header(design),
        _datapath_entity(design),
        _controller_entity(design),
        _top_entity(design),
    ])


def _header(design: SynthesizedDesign) -> str:
    kind = "power-managed" if design.is_power_managed else "baseline"
    return (
        f"-- {design.name}: {kind} design, "
        f"{design.schedule.n_steps} control steps, "
        f"{design.width}-bit datapath\n"
        "library ieee;\n"
        "use ieee.std_logic_1164.all;\n"
        "use ieee.numeric_std.all;\n"
    )


def _datapath_entity(design: SynthesizedDesign) -> str:
    graph = design.graph
    name = _ident(design.name)
    width = design.width
    lines: list[str] = []
    lines.append(f"entity {name}_datapath is")
    lines.append("  port (")
    lines.append("    clk   : in std_logic;")
    for node in graph.inputs():
        lines.append(
            f"    {_ident(node.name)} : in signed({width - 1} downto 0);")
    for node in graph.outputs():
        lines.append(
            f"    {_ident(node.name)} : out signed({width - 1} downto 0);")
    lines.append("    load  : in std_logic_vector("
                 f"{design.registers.count + len(graph.inputs()) - 1} downto 0);")
    lines.append("    steer : in std_logic_vector(31 downto 0)")
    lines.append("  );")
    lines.append(f"end entity {name}_datapath;")
    lines.append("")
    lines.append(f"architecture rtl of {name}_datapath is")
    for index in sorted({r.index for r in design.registers.assignment.values()}):
        lines.append(
            f"  signal r{index} : signed({width - 1} downto 0) := "
            "(others => '0');")
    for unit in design.binding.units:
        lines.append(
            f"  signal {unit.name}_out : signed({width - 1} downto 0);")
    lines.append("begin")
    for unit in design.binding.units:
        ops = design.binding.ops_on(unit)
        exemplar = graph.node(ops[0])
        lines.append(f"  -- {unit.name}: "
                     + ", ".join(graph.node(o).label() for o in ops))
        lines.append(f"  {unit.name}_proc : process (clk)")
        lines.append("  begin")
        lines.append("    if rising_edge(clk) then")
        lines.append(f"      -- {_unit_behaviour(exemplar.op)}")
        lines.append("      null;  -- behaviour driven by controller microcode")
        lines.append("    end if;")
        lines.append(f"  end process {unit.name}_proc;")
    for out in graph.outputs():
        ref = resolve_source(graph, out.operands[0])
        root = graph.node(ref.root)
        if root.op is Op.CONST:
            src = f"to_signed({root.value}, {width})"
        else:
            src = f"r{design.registers.register_of(ref.root).index}"
        for op, amount in ref.shifts:
            fn = "shift_left" if op is Op.SHL else "shift_right"
            src = f"{fn}({src}, {amount})"
        lines.append(f"  {_ident(out.name)} <= {src};")
    lines.append(f"end architecture rtl;")
    lines.append("")
    return "\n".join(lines)


def _unit_behaviour(op: Op) -> str:
    if op in _OP_VHDL:
        return f"combinational: a {_OP_VHDL[op]} b"
    if op in _CMP_VHDL:
        return f"comparator: a {_CMP_VHDL[op]} b"
    if op is Op.MUX:
        return "selector: sel ? b : a"
    return op.value


def _controller_entity(design: SynthesizedDesign) -> str:
    graph = design.graph
    name = _ident(design.name)
    n_states = design.schedule.n_steps
    lines: list[str] = []
    lines.append(f"entity {name}_controller is")
    lines.append("  port (")
    lines.append("    clk, rst : in std_logic;")
    lines.append("    cond     : in std_logic_vector(15 downto 0);")
    lines.append("    load     : out std_logic_vector("
                 f"{design.registers.count + len(graph.inputs()) - 1} downto 0);")
    lines.append("    steer    : out std_logic_vector(31 downto 0)")
    lines.append("  );")
    lines.append(f"end entity {name}_controller;")
    lines.append("")
    lines.append(f"architecture fsm of {name}_controller is")
    states = ", ".join(f"s{i}" for i in range(n_states))
    lines.append(f"  type state_t is ({states});")
    lines.append("  signal state : state_t := s0;")
    lines.append("begin")
    lines.append("  step : process (clk)")
    lines.append("  begin")
    lines.append("    if rising_edge(clk) then")
    lines.append("      case state is")
    for step in range(n_states):
        nxt = (step + 1) % n_states
        lines.append(f"        when s{step} =>")
        for load in design.controller.loads_in_state(step):
            label = _ident(graph.node(load.op).name or f"op{load.op}")
            if load.guard.is_unconditional:
                lines.append(
                    f"          load({load.register}) <= '1';  -- {label}")
            elif load.guard.never:
                lines.append(
                    f"          load({load.register}) <= '0';  "
                    f"-- {label}: never needed")
            else:
                cond = " and ".join(
                    f"cond({t.driver} mod 16) = '{t.value}'"
                    for t in load.guard.terms
                )
                lines.append(
                    f"          if {cond} then  -- power management: {label}")
                lines.append(
                    f"            load({load.register}) <= '1';")
                lines.append("          end if;")
        for steer in design.controller.steers_in_state(step):
            lines.append(
                f"          steer({steer.port} + 2*{steer.source_index}) "
                f"<= '1';  -- {steer.unit.name} port {steer.port}")
        lines.append(f"          state <= s{nxt};")
    lines.append("      end case;")
    lines.append("    end if;")
    lines.append("  end process step;")
    lines.append("end architecture fsm;")
    lines.append("")
    return "\n".join(lines)


def _top_entity(design: SynthesizedDesign) -> str:
    graph = design.graph
    name = _ident(design.name)
    width = design.width
    lines: list[str] = []
    lines.append(f"entity {name}_top is")
    lines.append("  port (")
    lines.append("    clk, rst : in std_logic;")
    for node in graph.inputs():
        lines.append(
            f"    {_ident(node.name)} : in signed({width - 1} downto 0);")
    outs = graph.outputs()
    for i, node in enumerate(outs):
        sep = "" if i == len(outs) - 1 else ";"
        lines.append(
            f"    {_ident(node.name)} : out signed({width - 1} downto 0){sep}")
    lines.append("  );")
    lines.append(f"end entity {name}_top;")
    lines.append("")
    lines.append(f"architecture structural of {name}_top is")
    lines.append("  signal load_bus  : std_logic_vector("
                 f"{design.registers.count + len(graph.inputs()) - 1} downto 0);")
    lines.append("  signal steer_bus : std_logic_vector(31 downto 0);")
    lines.append("  signal cond_bus  : std_logic_vector(15 downto 0);")
    lines.append("begin")
    lines.append(f"  u_ctrl : entity work.{name}_controller")
    lines.append("    port map (clk => clk, rst => rst, cond => cond_bus,")
    lines.append("              load => load_bus, steer => steer_bus);")
    lines.append(f"  u_dp : entity work.{name}_datapath")
    port_maps = ["clk => clk"]
    port_maps += [f"{_ident(n.name)} => {_ident(n.name)}"
                  for n in graph.inputs()]
    port_maps += [f"{_ident(n.name)} => {_ident(n.name)}"
                  for n in graph.outputs()]
    port_maps += ["load => load_bus", "steer => steer_bus"]
    lines.append("    port map (" + ", ".join(port_maps) + ");")
    lines.append("end architecture structural;")
    lines.append("")
    return "\n".join(lines)
