"""The synthesized design: everything downstream of scheduling in one place.

``elaborate`` assembles binding, register allocation, interconnect,
controller and the area breakdown for a scheduled (and optionally
power-managed) CDFG — the object the RTL simulator executes and the VHDL
backend prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.fu_binding import Binding, bind_operations
from repro.alloc.interconnect import Interconnect, build_interconnect
from repro.alloc.register_alloc import RegisterFile, allocate_registers
from repro.analysis.area import (
    AreaBreakdown,
    CONTROLLER_LITERAL_AREA,
    FU_AREA,
    REGISTER_AREA,
)
from repro.core.pm_pass import PMResult
from repro.rtl.controller import Controller, build_controller
from repro.rtl.guards import Guard, all_guards
from repro.sched.schedule import Schedule


@dataclass
class SynthesizedDesign:
    """A complete RTL design: datapath structure + FSM controller."""

    name: str
    pm: PMResult
    schedule: Schedule
    binding: Binding
    registers: RegisterFile
    interconnect: Interconnect
    controller: Controller
    guards: dict[int, Guard]
    width: int = 8

    @property
    def graph(self):
        return self.schedule.graph

    @property
    def is_power_managed(self) -> bool:
        return any(not g.is_unconditional for g in self.guards.values())

    def area(self) -> AreaBreakdown:
        fu_area = sum(FU_AREA[unit.resource] for unit in self.binding.units)
        reg_area = REGISTER_AREA * (
            self.registers.count + len(self.graph.inputs())
        )
        return AreaBreakdown(
            functional_units=fu_area,
            registers=reg_area,
            interconnect=self.interconnect.area(),
            controller=CONTROLLER_LITERAL_AREA * self.controller.literal_count,
        )

    def summary(self) -> str:
        area = self.area()
        units = ", ".join(u.name for u in self.binding.units)
        return (
            f"design {self.name!r}: {self.schedule.n_steps} steps, "
            f"{len(self.binding.units)} units [{units}], "
            f"{self.registers.count} value registers, "
            f"{self.controller.literal_count} controller literals, "
            f"area {area.total} ({'PM' if self.is_power_managed else 'baseline'})"
        )


def elaborate(pm: PMResult, schedule: Schedule, width: int = 8,
              mutex_sharing: bool = False,
              binding: Binding | None = None,
              registers: RegisterFile | None = None) -> SynthesizedDesign:
    """Bind, allocate, interconnect and control a scheduled PM result.

    ``binding``/``registers`` may be passed precomputed (the pipeline's
    allocate stage does, so they can be cached independently); otherwise
    they are derived here.
    """
    if binding is None:
        binding = bind_operations(schedule, mutex_sharing=mutex_sharing)
    if registers is None:
        registers = allocate_registers(schedule)
    interconnect = build_interconnect(binding, registers)
    guards = all_guards(pm)
    controller = build_controller(binding, registers, interconnect, guards)
    return SynthesizedDesign(
        name=schedule.graph.name,
        pm=pm,
        schedule=schedule,
        binding=binding,
        registers=registers,
        interconnect=interconnect,
        controller=controller,
        guards=guards,
        width=width,
    )
