"""RTL generation: guards, controller FSM, design assembly, VHDL backend."""

from repro.rtl.controller import Controller, LoadSignal, SteerSignal, build_controller
from repro.rtl.design import SynthesizedDesign, elaborate
from repro.rtl.guards import Guard, GuardTerm, all_guards, guard_of
from repro.rtl.vhdl import generate_vhdl

__all__ = [
    "Controller",
    "Guard",
    "GuardTerm",
    "LoadSignal",
    "SteerSignal",
    "SynthesizedDesign",
    "all_guards",
    "build_controller",
    "elaborate",
    "generate_vhdl",
    "guard_of",
]
