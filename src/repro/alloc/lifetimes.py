"""Value lifetime analysis for register allocation.

A value is *born* at its producer's finish step (latched on the clock edge
entering that step) and must be held through its last read.  Zero-latency
wiring nodes (constant shifts, pass-throughs) do not latch anything: a
consumer reading through them reads the underlying root value's register,
so their reads extend the root's lifetime.

Outputs are held to the end of the computation (step ``n_steps``);
constants occupy no register at all (hardwired).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import CDFG
from repro.ir.ops import Op, is_wiring
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class SourceRef:
    """An operand source resolved through wiring.

    ``root`` is the id of the node whose register (or input port /
    hardwired constant) actually feeds the consumer; ``shifts`` lists the
    (op, amount) wiring transforms applied on the way, in signal order.
    """

    root: int
    shifts: tuple[tuple[Op, int], ...] = ()


def resolve_source(graph: CDFG, nid: int) -> SourceRef:
    """Follow wiring nodes down to the registered/structural root."""
    shifts: list[tuple[Op, int]] = []
    current = nid
    while True:
        node = graph.node(current)
        if node.op is Op.PASS:
            current = node.operands[0]
        elif node.op in (Op.SHL, Op.SHR):
            amount = graph.node(node.operands[1])
            shifts.append((node.op, amount.value))
            current = node.operands[0]
        else:
            return SourceRef(root=current, shifts=tuple(reversed(shifts)))


@dataclass(frozen=True)
class Lifetime:
    """Half-open-ish occupancy: the register is busy on steps
    [born, last_read] inclusive."""

    value: int       # root node id
    born: int
    last_read: int

    def conflicts(self, other: "Lifetime") -> bool:
        return not (self.last_read < other.born or other.last_read < self.born)


def value_lifetimes(schedule: Schedule) -> dict[int, Lifetime]:
    """Lifetime of every register-backed value (inputs + schedulable ops)."""
    graph = schedule.graph
    needs_register = {
        n.nid for n in graph
        if n.op is Op.INPUT or n.is_schedulable
    }
    born = {nid: schedule.finish_of(nid) if graph.node(nid).is_schedulable
            else 0
            for nid in needs_register}
    last_read = dict(born)  # minimum occupancy: the step the value appears

    for consumer in graph:
        if consumer.op is Op.CONST or consumer.op is Op.INPUT:
            continue
        read_step = schedule.step_of(consumer.nid)
        if consumer.op is Op.OUTPUT:
            read_step = schedule.n_steps
        for operand in consumer.operands:
            root = resolve_source(graph, operand).root
            if root in needs_register:
                last_read[root] = max(last_read[root], read_step)

    return {
        nid: Lifetime(value=nid, born=born[nid], last_read=last_read[nid])
        for nid in needs_register
    }
