"""Execution-unit binding.

Assign every scheduled operation to a concrete functional-unit instance of
its resource class such that no two ops occupy one unit in the same control
step (modulo II when pipelined).  Greedy interval assignment is optimal
here because same-class ops form an interval conflict graph.

``mutex_sharing=True`` additionally lets two operations share a unit in the
*same* step when they are mutually exclusive (paper §II-C's classical use
of exclusiveness) — off by default, since the paper's flow keeps them
separate and relies on input-latch gating instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.mutex import are_mutually_exclusive, guard_requirements
from repro.ir.ops import ResourceClass
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class FUInstance:
    """One physical execution unit."""

    resource: ResourceClass
    index: int

    @property
    def name(self) -> str:
        cls = self.resource.name.lower()
        return f"{cls}{self.index}"


@dataclass
class Binding:
    """Operation -> functional unit assignment."""

    schedule: Schedule
    assignment: dict[int, FUInstance] = field(default_factory=dict)

    @property
    def units(self) -> list[FUInstance]:
        return sorted(set(self.assignment.values()),
                      key=lambda u: (u.resource.value, u.index))

    def ops_on(self, unit: FUInstance) -> list[int]:
        return sorted(
            (nid for nid, u in self.assignment.items() if u == unit),
            key=lambda nid: self.schedule.step_of(nid),
        )

    def unit_of(self, nid: int) -> FUInstance:
        try:
            return self.assignment[nid]
        except KeyError:
            raise KeyError(f"op {nid} is not bound") from None

    def verify(self, mutex_sharing: bool = False) -> None:
        """Raise ValueError if two non-sharable ops collide on a unit."""
        graph = self.schedule.graph
        ii = self.schedule.initiation_interval
        requirements = guard_requirements(graph) if mutex_sharing else None
        occupied: dict[tuple[FUInstance, int], int] = {}
        for nid, unit in self.assignment.items():
            node = graph.node(nid)
            if node.resource != unit.resource:
                raise ValueError(
                    f"op {node.label()} bound to {unit.name} of wrong class")
            start = self.schedule.step_of(nid)
            for step in range(start, start + node.latency):
                slot = step % ii if ii else step
                key = (unit, slot)
                if key in occupied:
                    other = occupied[key]
                    if not (mutex_sharing and are_mutually_exclusive(
                            graph, nid, other, requirements)):
                        raise ValueError(
                            f"{unit.name} double-booked at step {slot}: "
                            f"{node.label()} vs {graph.node(other).label()}")
                occupied[key] = nid


def bind_operations(schedule: Schedule, mutex_sharing: bool = False) -> Binding:
    """Bind every op to a unit, creating as few instances as possible."""
    graph = schedule.graph
    ii = schedule.initiation_interval
    binding = Binding(schedule=schedule)
    requirements = guard_requirements(graph) if mutex_sharing else None

    by_class: dict[ResourceClass, list[int]] = {}
    for node in graph.operations():
        by_class.setdefault(node.resource, []).append(node.nid)

    for resource, ops in sorted(by_class.items(), key=lambda kv: kv[0].value):
        ops.sort(key=lambda nid: (schedule.step_of(nid), nid))
        # unit index -> {slot: op} occupancy
        units: list[dict[int, int]] = []
        for nid in ops:
            node = graph.node(nid)
            start = schedule.step_of(nid)
            slots = [(s % ii if ii else s)
                     for s in range(start, start + node.latency)]
            placed = False
            for index, occupancy in enumerate(units):
                conflict = False
                for slot in slots:
                    other = occupancy.get(slot)
                    if other is None:
                        continue
                    if mutex_sharing and are_mutually_exclusive(
                            graph, nid, other, requirements):
                        continue
                    conflict = True
                    break
                if not conflict:
                    for slot in slots:
                        occupancy.setdefault(slot, nid)
                    binding.assignment[nid] = FUInstance(resource, index)
                    placed = True
                    break
            if not placed:
                units.append({slot: nid for slot in slots})
                binding.assignment[nid] = FUInstance(resource, len(units) - 1)

    binding.verify(mutex_sharing=mutex_sharing)
    return binding
