"""Left-edge register allocation.

Classic channel-routing / register-binding algorithm: sort value lifetimes
by birth step, then greedily pack each into the first register whose
current occupant died earlier.  Optimal in register count for interval
conflicts, which value lifetimes are.

For pipelined schedules (II < n_steps) lifetimes of consecutive samples
overlap; we conservatively keep values of one sample in dedicated
registers (no modulo folding), which is correct and matches the paper's
observation that pipelining "may lead to some increase in the number of
registers".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.lifetimes import Lifetime, value_lifetimes
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class Register:
    index: int

    @property
    def name(self) -> str:
        return f"r{self.index}"


@dataclass
class RegisterFile:
    """Result of register allocation."""

    schedule: Schedule
    assignment: dict[int, Register] = field(default_factory=dict)
    lifetimes: dict[int, Lifetime] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(set(self.assignment.values()))

    def register_of(self, value: int) -> Register:
        try:
            return self.assignment[value]
        except KeyError:
            raise KeyError(f"value {value} has no register") from None

    def values_in(self, register: Register) -> list[int]:
        return sorted(
            (v for v, r in self.assignment.items() if r == register),
            key=lambda v: self.lifetimes[v].born,
        )

    def verify(self) -> None:
        """Raise ValueError if two values sharing a register overlap."""
        for register in set(self.assignment.values()):
            values = self.values_in(register)
            for earlier, later in zip(values, values[1:]):
                if self.lifetimes[earlier].conflicts(self.lifetimes[later]):
                    raise ValueError(
                        f"{register.name}: values {earlier} and {later} "
                        "have overlapping lifetimes"
                    )


def allocate_registers(schedule: Schedule) -> RegisterFile:
    """Left-edge allocation over the schedule's value lifetimes."""
    lifetimes = value_lifetimes(schedule)
    rf = RegisterFile(schedule=schedule, lifetimes=lifetimes)

    ordered = sorted(lifetimes.values(), key=lambda lt: (lt.born, lt.value))
    register_last_read: list[int] = []  # per register index
    for lifetime in ordered:
        placed = False
        for index, busy_until in enumerate(register_last_read):
            if busy_until < lifetime.born:
                register_last_read[index] = lifetime.last_read
                rf.assignment[lifetime.value] = Register(index)
                placed = True
                break
        if not placed:
            register_last_read.append(lifetime.last_read)
            rf.assignment[lifetime.value] = Register(len(register_last_read) - 1)

    rf.verify()
    return rf
