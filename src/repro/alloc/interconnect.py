"""Interconnect generation: operand multiplexors in front of execution units.

After binding, each functional unit's input port may be fed from several
registers over the schedule; a steering multiplexor per port selects the
right source each step.  The port's mux size (number of distinct sources)
drives the interconnect area term of the Table III comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.fu_binding import Binding, FUInstance
from repro.alloc.lifetimes import SourceRef, resolve_source
from repro.alloc.register_alloc import RegisterFile
from repro.analysis.area import INTERCONNECT_MUX_AREA
from repro.ir.ops import Op, arity


@dataclass(frozen=True)
class PortSource:
    """One selectable source of a unit input port."""

    source: SourceRef
    is_const: bool
    const_value: int | None = None


@dataclass
class Interconnect:
    """Per (unit, port) set of selectable sources."""

    sources: dict[tuple[FUInstance, int], list[PortSource]] = \
        field(default_factory=dict)

    def port_sources(self, unit: FUInstance, port: int) -> list[PortSource]:
        return self.sources.get((unit, port), [])

    def mux_inputs(self, unit: FUInstance, port: int) -> int:
        return len(self.port_sources(unit, port))

    def area(self) -> int:
        """Steered inputs beyond the first cost mux area."""
        total = 0
        for port_sources in self.sources.values():
            if len(port_sources) > 1:
                total += INTERCONNECT_MUX_AREA * len(port_sources)
        return total


def build_interconnect(binding: Binding, registers: RegisterFile) -> Interconnect:
    """Collect the distinct sources feeding every bound unit input port."""
    graph = binding.schedule.graph
    interconnect = Interconnect()
    for nid, unit in binding.assignment.items():
        node = graph.node(nid)
        for port in range(arity(node.op)):
            ref = resolve_source(graph, node.operands[port])
            root = graph.node(ref.root)
            if root.op is Op.CONST:
                entry = PortSource(source=ref, is_const=True,
                                   const_value=root.value)
            else:
                registers.register_of(ref.root)  # must exist
                entry = PortSource(source=ref, is_const=False)
            sources = interconnect.sources.setdefault((unit, port), [])
            if entry not in sources:
                sources.append(entry)
    return interconnect
