"""Allocation and binding: execution units, registers, interconnect."""

from repro.alloc.fu_binding import Binding, FUInstance, bind_operations
from repro.alloc.interconnect import Interconnect, PortSource, build_interconnect
from repro.alloc.lifetimes import (
    Lifetime,
    SourceRef,
    resolve_source,
    value_lifetimes,
)
from repro.alloc.register_alloc import Register, RegisterFile, allocate_registers

__all__ = [
    "Binding",
    "FUInstance",
    "Interconnect",
    "Lifetime",
    "PortSource",
    "Register",
    "RegisterFile",
    "SourceRef",
    "allocate_registers",
    "bind_operations",
    "build_interconnect",
    "resolve_source",
    "value_lifetimes",
]
