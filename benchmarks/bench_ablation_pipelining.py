"""Ablation: pipelining as a power-management enabler (paper §IV-B).

A k-stage pipeline keeps (or improves) throughput while adding control
steps — exactly the slack the PM pass needs.  For each circuit, compare:
the design at its critical path (no slack), and pipelined designs with the
same effective throughput but more total steps.  Report managed muxes,
datapath power reduction, and the resource cost of pipelining.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import build
from repro.core import apply_power_management
from repro.power import static_power
from repro.sched import PipelineSpec, critical_path_length, pipelined_minimize

CIRCUITS = ("dealer", "gcd", "vender")


def regenerate_pipelining_ablation():
    rows = []
    for name in CIRCUITS:
        graph = build(name)
        cp = critical_path_length(graph)
        for stages in (1, 2, 3):
            # k-stage pipeline over k*cp steps: same effective II = cp.
            n_steps = cp * stages
            spec = PipelineSpec(n_steps=n_steps, n_stages=stages)
            pm = apply_power_management(graph, n_steps)
            sched = pipelined_minimize(pm.graph, spec)
            report = static_power(pm)
            rows.append({
                "name": name,
                "stages": stages,
                "steps": n_steps,
                "ii": spec.initiation_interval,
                "muxes": pm.managed_count,
                "red": report.reduction_pct,
                "cost": sched.allocation.cost(),
            })
    return rows


def test_bench_ablation_pipelining(benchmark):
    rows = benchmark(regenerate_pipelining_ablation)

    print_table(
        "S IV-B ablation: pipelining creates PM slack at constant throughput",
        ["Circuit", "Stages", "Steps", "II", "PM muxes", "PowerRed%",
         "FU cost"],
        [[r["name"], r["stages"], r["steps"], r["ii"], r["muxes"],
          r["red"], r["cost"]] for r in rows])

    by_circuit: dict[str, list[dict]] = {}
    for row in rows:
        by_circuit.setdefault(row["name"], []).append(row)
    for name, entries in by_circuit.items():
        entries.sort(key=lambda r: r["stages"])
        # Same effective throughput at every depth.
        assert len({r["ii"] for r in entries}) == 1
        # More stages -> never fewer managed muxes or less saving.
        muxes = [r["muxes"] for r in entries]
        reds = [r["red"] for r in entries]
        assert muxes == sorted(muxes), name
        assert reds == sorted(reds), name
        # Pipelining must unlock more savings than the flat design for at
        # least one circuit (dealer/gcd/vender all have blocked muxes at cp).
        assert entries[-1]["red"] >= entries[0]["red"]
    assert any(
        entries[-1]["red"] > entries[0]["red"]
        for entries in by_circuit.values()
    ), "pipelining unlocked nothing anywhere (unexpected)"
