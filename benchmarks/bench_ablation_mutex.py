"""Ablation: mutual exclusion for sharing vs for power management (§II-C).

The paper relates its technique to the classical use of mutually exclusive
operations — sharing one execution unit between ops only one of which ever
runs.  The two optimizations pull different levers: sharing saves *area*
(fewer units), power management saves *power* (fewer activations), and
they compose.  This bench synthesizes each circuit four ways and reports
the FU area and expected datapath power of each corner.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import build
from repro.core import PMOptions
from repro.pipeline import ArtifactCache, FlowConfig, Pipeline
from repro.power import static_power
from repro.sched import critical_path_length

CIRCUITS = ("dealer", "gcd", "vender")

# mutex_sharing only affects the allocate/elaborate stages, so the four
# corners of one circuit share the PM and scheduling artifacts.
PIPELINE = Pipeline(cache=ArtifactCache())


def regenerate_mutex_ablation():
    rows = []
    for name in CIRCUITS:
        graph = build(name)
        steps = critical_path_length(graph) + 2
        corners = {}
        for pm_on in (False, True):
            for sharing in (False, True):
                result = PIPELINE.run(graph, FlowConfig(
                    n_steps=steps,
                    pm=PMOptions(enabled=pm_on),
                    mutex_sharing=sharing,
                ))
                area = result.design.area()
                power = static_power(result.pm)
                corners[(pm_on, sharing)] = {
                    "fu_area": area.functional_units,
                    "total_area": area.total,
                    "power": power.managed,
                }
        rows.append({"name": name, "steps": steps, "corners": corners})
    return rows


def test_bench_ablation_mutex(benchmark):
    rows = benchmark(regenerate_mutex_ablation)

    display = []
    for row in rows:
        corners = row["corners"]
        for (pm_on, sharing), data in sorted(corners.items()):
            display.append([
                row["name"], row["steps"],
                "PM" if pm_on else "-", "share" if sharing else "-",
                data["fu_area"], data["total_area"],
                f"{data['power']:.2f}",
            ])
    print_table(
        "S II-C ablation: mutex sharing (area) vs power management (power)",
        ["Circuit", "Steps", "PM", "Sharing", "FU area", "Total area",
         "Expected power"],
        display)

    for row in rows:
        corners = row["corners"]
        base = corners[(False, False)]
        shared = corners[(False, True)]
        managed = corners[(True, False)]
        both = corners[(True, True)]
        # Sharing never increases FU area; PM never increases power.
        assert shared["fu_area"] <= base["fu_area"]
        assert managed["power"] <= base["power"]
        # The corners compose: PM+sharing saves power like PM and area
        # like sharing (within each dimension).
        assert both["power"] <= base["power"]
        assert both["fu_area"] <= managed["fu_area"]
    # The interesting composition: PM forces mutually exclusive ops into
    # the same steps (after their shared condition), which is exactly when
    # sharing pays — it must recover part of the PM area penalty somewhere.
    assert any(
        r["corners"][(True, True)]["fu_area"]
        < r["corners"][(True, False)]["fu_area"]
        for r in rows
    )
