"""Paper Table I: circuit statistics.

Regenerates the critical path and per-class operation counts for the four
benchmark reconstructions and prints them against the paper's values.
Operation counts must match exactly; cordic's critical path differs (32 vs
48) because the paper's exact dataflow is unpublished — see EXPERIMENTS.md.
"""

from __future__ import annotations

from conftest import print_table

from repro.analysis import circuit_stats
from repro.circuits import CIRCUITS, PAPER_TABLE1, build


def regenerate_table1():
    return {name: circuit_stats(build(name)) for name in CIRCUITS}


def test_bench_table1(benchmark):
    measured = benchmark(regenerate_table1)

    rows = []
    for name in ("dealer", "gcd", "vender", "cordic"):
        s = measured[name]
        p = PAPER_TABLE1[name]
        rows.append([name, f"{s.critical_path}/{p.critical_path}",
                     f"{s.mux}/{p.mux}", f"{s.comp}/{p.comp}",
                     f"{s.add}/{p.add}", f"{s.sub}/{p.sub}",
                     f"{s.mul}/{p.mul}"])
    print_table("Table I: circuit statistics (measured/paper)",
                ["Circuit", "CritPath", "MUX", "COMP", "+", "-", "*"],
                rows)

    for name, stats in measured.items():
        paper = PAPER_TABLE1[name]
        assert (stats.mux, stats.comp, stats.add, stats.sub, stats.mul) == \
            (paper.mux, paper.comp, paper.add, paper.sub, paper.mul), name
    for name in ("dealer", "gcd", "vender"):
        assert measured[name].critical_path == \
            PAPER_TABLE1[name].critical_path
