"""Paper Figures 1 and 2: the |a-b| running example.

Fig. 1: with two control steps the schedule is unique — comparison and
both subtractions in step 1 (two subtractors), mux in step 2; no power
management possible.

Fig. 2(a): three steps, traditional scheduling — one subtractor, both
subtractions still always execute.

Fig. 2(b): three steps, power-managed — the comparison runs in step 1 and
only the needed subtraction's operands are loaded in step 2.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import abs_diff
from repro.core import apply_power_management
from repro.flow import synthesize
from repro.power import static_power
from repro.sched import minimize_resources


def regenerate_figures() -> dict[str, object]:
    graph = abs_diff()
    result: dict[str, object] = {}

    # Fig. 1 — two steps.
    pm2 = apply_power_management(graph, 2)
    sched2 = minimize_resources(pm2.graph, 2)
    result["fig1_managed"] = pm2.managed_count
    result["fig1_subs"] = sched2.allocation.as_dict().get("-", 0)
    result["fig1_schedule"] = sched2.schedule.table()

    # Fig. 2(a) — three steps, no PM.
    from repro.core import PMOptions
    pm3a = apply_power_management(graph, 3, PMOptions(enabled=False))
    sched3a = minimize_resources(pm3a.graph, 3)
    result["fig2a_subs"] = sched3a.allocation.as_dict().get("-", 0)
    result["fig2a_schedule"] = sched3a.schedule.table()

    # Fig. 2(b) — three steps with PM.
    pm3b = apply_power_management(graph, 3)
    sched3b = minimize_resources(pm3b.graph, 3)
    result["fig2b_managed"] = pm3b.managed_count
    result["fig2b_reduction"] = static_power(pm3b).reduction_pct
    result["fig2b_schedule"] = sched3b.schedule.table()
    result["fig2b_edges"] = len(pm3b.graph.control_edges())
    return result


def test_bench_fig1_fig2(benchmark):
    data = benchmark(regenerate_figures)

    print("\n=== Fig. 1: |a-b| with 2 control steps (no PM possible) ===")
    print(data["fig1_schedule"])
    assert data["fig1_managed"] == 0
    assert data["fig1_subs"] == 2  # the paper's "we need two subtractors"

    print("\n=== Fig. 2(a): 3 steps, traditional (1 subtractor) ===")
    print(data["fig2a_schedule"])
    assert data["fig2a_subs"] == 1

    print("\n=== Fig. 2(b): 3 steps, power managed ===")
    print(data["fig2b_schedule"])
    print(f"control edges added: {data['fig2b_edges']}, "
          f"datapath power reduction: {data['fig2b_reduction']:.1f}%")
    assert data["fig2b_managed"] == 1
    assert data["fig2b_reduction"] > 25.0
