"""Paper Table III: simulation-based ("gate-level") power estimation.

The paper synthesized both designs with Synopsys Design Compiler and
measured power with DesignPower on random vectors.  Our stand-in: the
cycle-accurate RTL simulator with switching-activity-weighted energy.

Workloads: dealer and vender use uniform random vectors (the paper's
method).  For gcd, uniform 8-bit pairs almost never satisfy ``a == b``, so
the done-branch savings would vanish; we use the balanced-condition
workload that realizes the paper's equal-probability select assumption in
actual stimulus (EXPERIMENTS.md discusses the sensitivity, including real
GCD iteration traces).
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import PAPER_TABLE3, TABLE3_BUDGETS, build
from repro.pipeline import ArtifactCache, FlowConfig, Pipeline, run_pair
from repro.power import measure_power
from repro.sim import balanced_condition_vectors, random_vectors

N_VECTORS = 192

PIPELINE = Pipeline(cache=ArtifactCache())


def regenerate_table3():
    rows = []
    for name, steps in TABLE3_BUDGETS.items():
        graph = build(name)
        pair = run_pair(graph, FlowConfig(n_steps=steps),
                        pipeline=PIPELINE)
        if name == "gcd":
            vectors = balanced_condition_vectors(graph, count=N_VECTORS)
        else:
            vectors = random_vectors(graph, N_VECTORS)
        orig = measure_power(pair.baseline.design, vectors=vectors,
                             power_management=False)
        new = measure_power(pair.managed.design, vectors=vectors,
                            power_management=True)
        rows.append({
            "name": name,
            "steps": steps,
            "area_orig": pair.baseline.design.area().total,
            "area_new": pair.managed.design.area().total,
            "power_orig": orig.total,
            "power_new": new.total,
            "red": 100.0 * (orig.total - new.total) / orig.total,
        })
    return rows


def test_bench_table3(benchmark):
    measured = benchmark(regenerate_table3)

    paper = {r.name: r for r in PAPER_TABLE3}
    display = []
    for row in measured:
        p = paper[row["name"]]
        display.append([
            row["name"], row["steps"],
            f"{row['area_orig']}/{p.area_orig}",
            f"{row['area_new']}/{p.area_new}",
            f"{row['area_new'] / row['area_orig']:.2f}/{p.area_increase:.2f}",
            f"{row['power_orig']:.1f}/{p.power_orig:.1f}",
            f"{row['power_new']:.1f}/{p.power_new:.1f}",
            f"{row['red']:.1f}/{p.power_reduction_pct:.1f}",
        ])
    print_table(
        "Table III: simulated power (measured/paper; absolute units differ)",
        ["Circuit", "Steps", "AreaOrig", "AreaNew", "AreaIncr",
         "PowerOrig", "PowerNew", "Red%"],
        display)

    by_name = {r["name"]: r for r in measured}
    # Shape: every circuit saves power at the gate-level analog...
    assert all(r["red"] > 0 for r in measured)
    # ...dealer and vender save > 15% (paper: 24.5 / 32.8)...
    assert by_name["dealer"]["red"] > 15.0
    assert by_name["vender"]["red"] > 15.0
    # ...gcd saves the least, single digits (paper: 10.0)...
    assert by_name["gcd"]["red"] < by_name["dealer"]["red"]
    # ...and area moves by at most ~15% either way (paper: 0.98-1.11).
    for row in measured:
        ratio = row["area_new"] / row["area_orig"]
        assert 0.85 <= ratio <= 1.2
