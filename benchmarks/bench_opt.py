"""Optimizer quality gate: stochastic search vs the known optima.

Four claims, checked against live synthesis:

* **Exhaustive parity** — on every circuit small enough for
  ``exhaustive_search`` (the paper suite at its Table III budgets plus
  ``gen:tiny``/``gen:small``/``gen:branchy``/``gen:deep`` family
  members), simulated annealing *and* beam search reach the exhaustive
  optimum of the gated-weight objective.

* **Beats greedy** — on at least one generated ``gen:branchy``/
  ``gen:deep`` scenario, annealing strictly beats the best built-in
  greedy ordering strategy, i.e. the search finds §IV-A reorderings the
  heuristics miss.

* **Portfolio parity + front gain** — at equal wall-clock (the
  portfolio's ``time_budget`` is set to a measured single-chain anneal
  run, same seed), the island-model ``portfolio`` driver (workers=4)
  matches the chain's scalarized best everywhere and — on the pinned
  large multi-objective scenarios — its Pareto archive reaches
  nondominated points the single chain never finds.

* **Anytime monotonicity** — a short ``time_budget`` run's archive is
  covered by a long run's archive of the same configuration.

Run standalone for the CI smoke check, or the full large-scenario gate
(which writes ``BENCH_opt.json`` at the repo root)::

    python benchmarks/bench_opt.py --smoke
    python benchmarks/bench_opt.py --full

Exits nonzero if any claim fails.  The pytest-benchmark entry point
(``pytest benchmarks/bench_opt.py --benchmark-only -s``) times the
annealing runs and prints the per-circuit comparison table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuits import build  # noqa: E402
from repro.core.reordering import exhaustive_search, gated_weight  # noqa: E402
from repro.gen.random_cdfg import random_cdfg  # noqa: E402
from repro.opt import anneal, beam_search  # noqa: E402
from repro.opt.portfolio import portfolio  # noqa: E402
from repro.sched.timing import critical_path_length  # noqa: E402

#: (spec, budget) — budget ``None`` means critical path + 1.  All have
#: <= 6 MUXes, so exhaustive permutation search is feasible.
EXHAUSTIVE_POINTS: tuple[tuple[str, int | None], ...] = (
    ("dealer", 6),
    ("gcd", 7),
    ("vender", 6),
    ("gen:tiny:1", None),
    ("gen:tiny:7", None),
    ("gen:small:3", None),
    ("gen:branchy:2", None),
    ("gen:deep:0", None),
)

#: Generated scenarios (at pinned budgets) where the greedy strategies
#: are provably suboptimal; annealing must strictly beat them on at
#: least one.
BEAT_GREEDY_POINTS: tuple[tuple[str, int | None], ...] = (
    ("gen:branchy:2", 13),
    ("gen:branchy:8", 12),
    ("gen:deep:0", 15),
)

ANNEAL_ITERS = 300
ANNEAL_RESTARTS = 3
SEED = 0
TOL = 1e-9


def _budget(graph, budget: int | None) -> int:
    return budget if budget is not None else critical_path_length(graph) + 1


def run_points() -> list[dict[str, object]]:
    """Evaluate every exhaustive-parity point; one result row each."""
    rows = []
    for spec, budget in EXHAUSTIVE_POINTS:
        graph = build(spec)
        steps = _budget(graph, budget)
        exhaustive = gated_weight(
            exhaustive_search(graph, steps, limit=6).best)
        started = time.perf_counter()
        annealed = anneal(graph, n_steps=steps, iters=ANNEAL_ITERS,
                          seed=SEED, restarts=ANNEAL_RESTARTS)
        anneal_s = time.perf_counter() - started
        beamed = beam_search(graph, n_steps=steps)
        rows.append({
            "spec": spec, "steps": steps,
            "muxes": len(graph.muxes()),
            "exhaustive": exhaustive,
            "anneal": annealed.best_score,
            "beam": beamed.best_score,
            "greedy": annealed.best_greedy_score,
            "anneal_s": anneal_s,
            "evaluations": annealed.evaluations,
        })
    return rows


def run_beat_greedy() -> list[dict[str, object]]:
    rows = []
    for spec, budget in BEAT_GREEDY_POINTS:
        graph = build(spec)
        steps = _budget(graph, budget)
        annealed = anneal(graph, n_steps=steps, iters=ANNEAL_ITERS,
                          seed=SEED, restarts=ANNEAL_RESTARTS)
        rows.append({
            "spec": spec, "steps": steps,
            "greedy": annealed.best_greedy_score,
            "anneal": annealed.best_score,
            "improvement": annealed.improvement_over_greedy,
        })
    return rows


#: Registry scenarios for the fast (CI) portfolio-parity check.
PORTFOLIO_SMOKE_POINTS: tuple[tuple[str, int], ...] = (
    ("gen:branchy:8", 12),
    ("gen:deep:0", 15),
)

#: Pinned large multi-objective scenarios for the full portfolio gate:
#: 48-op graphs at the ``branchy`` preset densities, searched over a
#: (budget x scheduler) grid under a gated-weight/area trade-off — the
#: regime where a scalar-focused single chain leaves parts of the
#: Pareto front undiscovered.
LARGE_SCENARIOS: tuple[int, ...] = (0, 4, 8)
LARGE_OBJECTIVE = "gated_weight,area=0.02"
LARGE_SCHEDULERS = ("list", "force_directed")
LARGE_SLACKS = (1, 2, 3, 4)
CHAIN_ITERS = 300
#: The large multi-objective spaces need a longer horizon before both
#: sides plateau (the chain is flat well before this; the extra wall
#: clock is what lets the portfolio's diverse islands converge too).
LARGE_CHAIN_ITERS = 450
PORTFOLIO_WORKERS = 4
#: How many large scenarios must show a strict Pareto-front gain.
MIN_FRONT_GAINS = 2

BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_opt.json"


def _large_graph(seed: int):
    """One pinned large scenario graph (deterministic per seed)."""
    return random_cdfg(seed, preset="branchy", n_ops=48, n_inputs=6,
                       name=f"bench:lbranchy:{seed}")


def run_portfolio_point(graph, *, budgets, schedulers=("list",),
                        objective="gated_weight",
                        chain_iters=CHAIN_ITERS) -> dict[str, object]:
    """One equal-wall-clock comparison: a single annealing chain (seed
    0, one restart) is timed, then the portfolio gets exactly that much
    wall clock as its ``time_budget``."""
    started = time.perf_counter()
    chain = anneal(graph, objective=objective, budgets=budgets,
                   schedulers=schedulers, iters=chain_iters,
                   seed=SEED, restarts=1)
    wall = time.perf_counter() - started
    ported = portfolio(graph, objective=objective, budgets=budgets,
                       schedulers=schedulers, iters=None,
                       time_budget=wall, workers=PORTFOLIO_WORKERS,
                       seed=SEED)
    chain_front = chain.archive
    port_front = ported.archive
    return {
        "circuit": graph.name,
        "budgets": list(budgets),
        "objective": objective,
        "wall_s": round(wall, 3),
        "chain_score": chain.best_score,
        "portfolio_score": ported.best_score,
        "chain_evaluations": chain.evaluations,
        "portfolio_evaluations": ported.evaluations,
        "chain_front": len(chain_front),
        "portfolio_front": len(port_front),
        # Scalar parity: the portfolio must not lose the single-number
        # race while it spreads effort across the front.
        "scalar_ok": ported.best_score >= chain.best_score - TOL,
        # Strict gain: the portfolio found nondominated points the
        # chain's archive neither dominates nor matches.
        "front_gain": not port_front.covered_by(chain_front),
        "chain_covered": chain_front.covered_by(port_front),
    }


def run_portfolio_gate(points, **kwargs) -> list[dict[str, object]]:
    rows = []
    for spec, budget in points:
        graph = build(spec)
        rows.append(run_portfolio_point(graph, budgets=(budget,), **kwargs))
    return rows


def run_large_gate() -> list[dict[str, object]]:
    rows = []
    for seed in LARGE_SCENARIOS:
        graph = _large_graph(seed)
        cp = critical_path_length(graph)
        rows.append(run_portfolio_point(
            graph, budgets=tuple(cp + s for s in LARGE_SLACKS),
            schedulers=LARGE_SCHEDULERS, objective=LARGE_OBJECTIVE,
            chain_iters=LARGE_CHAIN_ITERS))
    return rows


def run_anytime(spec_graph, budget: int, short_s: float,
                long_s: float) -> dict[str, object]:
    """The anytime contract: more time never loses ground — the short
    run's archive is covered by the long run's."""
    short = portfolio(spec_graph, n_steps=budget, iters=None,
                      time_budget=short_s, workers=PORTFOLIO_WORKERS,
                      seed=SEED)
    long_run = portfolio(spec_graph, n_steps=budget, iters=None,
                         time_budget=long_s, workers=PORTFOLIO_WORKERS,
                         seed=SEED)
    return {
        "circuit": spec_graph.name,
        "budget": budget,
        "short_s": short_s,
        "long_s": long_s,
        "short_score": short.best_score,
        "long_score": long_run.best_score,
        "short_evaluations": short.evaluations,
        "long_evaluations": long_run.evaluations,
        "covered": short.archive.covered_by(long_run.archive),
        "monotone": long_run.best_score >= short.best_score - TOL,
    }


def _portfolio_failures(rows, anytime, *, strict: bool) -> list[str]:
    failures = []
    for r in rows:
        if not r["scalar_ok"]:
            failures.append(
                f"portfolio lost to the single chain on {r['circuit']} "
                f"at equal wall-clock ({r['portfolio_score']} < "
                f"{r['chain_score']} in {r['wall_s']}s)")
    if strict:
        gains = sum(1 for r in rows if r["front_gain"])
        if gains < MIN_FRONT_GAINS:
            failures.append(
                f"portfolio showed a strict Pareto-front gain on only "
                f"{gains}/{len(rows)} large scenarios "
                f"(need {MIN_FRONT_GAINS})")
    if not anytime["covered"]:
        failures.append(
            f"anytime regression on {anytime['circuit']}: the "
            f"{anytime['short_s']}s archive is not covered by the "
            f"{anytime['long_s']}s archive")
    if not anytime["monotone"]:
        failures.append(
            f"anytime regression on {anytime['circuit']}: "
            f"{anytime['long_s']}s score {anytime['long_score']} < "
            f"{anytime['short_s']}s score {anytime['short_score']}")
    return failures


def _print_portfolio_rows(rows) -> None:
    for r in rows:
        gain = "front+" if r["front_gain"] else "front="
        status = "OK" if r["scalar_ok"] else "FAIL"
        print(f"{r['circuit']:>18s} {r['wall_s']:5.1f}s  chain "
              f"{r['chain_score']:9.4f} ({r['chain_evaluations']} evals)"
              f"  portfolio {r['portfolio_score']:9.4f} "
              f"({r['portfolio_evaluations']} evals, front "
              f"{r['portfolio_front']} vs {r['chain_front']})  "
              f"{gain}  {status}")


def _write_report(mode: str, rows, anytime, failures) -> None:
    report = {
        "mode": mode,
        "workers": PORTFOLIO_WORKERS,
        "criterion": ("equal wall-clock vs a single-chain anneal "
                      "(same seed): scalar parity everywhere, strict "
                      f"Pareto-front gain on >= {MIN_FRONT_GAINS} "
                      "large scenarios, anytime short-run archive "
                      "covered by the long run"),
        "scenarios": rows,
        "anytime": anytime,
        "ok": not failures,
        "failures": failures,
    }
    BENCH_OUT.write_text(json.dumps(report, indent=2) + "\n",
                         encoding="utf-8")
    print(f"wrote {BENCH_OUT.name} ({mode} mode, "
          f"{'OK' if not failures else 'FAILED'})")


def run_portfolio_smoke() -> list[str]:
    rows = run_portfolio_gate(PORTFOLIO_SMOKE_POINTS)
    anytime = run_anytime(build("gen:branchy:8"), 12, 0.7, 2.8)
    failures = _portfolio_failures(rows, anytime, strict=False)
    _print_portfolio_rows(rows)
    print(f"{anytime['circuit']:>18s} anytime {anytime['short_s']}s "
          f"({anytime['short_score']:.4f}) covered by "
          f"{anytime['long_s']}s ({anytime['long_score']:.4f}): "
          f"{'OK' if anytime['covered'] and anytime['monotone'] else 'FAIL'}")
    _write_report("smoke", rows, anytime, failures)
    return failures


def run_portfolio_full() -> list[str]:
    rows = run_large_gate()
    anytime = run_anytime(_large_graph(1), 20, 2.0, 10.0)
    failures = _portfolio_failures(rows, anytime, strict=True)
    _print_portfolio_rows(rows)
    print(f"{anytime['circuit']:>18s} anytime {anytime['short_s']}s "
          f"({anytime['short_score']:.4f}) covered by "
          f"{anytime['long_s']}s ({anytime['long_score']:.4f}): "
          f"{'OK' if anytime['covered'] and anytime['monotone'] else 'FAIL'}")
    _write_report("full", rows, anytime, failures)
    return failures


def test_bench_opt(benchmark):
    from conftest import print_table

    rows = benchmark(run_points)
    print_table(
        "Stochastic optimizer vs exhaustive ordering search (gated weight)",
        ["Circuit", "Steps", "MUXes", "Exhaustive", "Anneal", "Beam",
         "Greedy", "Evals"],
        [[r["spec"], r["steps"], r["muxes"], r["exhaustive"], r["anneal"],
          r["beam"], r["greedy"], r["evaluations"]] for r in rows])
    for r in rows:
        assert abs(r["anneal"] - r["exhaustive"]) <= TOL
        assert abs(r["beam"] - r["exhaustive"]) <= TOL

    beat = run_beat_greedy()
    print_table(
        "Annealing vs best greedy strategy on generated scenarios",
        ["Circuit", "Steps", "Greedy", "Anneal", "Improvement"],
        [[r["spec"], r["steps"], r["greedy"], r["anneal"],
          r["improvement"]] for r in beat])
    assert any(r["improvement"] > TOL for r in beat)


def test_bench_portfolio(benchmark):
    from conftest import print_table

    rows = benchmark(run_portfolio_gate, PORTFOLIO_SMOKE_POINTS)
    print_table(
        "Portfolio (workers=4) vs single-chain anneal, equal wall-clock",
        ["Circuit", "Wall s", "Chain", "Portfolio", "Chain front",
         "Port front"],
        [[r["circuit"], r["wall_s"], r["chain_score"],
          r["portfolio_score"], r["chain_front"], r["portfolio_front"]]
         for r in rows])
    for r in rows:
        assert r["scalar_ok"], r


def run_smoke() -> int:
    failures = []
    for r in run_points():
        status = "OK"
        if abs(r["anneal"] - r["exhaustive"]) > TOL:
            status = "FAIL"
            failures.append(
                f"anneal missed the exhaustive optimum on {r['spec']}@"
                f"{r['steps']}: {r['anneal']} != {r['exhaustive']}")
        if abs(r["beam"] - r["exhaustive"]) > TOL:
            status = "FAIL"
            failures.append(
                f"beam missed the exhaustive optimum on {r['spec']}@"
                f"{r['steps']}: {r['beam']} != {r['exhaustive']}")
        print(f"{r['spec']:>14s}@{r['steps']:<3d} exhaustive "
              f"{r['exhaustive']:8.4f}  anneal {r['anneal']:8.4f}  "
              f"beam {r['beam']:8.4f}  ({r['evaluations']} evals, "
              f"{r['anneal_s'] * 1000:.0f} ms)  {status}")

    beat = run_beat_greedy()
    beaten = [r for r in beat if r["improvement"] > TOL]
    for r in beat:
        print(f"{r['spec']:>14s}@{r['steps']:<3d} greedy "
              f"{r['greedy']:8.4f}  anneal {r['anneal']:8.4f}  "
              f"(+{r['improvement']:.4f})")
    if not beaten:
        failures.append(
            "annealing beat the best greedy strategy on none of "
            f"{[spec for spec, _ in BEAT_GREEDY_POINTS]}")

    failures.extend(run_portfolio_smoke())

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(f"opt smoke OK (annealing beats greedy on "
              f"{len(beaten)}/{len(beat)} generated scenarios; "
              f"portfolio parity + anytime hold)")
    return 1 if failures else 0


def run_full() -> int:
    failures = run_portfolio_full()
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("opt full gate OK (portfolio parity + front gain + "
              "anytime hold on the pinned large scenarios)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: exhaustive-parity + beats-greedy "
                             "+ portfolio-parity assertions, nonzero "
                             "exit on failure")
    parser.add_argument("--full", action="store_true",
                        help="large-scenario portfolio gate (slow); "
                             "writes BENCH_opt.json at the repo root")
    args = parser.parse_args(argv)
    if args.full:
        return run_full()
    if not args.smoke:
        parser.error("standalone runs need --smoke or --full; the "
                     "pytest-benchmark entry point is test_bench_opt")
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
