"""Optimizer quality gate: stochastic search vs the known optima.

Two claims, checked against live synthesis:

* **Exhaustive parity** — on every circuit small enough for
  ``exhaustive_search`` (the paper suite at its Table III budgets plus
  ``gen:tiny``/``gen:small``/``gen:branchy``/``gen:deep`` family
  members), simulated annealing *and* beam search reach the exhaustive
  optimum of the gated-weight objective.

* **Beats greedy** — on at least one generated ``gen:branchy``/
  ``gen:deep`` scenario, annealing strictly beats the best built-in
  greedy ordering strategy, i.e. the search finds §IV-A reorderings the
  heuristics miss.

Run standalone for the CI smoke check::

    python benchmarks/bench_opt.py --smoke

Exits nonzero if either claim fails.  The pytest-benchmark entry point
(``pytest benchmarks/bench_opt.py --benchmark-only -s``) times the
annealing runs and prints the per-circuit comparison table.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuits import build  # noqa: E402
from repro.core.reordering import exhaustive_search, gated_weight  # noqa: E402
from repro.opt import anneal, beam_search  # noqa: E402
from repro.sched.timing import critical_path_length  # noqa: E402

#: (spec, budget) — budget ``None`` means critical path + 1.  All have
#: <= 6 MUXes, so exhaustive permutation search is feasible.
EXHAUSTIVE_POINTS: tuple[tuple[str, int | None], ...] = (
    ("dealer", 6),
    ("gcd", 7),
    ("vender", 6),
    ("gen:tiny:1", None),
    ("gen:tiny:7", None),
    ("gen:small:3", None),
    ("gen:branchy:2", None),
    ("gen:deep:0", None),
)

#: Generated scenarios (at pinned budgets) where the greedy strategies
#: are provably suboptimal; annealing must strictly beat them on at
#: least one.
BEAT_GREEDY_POINTS: tuple[tuple[str, int | None], ...] = (
    ("gen:branchy:2", 13),
    ("gen:branchy:8", 12),
    ("gen:deep:0", 15),
)

ANNEAL_ITERS = 300
ANNEAL_RESTARTS = 3
SEED = 0
TOL = 1e-9


def _budget(graph, budget: int | None) -> int:
    return budget if budget is not None else critical_path_length(graph) + 1


def run_points() -> list[dict[str, object]]:
    """Evaluate every exhaustive-parity point; one result row each."""
    rows = []
    for spec, budget in EXHAUSTIVE_POINTS:
        graph = build(spec)
        steps = _budget(graph, budget)
        exhaustive = gated_weight(
            exhaustive_search(graph, steps, limit=6).best)
        started = time.perf_counter()
        annealed = anneal(graph, n_steps=steps, iters=ANNEAL_ITERS,
                          seed=SEED, restarts=ANNEAL_RESTARTS)
        anneal_s = time.perf_counter() - started
        beamed = beam_search(graph, n_steps=steps)
        rows.append({
            "spec": spec, "steps": steps,
            "muxes": len(graph.muxes()),
            "exhaustive": exhaustive,
            "anneal": annealed.best_score,
            "beam": beamed.best_score,
            "greedy": annealed.best_greedy_score,
            "anneal_s": anneal_s,
            "evaluations": annealed.evaluations,
        })
    return rows


def run_beat_greedy() -> list[dict[str, object]]:
    rows = []
    for spec, budget in BEAT_GREEDY_POINTS:
        graph = build(spec)
        steps = _budget(graph, budget)
        annealed = anneal(graph, n_steps=steps, iters=ANNEAL_ITERS,
                          seed=SEED, restarts=ANNEAL_RESTARTS)
        rows.append({
            "spec": spec, "steps": steps,
            "greedy": annealed.best_greedy_score,
            "anneal": annealed.best_score,
            "improvement": annealed.improvement_over_greedy,
        })
    return rows


def test_bench_opt(benchmark):
    from conftest import print_table

    rows = benchmark(run_points)
    print_table(
        "Stochastic optimizer vs exhaustive ordering search (gated weight)",
        ["Circuit", "Steps", "MUXes", "Exhaustive", "Anneal", "Beam",
         "Greedy", "Evals"],
        [[r["spec"], r["steps"], r["muxes"], r["exhaustive"], r["anneal"],
          r["beam"], r["greedy"], r["evaluations"]] for r in rows])
    for r in rows:
        assert abs(r["anneal"] - r["exhaustive"]) <= TOL
        assert abs(r["beam"] - r["exhaustive"]) <= TOL

    beat = run_beat_greedy()
    print_table(
        "Annealing vs best greedy strategy on generated scenarios",
        ["Circuit", "Steps", "Greedy", "Anneal", "Improvement"],
        [[r["spec"], r["steps"], r["greedy"], r["anneal"],
          r["improvement"]] for r in beat])
    assert any(r["improvement"] > TOL for r in beat)


def run_smoke() -> int:
    failures = []
    for r in run_points():
        status = "OK"
        if abs(r["anneal"] - r["exhaustive"]) > TOL:
            status = "FAIL"
            failures.append(
                f"anneal missed the exhaustive optimum on {r['spec']}@"
                f"{r['steps']}: {r['anneal']} != {r['exhaustive']}")
        if abs(r["beam"] - r["exhaustive"]) > TOL:
            status = "FAIL"
            failures.append(
                f"beam missed the exhaustive optimum on {r['spec']}@"
                f"{r['steps']}: {r['beam']} != {r['exhaustive']}")
        print(f"{r['spec']:>14s}@{r['steps']:<3d} exhaustive "
              f"{r['exhaustive']:8.4f}  anneal {r['anneal']:8.4f}  "
              f"beam {r['beam']:8.4f}  ({r['evaluations']} evals, "
              f"{r['anneal_s'] * 1000:.0f} ms)  {status}")

    beat = run_beat_greedy()
    beaten = [r for r in beat if r["improvement"] > TOL]
    for r in beat:
        print(f"{r['spec']:>14s}@{r['steps']:<3d} greedy "
              f"{r['greedy']:8.4f}  anneal {r['anneal']:8.4f}  "
              f"(+{r['improvement']:.4f})")
    if not beaten:
        failures.append(
            "annealing beat the best greedy strategy on none of "
            f"{[spec for spec, _ in BEAT_GREEDY_POINTS]}")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(f"opt smoke OK (annealing beats greedy on "
              f"{len(beaten)}/{len(beat)} generated scenarios)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: exhaustive-parity + beats-greedy "
                             "assertions, nonzero exit on failure")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("standalone runs need --smoke; the pytest-benchmark "
                     "entry point is test_bench_opt")
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
