"""Ablation: partial (per-operation) power management under tight budgets.

The paper's Figure-3 algorithm is all-or-nothing per multiplexor; §II-B's
prose describes a finer fallback when resources are scarce.  This bench
quantifies what the fallback buys: for each circuit at its critical path
(where whole cones rarely fit) and at +1 step, compare the datapath power
reduction of the strict pass against the partial pass, both slack-only and
under the minimum single-unit allocation (one execution unit per class —
the harshest realistic resource constraint).
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import build
from repro.core import PMOptions, apply_power_management
from repro.power import static_power
from repro.sched import critical_path_length, single_unit_allocation

CIRCUITS = ("dealer", "gcd", "vender")


def regenerate_partial_ablation():
    rows = []
    for name in CIRCUITS:
        graph = build(name)
        cp = critical_path_length(graph)
        single = single_unit_allocation(graph)
        for steps in (cp, cp + 1, cp + 2):
            def reduction(options: PMOptions) -> tuple[float, int]:
                result = apply_power_management(graph, steps, options)
                return (static_power(result).reduction_pct,
                        result.managed_count)

            strict, strict_m = reduction(PMOptions())
            partial, partial_m = reduction(PMOptions(partial=True))
            strict_ra, _ = reduction(PMOptions(allocation=single))
            partial_ra, _ = reduction(
                PMOptions(allocation=single, partial=True))
            rows.append({
                "name": name, "steps": steps,
                "strict": strict, "strict_m": strict_m,
                "partial": partial, "partial_m": partial_m,
                "strict_ra": strict_ra, "partial_ra": partial_ra,
            })
    return rows


def test_bench_ablation_partial(benchmark):
    rows = benchmark(regenerate_partial_ablation)

    print_table(
        "Partial-PM ablation: datapath power reduction % (muxes)",
        ["Circuit", "Steps", "strict", "partial",
         "strict+1-unit", "partial+1-unit"],
        [[r["name"], r["steps"],
          f"{r['strict']:.2f} ({r['strict_m']})",
          f"{r['partial']:.2f} ({r['partial_m']})",
          f"{r['strict_ra']:.2f}", f"{r['partial_ra']:.2f}"]
         for r in rows])

    for row in rows:
        # Partial never loses to strict, with or without resources.
        assert row["partial"] >= row["strict"] - 1e-9
        assert row["partial_ra"] >= row["strict_ra"] - 1e-9
        # Resource constraints never increase savings.
        assert row["strict_ra"] <= row["strict"] + 1e-9
        assert row["partial_ra"] <= row["partial"] + 1e-9
    # Somewhere, the fallback must actually help (the paper's motivation).
    assert any(row["partial_ra"] > row["strict_ra"] + 1e-9 for row in rows) \
        or any(row["partial"] > row["strict"] + 1e-9 for row in rows)
