"""Batch design-space exploration through the pipeline API.

The Table II access pattern — every circuit at every budget — expressed
as one ``explore()`` call instead of a hand-written double loop.  The
bench runs the same sweep twice: the first pass fills the artifact
store, the second is served almost entirely from it, which is the
mechanism that makes interactive design-space work cheap.  A third pass
fans the points out over worker processes.

Run standalone for the disk-store smoke check CI uses::

    python benchmarks/bench_explore.py --smoke

It sweeps the grid cold against a fresh ``DiskArtifactCache``, then
again through a brand-new store instance on the same directory (i.e.
only the disk is shared, as for a new process on a later day), and
exits nonzero unless the warm pass reports disk-cache hits, computes
nothing, returns identical points, and is faster.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pipeline import (  # noqa: E402
    DiskArtifactCache,
    clear_explore_cache,
    explore,
)

CIRCUITS = ("dealer", "gcd", "vender")
BUDGETS = {"dealer": (5, 6, 7), "gcd": (5, 6, 7), "vender": (5, 6, 7)}


def regenerate_exploration():
    clear_explore_cache()
    cold = explore(CIRCUITS, BUDGETS)
    warm = explore(CIRCUITS, BUDGETS)
    return cold, warm


def test_bench_explore(benchmark):
    from conftest import print_table

    cold, warm = benchmark(regenerate_exploration)

    print_table(
        "Design-space sweep (3 circuits x 3 budgets), cold vs warm cache",
        ["Circuit", "Steps", "PM muxes", "PowerRed%", "Area",
         "cold hits", "warm hits"],
        [[c.circuit, c.n_steps, c.managed_muxes, c.power_reduction_pct,
          c.area, c.cache_hits, w.cache_hits]
         for c, w in zip(cold.points, warm.points)])
    print(f"cold pass: {cold.cache_hits} stage-cache hits, "
          f"{cold.cache_misses} stages computed")
    print(f"warm pass: {warm.cache_hits} stage-cache hits, "
          f"{warm.cache_misses} stages computed")

    # Shape: the sweep covers the full cross product...
    assert len(cold.points) == 9
    assert set(cold.circuits()) == set(CIRCUITS)
    # ...the warm pass reuses every cacheable stage of every point...
    assert warm.cache_hits > 0
    assert warm.cache_misses == 0
    # ...and both passes report identical synthesis results.
    assert [(p.circuit, p.n_steps, p.managed_muxes, p.area)
            for p in cold.points] == \
           [(p.circuit, p.n_steps, p.managed_muxes, p.area)
            for p in warm.points]

    # The same sweep distributed over worker processes matches too.
    parallel = explore(CIRCUITS, BUDGETS, workers=2)
    assert [(p.circuit, p.n_steps, p.managed_muxes, p.area)
            for p in parallel.points] == \
           [(p.circuit, p.n_steps, p.managed_muxes, p.area)
            for p in cold.points]


def _shape(result):
    return [(p.circuit, p.n_steps, p.managed_muxes, p.area,
             p.power_reduction_pct) for p in result.points]


def run_store_smoke(root: Path, workers: int = 1) -> int:
    """Cold sweep vs warm disk-store sweep; nonzero exit on regression."""
    store_dir = root / "store"

    start = time.perf_counter()
    cold = explore(CIRCUITS, BUDGETS, store=DiskArtifactCache(store_dir),
                   workers=workers)
    cold_s = time.perf_counter() - start

    # Best-of-two: shared CI runners hiccup; the second warm pass hits
    # the same store, so the min is the honest steady-state number.
    warm_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        warm = explore(CIRCUITS, BUDGETS,
                       store=DiskArtifactCache(store_dir), workers=workers)
        warm_s = min(warm_s, time.perf_counter() - start)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"cold pass: {cold.store_misses} stage artifacts computed, "
          f"{cold.store_hits} disk hits, {cold_s * 1000:.1f} ms")
    print(f"warm pass: {warm.store_misses} stage artifacts computed, "
          f"{warm.store_hits} disk hits, {warm_s * 1000:.1f} ms "
          f"({speedup:.1f}x)")

    failures = []
    if warm.store_hits == 0:
        failures.append("warm pass reported zero disk-cache hits")
    if warm.store_misses != 0:
        failures.append(
            f"warm pass recomputed {warm.store_misses} stage artifacts")
    if _shape(cold) != _shape(warm):
        failures.append("warm pass points differ from the cold pass")
    if warm_s >= cold_s:
        failures.append(
            f"warm pass not faster ({warm_s:.3f}s vs {cold_s:.3f}s)")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("store smoke OK")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: cold-vs-warm disk-store sweep "
                             "with hard assertions")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="store directory (default: a fresh temp dir)")
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)
    if not args.smoke and args.store is None:
        parser.error("standalone runs need --smoke (or --store DIR); the "
                     "pytest-benchmark entry point is test_bench_explore")
    if args.store is not None:
        return run_store_smoke(Path(args.store), workers=args.workers)
    with tempfile.TemporaryDirectory(prefix="bench-explore-") as tmp:
        return run_store_smoke(Path(tmp), workers=args.workers)


if __name__ == "__main__":
    sys.exit(main())
