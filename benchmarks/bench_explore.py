"""Batch design-space exploration through the pipeline API.

The Table II access pattern — every circuit at every budget — expressed
as one ``explore()`` call instead of a hand-written double loop.  The
bench runs the same sweep twice: the first pass fills the per-process
artifact cache, the second is served almost entirely from it, which is
the mechanism that makes interactive design-space work cheap.  A third
pass fans the points out over worker processes.
"""

from __future__ import annotations

from conftest import print_table

from repro.pipeline import clear_explore_cache, explore

CIRCUITS = ("dealer", "gcd", "vender")
BUDGETS = {"dealer": (5, 6, 7), "gcd": (5, 6, 7), "vender": (5, 6, 7)}


def regenerate_exploration():
    clear_explore_cache()
    cold = explore(CIRCUITS, BUDGETS)
    warm = explore(CIRCUITS, BUDGETS)
    return cold, warm


def test_bench_explore(benchmark):
    cold, warm = benchmark(regenerate_exploration)

    print_table(
        "Design-space sweep (3 circuits x 3 budgets), cold vs warm cache",
        ["Circuit", "Steps", "PM muxes", "PowerRed%", "Area",
         "cold hits", "warm hits"],
        [[c.circuit, c.n_steps, c.managed_muxes, c.power_reduction_pct,
          c.area, c.cache_hits, w.cache_hits]
         for c, w in zip(cold.points, warm.points)])
    print(f"cold pass: {cold.cache_hits} stage-cache hits, "
          f"{cold.cache_misses} stages computed")
    print(f"warm pass: {warm.cache_hits} stage-cache hits, "
          f"{warm.cache_misses} stages computed")

    # Shape: the sweep covers the full cross product...
    assert len(cold.points) == 9
    assert set(cold.circuits()) == set(CIRCUITS)
    # ...the warm pass reuses every cacheable stage of every point...
    assert warm.cache_hits > 0
    assert warm.cache_misses == 0
    # ...and both passes report identical synthesis results.
    assert [(p.circuit, p.n_steps, p.managed_muxes, p.area)
            for p in cold.points] == \
           [(p.circuit, p.n_steps, p.managed_muxes, p.area)
            for p in warm.points]

    # The same sweep distributed over worker processes matches too.
    parallel = explore(CIRCUITS, BUDGETS, workers=2)
    assert [(p.circuit, p.n_steps, p.managed_muxes, p.area)
            for p in parallel.points] == \
           [(p.circuit, p.n_steps, p.managed_muxes, p.area)
            for p in cold.points]
