"""Simulation-backend benchmark: interpreter vs compiled vs vectorized.

Times the three simulation backends on each benchmark circuit and emits
``BENCH_sim.json`` at the repo root so the speedup trajectory is tracked
across PRs:

* ``interpreter`` — the legacy :class:`RTLSimulator` oracle, timed on a
  reduced vector count (it is ~3 orders of magnitude off the pace on
  large batches) and normalized per vector;
* ``compiled`` — :class:`CompiledEngine`, generated straight-line Python
  per vector, timed on the full batch;
* ``vectorized`` — :class:`VectorizedEngine`, generated NumPy array
  programs per block, timed on the same batch fed as one pre-generated
  input matrix.

Every circuit row carries ``identical``: the vectorized and compiled
backends must agree bit-for-bit (outputs + full ActivityCounter) on the
full batch, and both must agree with the interpreter on the reduced
batch.

Usage::

    python benchmarks/bench_sim.py            # full run (4096-vector batches)
    python benchmarks/bench_sim.py --smoke    # CI-fast run (256 vectors, 2 circuits)

Exits nonzero if any backend diverges, or if the vectorized-over-compiled
speedup falls below ``--min-speedup`` (default 5x at 4096-vector batches,
the acceptance floor).  Under ``--smoke`` the speedup floor is advisory —
millisecond-scale timings on shared CI runners are too noisy for a hard
perf gate — while the equality check stays fatal.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuits import build  # noqa: E402
from repro.pipeline import FlowConfig, run_pair  # noqa: E402
from repro.sim.engine import CompiledEngine  # noqa: E402
from repro.sim.simulator import RTLSimulator  # noqa: E402
from repro.sim.vectorized import VectorizedEngine  # noqa: E402
from repro.sim.vectors import random_vectors, vectors_to_array  # noqa: E402

# Circuit -> step budget; cordic is the largest circuit (Table I: 152 ops).
FULL_CIRCUITS = {"dealer": 6, "gcd": 7, "vender": 6, "cordic": 48}
SMOKE_CIRCUITS = {"dealer": 6, "gcd": 7}


def _timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_circuit(name: str, steps: int, n_batch: int, n_interp: int,
                  repeats: int) -> dict[str, object]:
    graph = build(name)
    design = run_pair(graph, FlowConfig(n_steps=steps)).managed.design
    batch = random_vectors(graph, n_batch)
    small = batch[:n_interp]

    compile_start = time.perf_counter()
    compiled = CompiledEngine(design)
    compiled_build_s = time.perf_counter() - compile_start
    compile_start = time.perf_counter()
    vectorized = VectorizedEngine(design)
    vectorized_build_s = time.perf_counter() - compile_start
    matrix = vectors_to_array(batch, vectorized.input_names)

    interp_s = _timed(lambda: RTLSimulator(design).run_many(small), repeats)
    compiled_s = _timed(lambda: (compiled.reset(),
                                 compiled.run_batch(batch)), repeats)
    vectorized_s = _timed(lambda: (vectorized.reset(),
                                   vectorized.run_array(matrix)), repeats)

    # Bit-identity: vectorized == compiled on the full batch; both ==
    # interpreter on the reduced batch.
    compiled.reset()
    vectorized.reset()
    cout, cact = compiled.run_many(batch)
    vout, vact = vectorized.run_many(batch)
    iout, iact = RTLSimulator(design).run_many(small)
    compiled.reset()
    sout, sact = compiled.run_many(small)
    identical = (cout == vout and cact == vact
                 and sout == iout and sact == iact)

    per_interp = interp_s / n_interp
    per_compiled = compiled_s / n_batch
    per_vectorized = vectorized_s / n_batch
    rows = [
        {"backend": "interpreter", "n_vectors": n_interp,
         "seconds": interp_s, "per_vector_us": per_interp * 1e6},
        {"backend": "compiled", "n_vectors": n_batch,
         "seconds": compiled_s, "per_vector_us": per_compiled * 1e6,
         "build_s": compiled_build_s,
         "speedup_vs_interpreter": per_interp / per_compiled},
        {"backend": "vectorized", "n_vectors": n_batch,
         "seconds": vectorized_s, "per_vector_us": per_vectorized * 1e6,
         "build_s": vectorized_build_s,
         "speedup_vs_interpreter": per_interp / per_vectorized,
         "speedup_vs_compiled": compiled_s / vectorized_s},
    ]
    return {
        "circuit": name,
        "n_steps": steps,
        "rows": rows,
        "vectorized_speedup_over_compiled": compiled_s / vectorized_s,
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI subset: 256-vector batches, "
                             "dealer + gcd")
    parser.add_argument("--vectors", type=int, default=None,
                        help="batch size (default 4096, smoke 256)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if vectorized beats compiled by less "
                             "than this (default 5.0; advisory under "
                             "--smoke)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default <repo>/BENCH_sim.json)")
    args = parser.parse_args(argv)

    circuits = SMOKE_CIRCUITS if args.smoke else FULL_CIRCUITS
    if args.min_speedup is None:
        args.min_speedup = 5.0
    n_batch = args.vectors or (256 if args.smoke else 4096)
    n_interp = min(n_batch, 64 if args.smoke else 256)
    repeats = 3
    out_path = args.out or (
        Path(__file__).resolve().parent.parent / "BENCH_sim.json")

    results = [bench_circuit(name, steps, n_batch, n_interp, repeats)
               for name, steps in circuits.items()]
    report = {
        "bench": "sim_backends",
        "mode": "smoke" if args.smoke else "full",
        "n_vectors": n_batch,
        "min_speedup_required": args.min_speedup,
        "results": results,
        "min_vectorized_speedup_measured": min(
            r["vectorized_speedup_over_compiled"] for r in results),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    header = (f"{'circuit':<8s} {'backend':<12s} {'vecs':>6s} "
              f"{'seconds':>9s} {'us/vec':>8s} {'vs interp':>9s} "
              f"{'vs compiled':>11s}")
    print(header)
    print("-" * len(header))
    for result in results:
        for row in result["rows"]:
            vs_i = row.get("speedup_vs_interpreter")
            vs_c = row.get("speedup_vs_compiled")
            print(f"{result['circuit']:<8s} {row['backend']:<12s} "
                  f"{row['n_vectors']:>6d} {row['seconds']:>9.4f} "
                  f"{row['per_vector_us']:>8.2f} "
                  f"{vs_i and f'{vs_i:8.1f}x' or '':>9s} "
                  f"{vs_c and f'{vs_c:10.1f}x' or '':>11s}")
        print(f"{'':8s} identical={result['identical']}")
    print(f"wrote {out_path}")

    failures = [r["circuit"] for r in results if not r["identical"]]
    if failures:
        print(f"FAIL: backends diverge on {failures}")
        return 1
    slow = [r["circuit"] for r in results
            if r["vectorized_speedup_over_compiled"] < args.min_speedup]
    if slow:
        if args.smoke:
            # Millisecond-scale smoke timings are noisy on shared CI
            # runners: the correctness gate above stays hard, the
            # speedup floor is advisory here.
            print(f"WARN: vectorized speedup below {args.min_speedup}x on "
                  f"{slow} (advisory in smoke mode)")
            return 0
        print(f"FAIL: vectorized speedup below {args.min_speedup}x on {slow}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
