"""Simulation-backend benchmark: interpreter vs compiled vs vectorized
vs packed.

Times the simulation backends on each benchmark circuit and emits
``BENCH_sim.json`` at the repo root so the speedup trajectory is tracked
across PRs:

* ``interpreter`` — the legacy :class:`RTLSimulator` oracle, timed on a
  reduced vector count (it is ~3 orders of magnitude off the pace on
  large batches) and normalized per vector;
* ``compiled`` — :class:`CompiledEngine`, generated straight-line Python
  per vector, timed on the full batch;
* ``vectorized`` — :class:`VectorizedEngine`, generated NumPy array
  programs per block (hybrid scalar-slot micro-loop on recurrent
  plans), timed on the same batch fed as one pre-generated input matrix;
* ``packed`` — :class:`PackedEngine`, 64 Monte-Carlo vectors per machine
  word as uint64 bit slices; skipped (with a note) on plans it refuses —
  hybrid recurrences and widths above 64.

The circuit set includes two stress rows beyond the paper suite:

* ``recurrent`` — :func:`repro.circuits.extra.gated_recurrence`, the
  pinned Hypothesis circuit whose schedule forces the hybrid scalar
  micro-loop; its gate is "no slower than compiled", not the vector
  floor (the recurrence serializes one slot by construction).
* ``logic`` — :func:`repro.circuits.extra.logic_mixer` at 32 stages x
  8 lanes, pure AND/OR/XOR/NOT/MUX dataflow; the packed backend's
  showcase and the circuit the ``--min-packed-speedup`` floor (default
  4x over vectorized) is enforced on.

The packed floor is measured on a dedicated **Monte-Carlo block** batch
(``--packed-gate-vectors``, default 1M) rather than the shared batch:
word-packing pays when batches are big enough that the vectorized
backend's per-statement int64 temporaries (8 bytes/vector) spill out of
the last-level cache while the packed bit slices (1 bit/vector/slice)
stay resident — at the shared 4096-vector size both fit and the ratio
only reflects dispatch overhead.  The block run times vectorized vs
packed only (the compiled engine would need minutes on 512k vectors)
and cross-checks their outputs and activity bit-for-bit.

Every circuit row carries ``identical``: all array backends must agree
bit-for-bit (outputs + full ActivityCounter) with the compiled engine on
the full batch, and the compiled engine with the interpreter on the
reduced batch.

Usage::

    python benchmarks/bench_sim.py            # full run (4096-vector batches)
    python benchmarks/bench_sim.py --smoke    # CI-fast run (256 vectors)

Exits nonzero if any backend diverges, if the vectorized-over-compiled
speedup falls below ``--min-speedup`` (default 5x) on a non-hybrid
circuit, if a hybrid circuit is slower than compiled, or if the packed
backend misses ``--min-packed-speedup`` on the pure-logic circuit.
Under ``--smoke`` the perf floors are advisory — millisecond-scale
timings on shared CI runners are too noisy for a hard gate — while the
equality checks stay fatal.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuits import build  # noqa: E402
from repro.circuits.extra import gated_recurrence, logic_mixer  # noqa: E402
from repro.pipeline import FlowConfig, run_pair  # noqa: E402
from repro.sched.timing import critical_path_length  # noqa: E402
from repro.sim.engine import CompiledEngine  # noqa: E402
from repro.sim.packed import PackedEngine, PackingError  # noqa: E402
from repro.sim.simulator import RTLSimulator  # noqa: E402
from repro.sim.vectorized import VectorizedEngine  # noqa: E402
from repro.sim.vectors import random_vectors, vectors_to_array  # noqa: E402

# Circuit -> step budget; cordic is the largest circuit (Table I: 152
# ops); None means critical path + 1 (the PM-friendly minimum slack).
FULL_CIRCUITS = {"dealer": 6, "gcd": 7, "vender": 6, "cordic": 48,
                 "recurrent": None, "logic": None}
# Smoke keeps one paper circuit plus both stress rows so CI always
# exercises the hybrid micro-loop and the packed backend.
SMOKE_CIRCUITS = {"dealer": 6, "gcd": 7, "recurrent": None, "logic": None}

#: Circuits the packed-over-vectorized floor is enforced on (pure-logic
#: dataflow is where bit-packing pays; arithmetic circuits ripple carries
#: slicewise and are only expected to keep parity).
PACKED_GATE_CIRCUITS = ("logic",)


def _graph(name):
    if name == "recurrent":
        return gated_recurrence()
    if name == "logic":
        return logic_mixer(n_stages=32, width=8)
    return build(name)


def _timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _packed_gate_block(vectorized, packed, n_vectors: int,
                       repeats: int) -> dict[str, object]:
    """Time vectorized vs packed on one Monte-Carlo-block-sized batch
    (compiled stays out: straight-line Python on 512k vectors would
    take minutes) and cross-check the two bit-for-bit."""
    width = vectorized.plan.width
    rng = np.random.default_rng(0xB10C)
    matrix = rng.integers(-(1 << (width - 1)), 1 << (width - 1),
                          size=(n_vectors, len(vectorized.input_names)),
                          dtype=np.int64)
    vec_s = _timed(lambda: (vectorized.reset(),
                            vectorized.run_array(matrix)), repeats)
    packed_s = _timed(lambda: (packed.reset(),
                               packed.run_array(matrix)), repeats)
    vectorized.reset()
    vres = vectorized.run_array(matrix)
    packed.reset()
    pres = packed.run_array(matrix)
    identical = (vres.activity == pres.activity
                 and vres.outputs.keys() == pres.outputs.keys()
                 and all(np.array_equal(vres.outputs[k], pres.outputs[k])
                         for k in vres.outputs))
    return {"n_vectors": n_vectors, "vectorized_s": vec_s,
            "packed_s": packed_s,
            "speedup_vs_vectorized": vec_s / packed_s,
            "identical": identical}


def bench_circuit(name: str, steps: int | None, n_batch: int, n_interp: int,
                  repeats: int, gate_vectors: int = 0) -> dict[str, object]:
    graph = _graph(name)
    if steps is None:
        steps = critical_path_length(graph) + 1
    design = run_pair(graph, FlowConfig(n_steps=steps)).managed.design
    batch = random_vectors(graph, n_batch)
    small = batch[:n_interp]

    compile_start = time.perf_counter()
    compiled = CompiledEngine(design)
    compiled_build_s = time.perf_counter() - compile_start
    compile_start = time.perf_counter()
    vectorized = VectorizedEngine(design)
    vectorized_build_s = time.perf_counter() - compile_start
    matrix = vectors_to_array(batch, vectorized.input_names)
    packed = packed_build_s = packed_note = None
    try:
        compile_start = time.perf_counter()
        packed = PackedEngine(design)
        packed_build_s = time.perf_counter() - compile_start
    except PackingError as exc:
        packed_note = str(exc)

    interp_s = _timed(lambda: RTLSimulator(design).run_many(small), repeats)
    compiled_s = _timed(lambda: (compiled.reset(),
                                 compiled.run_batch(batch)), repeats)
    vectorized_s = _timed(lambda: (vectorized.reset(),
                                   vectorized.run_array(matrix)), repeats)
    packed_s = None
    if packed is not None:
        packed_s = _timed(lambda: (packed.reset(),
                                   packed.run_array(matrix)), repeats)

    # Bit-identity: every array backend == compiled on the full batch;
    # compiled == interpreter on the reduced batch.
    compiled.reset()
    vectorized.reset()
    cout, cact = compiled.run_many(batch)
    vout, vact = vectorized.run_many(batch)
    iout, iact = RTLSimulator(design).run_many(small)
    compiled.reset()
    sout, sact = compiled.run_many(small)
    identical = (cout == vout and cact == vact
                 and sout == iout and sact == iact)
    if packed is not None:
        packed.reset()
        pout, pact = packed.run_many(batch)
        identical = identical and pout == cout and pact == cact

    gate_block = None
    if packed is not None and gate_vectors and name in PACKED_GATE_CIRCUITS:
        gate_block = _packed_gate_block(
            vectorized, packed, gate_vectors, max(1, repeats - 1))
        identical = identical and gate_block["identical"]

    per_interp = interp_s / n_interp
    per_compiled = compiled_s / n_batch
    per_vectorized = vectorized_s / n_batch
    rows = [
        {"backend": "interpreter", "n_vectors": n_interp,
         "seconds": interp_s, "per_vector_us": per_interp * 1e6},
        {"backend": "compiled", "n_vectors": n_batch,
         "seconds": compiled_s, "per_vector_us": per_compiled * 1e6,
         "build_s": compiled_build_s,
         "speedup_vs_interpreter": per_interp / per_compiled},
        {"backend": "vectorized", "n_vectors": n_batch,
         "seconds": vectorized_s, "per_vector_us": per_vectorized * 1e6,
         "build_s": vectorized_build_s,
         "speedup_vs_interpreter": per_interp / per_vectorized,
         "speedup_vs_compiled": compiled_s / vectorized_s},
    ]
    if packed_s is not None:
        rows.append(
            {"backend": "packed", "n_vectors": n_batch,
             "seconds": packed_s, "per_vector_us": packed_s / n_batch * 1e6,
             "build_s": packed_build_s,
             "speedup_vs_interpreter": per_interp / (packed_s / n_batch),
             "speedup_vs_compiled": compiled_s / packed_s,
             "speedup_vs_vectorized": vectorized_s / packed_s})
    # The gate metric comes from the block run when one happened; the
    # shared small batch only measures dispatch overhead there.
    packed_speedup = (vectorized_s / packed_s) if packed_s is not None \
        else None
    if gate_block is not None:
        packed_speedup = gate_block["speedup_vs_vectorized"]
    return {
        "circuit": name,
        "n_steps": steps,
        "hybrid": vectorized.hybrid,
        "rows": rows,
        "vectorized_speedup_over_compiled": compiled_s / vectorized_s,
        "packed_speedup_over_vectorized": packed_speedup,
        "packed_gate_block": gate_block,
        "packed_skipped": packed_note,
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI subset: 256-vector batches, "
                             "dealer + gcd + recurrent + logic")
    parser.add_argument("--vectors", type=int, default=None,
                        help="batch size (default 4096, smoke 256)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if vectorized beats compiled by less "
                             "than this on non-hybrid circuits (default "
                             "5.0; advisory under --smoke)")
    parser.add_argument("--min-packed-speedup", type=float, default=4.0,
                        help="fail if packed beats vectorized by less "
                             "than this on the pure-logic circuit "
                             "(default 4.0; advisory under --smoke)")
    parser.add_argument("--packed-gate-vectors", type=int, default=None,
                        help="Monte-Carlo block size for the packed-"
                             "floor measurement (default 1048576; 0 "
                             "disables the block run and gates on the "
                             "shared batch; skipped under --smoke)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default <repo>/BENCH_sim.json)")
    args = parser.parse_args(argv)

    circuits = SMOKE_CIRCUITS if args.smoke else FULL_CIRCUITS
    if args.min_speedup is None:
        args.min_speedup = 5.0
    n_batch = args.vectors or (256 if args.smoke else 4096)
    n_interp = min(n_batch, 64 if args.smoke else 256)
    repeats = 3
    gate_vectors = 0 if args.smoke else (
        1048576 if args.packed_gate_vectors is None
        else args.packed_gate_vectors)
    out_path = args.out or (
        Path(__file__).resolve().parent.parent / "BENCH_sim.json")

    results = [bench_circuit(name, steps, n_batch, n_interp, repeats,
                             gate_vectors=gate_vectors)
               for name, steps in circuits.items()]
    gated = [r for r in results if r["circuit"] in PACKED_GATE_CIRCUITS
             and r["packed_speedup_over_vectorized"] is not None]
    report = {
        "bench": "sim_backends",
        "mode": "smoke" if args.smoke else "full",
        "n_vectors": n_batch,
        "min_speedup_required": args.min_speedup,
        "min_packed_speedup_required": args.min_packed_speedup,
        "results": results,
        "min_vectorized_speedup_measured": min(
            r["vectorized_speedup_over_compiled"] for r in results
            if not r["hybrid"]),
        "min_packed_speedup_measured": min(
            (r["packed_speedup_over_vectorized"] for r in gated),
            default=None),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    header = (f"{'circuit':<10s} {'backend':<12s} {'vecs':>6s} "
              f"{'seconds':>9s} {'us/vec':>8s} {'vs interp':>9s} "
              f"{'vs compiled':>11s}")
    print(header)
    print("-" * len(header))
    for result in results:
        for row in result["rows"]:
            vs_i = row.get("speedup_vs_interpreter")
            vs_c = row.get("speedup_vs_compiled")
            print(f"{result['circuit']:<10s} {row['backend']:<12s} "
                  f"{row['n_vectors']:>6d} {row['seconds']:>9.4f} "
                  f"{row['per_vector_us']:>8.2f} "
                  f"{vs_i and f'{vs_i:8.1f}x' or '':>9s} "
                  f"{vs_c and f'{vs_c:10.1f}x' or '':>11s}")
        notes = [f"identical={result['identical']}"]
        if result["hybrid"]:
            notes.append("hybrid scalar-slot plan")
        if result["packed_skipped"]:
            notes.append(f"packed skipped: {result['packed_skipped']}")
        block = result["packed_gate_block"]
        if block is not None:
            notes.append(
                f"packed block ({block['n_vectors']} vecs): "
                f"{block['speedup_vs_vectorized']:.1f}x vs vectorized")
        print(f"{'':10s} {'; '.join(notes)}")
    print(f"wrote {out_path}")

    failures = [r["circuit"] for r in results if not r["identical"]]
    if failures:
        print(f"FAIL: backends diverge on {failures}")
        return 1
    problems = []
    slow = [r["circuit"] for r in results if not r["hybrid"]
            and r["vectorized_speedup_over_compiled"] < args.min_speedup]
    if slow:
        problems.append(
            f"vectorized speedup below {args.min_speedup}x on {slow}")
    # The formerly-fallback (hybrid) set must at least match compiled.
    regressed = [r["circuit"] for r in results if r["hybrid"]
                 and r["vectorized_speedup_over_compiled"] < 1.0]
    if regressed:
        problems.append(f"hybrid plan slower than compiled on {regressed}")
    slow_packed = [r["circuit"] for r in gated
                   if r["packed_speedup_over_vectorized"]
                   < args.min_packed_speedup]
    if slow_packed:
        problems.append(f"packed speedup below {args.min_packed_speedup}x "
                        f"over vectorized on {slow_packed}")
    if problems:
        if args.smoke:
            # Millisecond-scale smoke timings are noisy on shared CI
            # runners: the correctness gate above stays hard, the perf
            # floors are advisory here.
            for problem in problems:
                print(f"WARN: {problem} (advisory in smoke mode)")
            return 0
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
