"""Simulation-engine benchmark: interpreted RTLSimulator vs compiled engine.

Times the ``measure_power`` hot path — construct the simulator cold
(engine compilation included) and run a vector batch — identically for
the legacy interpreter and the compiled batch engine on each benchmark
circuit, verifies the two produce identical outputs and switching
activity, and emits ``BENCH_sim.json`` at the repo root so the speedup
trajectory is tracked across PRs.

Usage::

    python benchmarks/bench_sim.py            # full run (256 vectors, all circuits)
    python benchmarks/bench_sim.py --smoke    # CI-fast run (64 vectors, 2 circuits)

Exits nonzero if any circuit's engine results diverge from the
interpreter's, or if the speedup falls below ``--min-speedup`` (default
5x, the floor the acceptance criteria pin for the largest circuit).
Under ``--smoke`` the speedup floor is advisory — millisecond-scale
timings on shared CI runners are too noisy for a hard perf gate — while
the equality check stays fatal.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuits import build  # noqa: E402
from repro.pipeline import FlowConfig, run_pair  # noqa: E402
from repro.sim.engine import CompiledEngine  # noqa: E402
from repro.sim.simulator import RTLSimulator  # noqa: E402
from repro.sim.vectors import random_vectors  # noqa: E402

# Circuit -> step budget; cordic is the largest circuit (Table I: 152 ops).
FULL_CIRCUITS = {"dealer": 6, "gcd": 7, "vender": 6, "cordic": 48}
SMOKE_CIRCUITS = {"dealer": 6, "gcd": 7}


def bench_circuit(name: str, steps: int, n_vectors: int,
                  repeats: int) -> dict[str, object]:
    graph = build(name)
    design = run_pair(graph, FlowConfig(n_steps=steps)).managed.design
    vectors = random_vectors(graph, n_vectors)

    # Symmetric workloads: each side constructs its simulator cold (the
    # engine's one-off compilation included) and runs the same batch.
    legacy_s = min(
        _timed(lambda: RTLSimulator(design).run_many(vectors))
        for _ in range(repeats))
    engine_s = min(
        _timed(lambda: CompiledEngine(design).run_many(vectors))
        for _ in range(repeats))

    compile_start = time.perf_counter()
    engine = CompiledEngine(design)
    compile_s = time.perf_counter() - compile_start
    engine_outputs, engine_activity = engine.run_many(vectors)
    legacy_outputs, legacy_activity = RTLSimulator(design).run_many(vectors)
    identical = (engine_outputs == legacy_outputs
                 and engine_activity == legacy_activity)
    return {
        "circuit": name,
        "n_steps": steps,
        "n_vectors": n_vectors,
        "legacy_s": legacy_s,
        "engine_s": engine_s,
        "engine_compile_s": compile_s,
        "speedup": legacy_s / engine_s,
        "identical": identical,
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI subset: 64 vectors, dealer + gcd")
    parser.add_argument("--vectors", type=int, default=None,
                        help="vector count (default 256, smoke 64)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if any circuit speeds up less than this "
                             "(default 5.0; 2.0 under --smoke, where "
                             "one-off engine compilation dominates the "
                             "short run)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default <repo>/BENCH_sim.json)")
    args = parser.parse_args(argv)

    circuits = SMOKE_CIRCUITS if args.smoke else FULL_CIRCUITS
    if args.min_speedup is None:
        args.min_speedup = 2.0 if args.smoke else 5.0
    n_vectors = args.vectors or (64 if args.smoke else 256)
    repeats = 3
    out_path = args.out or (
        Path(__file__).resolve().parent.parent / "BENCH_sim.json")

    results = [bench_circuit(name, steps, n_vectors, repeats)
               for name, steps in circuits.items()]
    report = {
        "bench": "sim_engine_vs_interpreter",
        "mode": "smoke" if args.smoke else "full",
        "n_vectors": n_vectors,
        "min_speedup_required": args.min_speedup,
        "results": results,
        "min_speedup_measured": min(r["speedup"] for r in results),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    header = (f"{'circuit':<8s} {'steps':>5s} {'vecs':>5s} {'legacy_s':>9s} "
              f"{'engine_s':>9s} {'speedup':>8s} identical")
    print(header)
    print("-" * len(header))
    for r in results:
        print(f"{r['circuit']:<8s} {r['n_steps']:>5d} {r['n_vectors']:>5d} "
              f"{r['legacy_s']:>9.4f} {r['engine_s']:>9.4f} "
              f"{r['speedup']:>7.1f}x {r['identical']}")
    print(f"wrote {out_path}")

    failures = [r["circuit"] for r in results if not r["identical"]]
    if failures:
        print(f"FAIL: engine diverges from interpreter on {failures}")
        return 1
    slow = [r["circuit"] for r in results
            if r["speedup"] < args.min_speedup]
    if slow:
        if args.smoke:
            # Millisecond-scale smoke timings are noisy on shared CI
            # runners: the correctness gate above stays hard, the
            # speedup floor is advisory here.
            print(f"WARN: speedup below {args.min_speedup}x on {slow} "
                  "(advisory in smoke mode)")
            return 0
        print(f"FAIL: speedup below {args.min_speedup}x on {slow}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
