"""Smoke bench for the ``repro serve`` job server.

One real server on a background thread, two concurrent clients — one
submitting an exploration sweep over a seeded random circuit
(``gen:tiny``), one an optimizer run — then a resubmission pass against
the warm store/journals, a kill-and-restart, and a graceful shutdown.
This is the CI gate for the serving subsystem::

    python benchmarks/bench_serve.py --smoke

It exits nonzero unless:

* both clients' jobs finish ``done`` while running concurrently;
* the explore client observed streamed ``point`` and ``pareto`` events
  (incremental results, not just a final blob);
* resubmitting the identical sweep resumes every point from the journal
  (zero recomputes) and the store reports warm hits;
* a killed server restarts, re-claims the interrupted job once its
  lease expires, and finishes it without redoing journaled points;
* SSE streaming delivers every point event a poll replay sees (the
  latency of both paths is printed for comparison);
* two servers sharing one state directory drain one queue — a job
  submitted while server A's worker is busy is claimed by server B;
* maintenance (journal compaction + store GC) and shutdown both
  succeed.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.pipeline.explore import load_point_journal  # noqa: E402
from repro.serve import ServeClient, start_in_thread  # noqa: E402

EXPLORE = {"circuits": ["gen:tiny:7", "gcd"], "budgets": [5, 6, 7]}
OPTIMIZE = {"circuit": "gen:tiny:7", "budgets": [6], "driver": "random",
            "iters": 10, "seed": 1, "sim_vectors": 16}


def run_smoke(state: Path, workers: int = 2) -> int:
    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(("ok   " if ok else "FAIL ") + what)
        if not ok:
            failures.append(what)

    # Short lease so the kill-and-restart section recovers in seconds
    # instead of waiting out the 30 s default.
    handle = start_in_thread(state, workers=workers, lease_s=2.0)
    port = handle.port
    print(f"server on 127.0.0.1:{port}, state in {state}")

    # -- two concurrent clients -----------------------------------------
    outcomes: dict[str, object] = {}

    def explore_client() -> None:
        client = ServeClient(port=port)
        job = client.submit("explore", **EXPLORE)
        events = list(client.stream(job["id"], timeout=300))
        outcomes["explore"] = (job, events, client.job(job["id"]))

    def optimize_client() -> None:
        client = ServeClient(port=port)
        job = client.submit("optimize", **OPTIMIZE)
        outcomes["optimize"] = client.wait(job["id"], timeout=300)

    start = time.perf_counter()
    threads = [threading.Thread(target=explore_client),
               threading.Thread(target=optimize_client)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    elapsed = time.perf_counter() - start

    job, events, final = outcomes["explore"]
    kinds = [e["type"] for e in events]
    n_points = len(EXPLORE["circuits"]) * len(EXPLORE["budgets"])
    print(f"explore: {kinds.count('point')} point events, "
          f"{kinds.count('pareto')} pareto events; optimize: "
          f"{outcomes['optimize']['result']['evaluations']} evaluations; "
          f"{elapsed:.1f}s wall for both clients")
    check(final["state"] == "done", "explore job finished done")
    check(kinds.count("point") == n_points,
          f"explore streamed all {n_points} points")
    check(kinds.count("pareto") >= 1
          and kinds.index("pareto") < len(kinds) - 1,
          "pareto fronts streamed before the job ended")
    check(final["result"]["pareto_size"] >= 1, "final Pareto front found")
    check(outcomes["optimize"]["state"] == "done",
          "optimize job finished done")
    check(outcomes["optimize"]["result"]["evaluations"] > 0,
          "optimizer evaluated candidates")

    # -- warm resubmission ----------------------------------------------
    client = ServeClient(port=port)
    stats_before = client.stats()["store"]
    again = client.wait(client.submit("explore", **EXPLORE)["id"],
                        timeout=300)
    stats_after = client.stats()["store"]
    print(f"resubmit: resumed {again['resumed']}/{n_points}, store "
          f"{stats_after['hits'] - stats_before['hits']} new hits")
    check(again["id"] != job["id"], "resubmission got a fresh job id")
    check(again["resumed"] == n_points,
          "warm resubmit resumed every point (zero recomputes)")
    check(stats_after["entries"] > 0, "store holds artifacts")

    # -- SSE vs poll streaming --------------------------------------------
    def timed_stream(params: dict, mode: str) -> tuple[list, float, float]:
        job_ = client.submit("explore", **params)
        t0 = time.perf_counter()
        first = None
        events_ = []
        for event in client.stream(job_["id"], timeout=300, mode=mode):
            if first is None and event["type"] == "point":
                first = time.perf_counter() - t0
            events_.append(event)
        return events_, first if first is not None else -1.0, \
            time.perf_counter() - t0

    sse_events, sse_first, sse_total = timed_stream(
        {"circuits": ["gen:tiny:31"], "budgets": [6, 7]}, "sse")
    poll_events, poll_first, poll_total = timed_stream(
        {"circuits": ["gen:tiny:32"], "budgets": [6, 7]}, "poll")
    print(f"stream: sse first point {sse_first * 1000:.0f}ms, done "
          f"{sse_total:.2f}s; poll first point {poll_first * 1000:.0f}ms, "
          f"done {poll_total:.2f}s")
    check([e["type"] for e in sse_events].count("point") == 2,
          "SSE streamed every point event")
    check(sse_events[-1]["type"] == "state"
          and sse_events[-1]["state"] == "done",
          "SSE stream ended on the terminal state event")
    check([e["type"] for e in poll_events].count("point") == 2,
          "poll streamed every point event")

    # -- maintenance ------------------------------------------------------
    report = client.maintenance()
    check(report["store"]["dropped"] == 0,
          "store GC: index and tree agree")

    # -- kill and restart -------------------------------------------------
    # A deliberately chunky grid (compiled-simulator points), so the
    # kill lands mid-job instead of racing a sub-second sweep.
    interrupted = client.submit(
        "explore",
        circuits=["gen:branchy:11", "dealer", "gcd", "vender"],
        budgets={"gen:branchy:11": [10, 11, 12, 13, 14, 15],
                 "dealer": [5, 6, 7], "gcd": [5, 6, 7],
                 "vender": [5, 6, 7]},
        sim_backend="compiled", sim_vectors=8192)
    for event in client.stream(interrupted["id"], timeout=300):
        if event["type"] == "point":
            break  # some progress banked; now crash
    handle.kill()
    journal = state / "journals" / f"{interrupted['key']}.jsonl"
    banked = len(load_point_journal(journal))

    restarted = start_in_thread(state, workers=workers, lease_s=2.0)
    client = ServeClient(port=restarted.port)
    revived = client.wait(interrupted["id"], timeout=300)
    print(f"restart: {banked} points banked at kill, "
          f"{revived['resumed']} resumed, "
          f"{revived['completed']} total after recovery")
    check(revived["state"] == "done", "interrupted job finished after "
                                      "restart (same id)")
    check(banked >= 1, "the kill left journaled points behind")
    check(revived["resumed"] >= banked and revived["completed"] == 15,
          "journaled points were not recomputed after the crash")

    # -- graceful shutdown ------------------------------------------------
    client.shutdown()
    restarted._thread.join(timeout=30)
    check(not restarted._thread.is_alive(), "clean shutdown")

    # -- two servers, one queue -------------------------------------------
    cluster = state / "cluster"
    a = start_in_thread(cluster, workers=1, lease_s=5.0,
                        server_id="bench-a")
    b = start_in_thread(cluster, workers=1, lease_s=5.0,
                        server_id="bench-b")
    try:
        ca = ServeClient(port=a.port)
        cb = ServeClient(port=b.port)
        # A chunky job pins its claimer's only worker...
        busy = ca.submit("explore", circuits=["gen:branchy:11"],
                         budgets=[10, 11, 12, 13, 14, 15],
                         sim_backend="compiled", sim_vectors=8192)
        while (owner := ca.job(busy["id"]).get("server_id")) is None:
            time.sleep(0.02)
        # ...so a job handed to the *idle* peer must be claimed there —
        # the busy owner has no free worker to steal it with.
        idle = cb if owner == "bench-a" else ca
        spill = idle.submit("explore", circuits=["gen:tiny:33"],
                            budgets=[6, 7])
        spilled = ca.wait(spill["id"], timeout=300)  # visible cluster-wide
        drained = cb.wait(busy["id"], timeout=300)
        print(f"cluster: {busy['id']} ran on {drained['server_id']}, "
              f"{spill['id']} on {spilled['server_id']}")
        check(drained["state"] == "done" and spilled["state"] == "done",
              "both jobs in the shared queue finished")
        check(spilled["server_id"] != drained["server_id"]
              and {spilled["server_id"], drained["server_id"]}
              == {"bench-a", "bench-b"},
              "the idle server drained the job the busy one could not")
    finally:
        a.stop()
        b.stop()

    print("serve smoke OK" if not failures
          else f"serve smoke: {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: hard assertions, nonzero exit on "
                             "any regression")
    parser.add_argument("--state", default=None, metavar="DIR",
                        help="server state dir (default: fresh temp dir)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    if not args.smoke and args.state is None:
        parser.error("standalone runs need --smoke (or --state DIR)")
    if args.state is not None:
        return run_smoke(Path(args.state), workers=args.workers)
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        return run_smoke(Path(tmp), workers=args.workers)


if __name__ == "__main__":
    sys.exit(main())
