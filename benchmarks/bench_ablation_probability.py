"""Ablation: sensitivity to the select-probability assumption.

Table II assumes every condition is true half the time.  Sweep the select
probability and recompute the expected datapath savings; also show the
profiled probabilities of three concrete workloads for gcd (uniform
random, real GCD iteration traces, balanced), connecting the static model
to the simulator's behaviour.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import build
from repro.core import apply_power_management
from repro.power import SelectModel, profile_selects, static_power
from repro.sim import (
    balanced_condition_vectors,
    gcd_trace_vectors,
    random_vectors,
)

SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)
BUDGET = {"dealer": 6, "gcd": 7, "vender": 6}


def regenerate_probability_ablation():
    sweep_rows = []
    for name, steps in BUDGET.items():
        pm = apply_power_management(build(name), steps)
        row = {"name": name}
        for p in SWEEP:
            report = static_power(pm, selects=SelectModel(default=p))
            row[p] = report.reduction_pct
        sweep_rows.append(row)

    gcd_graph = build("gcd")
    pm = apply_power_management(gcd_graph, 7)
    workloads = {
        "uniform": random_vectors(gcd_graph, 200),
        "gcd traces": gcd_trace_vectors(gcd_graph, n_runs=24),
        "balanced": balanced_condition_vectors(gcd_graph, count=200),
    }
    workload_rows = []
    for label, vectors in workloads.items():
        model = profile_selects(gcd_graph, vectors)
        report = static_power(pm, selects=model)
        c_run = next(n for n in gcd_graph if n.name == "c_run")
        workload_rows.append({
            "workload": label,
            "p_not_done": model.prob_one(c_run.nid),
            "red": report.reduction_pct,
        })
    return sweep_rows, workload_rows


def test_bench_ablation_probability(benchmark):
    sweep_rows, workload_rows = benchmark(regenerate_probability_ablation)

    print_table(
        "Select-probability sweep: expected datapath power reduction %",
        ["Circuit"] + [f"p={p}" for p in SWEEP],
        [[r["name"]] + [r[p] for p in SWEEP] for r in sweep_rows])

    print_table(
        "gcd@7: profiled workloads vs predicted savings",
        ["Workload", "P(a != b)", "Predicted red %"],
        [[r["workload"], f"{r['p_not_done']:.3f}", r["red"]]
         for r in workload_rows])

    # All savings stay non-negative across the sweep.
    for row in sweep_rows:
        assert all(row[p] >= 0 for p in SWEEP)
    # gcd savings shrink as the done-branch becomes rare.
    by_label = {r["workload"]: r for r in workload_rows}
    assert by_label["uniform"]["red"] < by_label["balanced"]["red"]
    assert by_label["gcd traces"]["red"] < by_label["balanced"]["red"]
