"""Ablation: datapath bit-width.

The paper fixes an 8-bit datapath.  The *relative* savings of the static
model are width-independent (they count operations), but the simulated
savings depend on switching statistics, which scale with width.  Sweep the
width and check the simulated reduction is stable — evidence the headline
result is not an artifact of the 8-bit choice.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import build
from repro.pipeline import ArtifactCache, FlowConfig, Pipeline, run_pair
from repro.power import measure_power
from repro.sim import random_vectors

# 4-bit is excluded: dealer's constants (21, 17) do not fit a 4-bit
# signed datapath, making the circuit degenerate at that width.
WIDTHS = (8, 12, 16)
N_VECTORS = 96

# Width only enters the elaborate stage's cache key, so the sweep reuses
# the PM and scheduling artifacts across all widths of one circuit.
PIPELINE = Pipeline(cache=ArtifactCache())


def regenerate_width_ablation():
    rows = []
    for name, steps in (("dealer", 6), ("vender", 6)):
        graph = build(name)
        for width in WIDTHS:
            pair = run_pair(graph, FlowConfig(n_steps=steps, width=width),
                            pipeline=PIPELINE)
            vectors = random_vectors(graph, N_VECTORS, width=width,
                                     seed=width)
            orig = measure_power(pair.baseline.design, vectors=vectors,
                                 power_management=False)
            new = measure_power(pair.managed.design, vectors=vectors,
                                power_management=True)
            rows.append({
                "name": name,
                "width": width,
                "red": 100.0 * (orig.total - new.total) / orig.total,
            })
    return rows


def test_bench_ablation_width(benchmark):
    rows = benchmark(regenerate_width_ablation)

    by_circuit: dict[str, list] = {}
    for row in rows:
        by_circuit.setdefault(row["name"], []).append(row)

    print_table(
        "Width ablation: simulated power reduction % per datapath width",
        ["Circuit"] + [f"{w}-bit" for w in WIDTHS],
        [[name] + [r["red"] for r in entries]
         for name, entries in by_circuit.items()])

    for name, entries in by_circuit.items():
        reds = [r["red"] for r in entries]
        # Savings exist at every width...
        assert all(r > 5.0 for r in reds), name
        # ...and do not vary wildly (within 15 percentage points).
        assert max(reds) - min(reds) < 15.0, name
