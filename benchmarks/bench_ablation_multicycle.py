"""Ablation: multi-cycle multipliers.

The paper assumes one control step per operation.  Real multipliers are
often slower than adders; giving the vender multipliers a 2-step latency
stretches the critical path and changes where the PM slack sits.  The PM
pass, scheduler, binding and simulator all support latency >= 1, so this
bench checks the headline result survives the relaxation.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits.vender import ACCEPT_THRESHOLD, BALANCE_LIMIT
from repro.ir.builder import GraphBuilder
from repro.pipeline import ArtifactCache, FlowConfig, Pipeline, run_pair
from repro.ir.graph import CDFG
from repro.power import static_power
from repro.sched import critical_path_length
from repro.sim import CompiledEngine, evaluate, random_vectors


def vender_multicycle(mul_latency: int) -> CDFG:
    """The vender benchmark with configurable multiplier latency."""
    b = GraphBuilder(f"vender_mul{mul_latency}")
    coins = b.input("coins")
    credit = b.input("credit")
    price = b.input("price")
    sel = b.input("sel")

    c_two = b.gt(sel, 1, name="c_two")
    p2 = b.mul(price, 2, name="p2")
    p3 = b.mul(price, 3, name="p3")
    for value in (p2, p3):
        b.graph.node(value.nid).latency = mul_latency
    cost = b.mux(c_two, p2, p3, name="cost")
    funds = b.add(coins, credit, name="funds")
    c_pay = b.gt(funds, ACCEPT_THRESHOLD, name="c_pay")
    change = b.sub(funds, cost, name="change")
    short = b.sub(cost, funds, name="short")
    amount = b.mux(c_pay, short, change, name="amount")
    vend = b.mux(c_pay, 0, 1, name="vend")
    account = b.mux(c_two, coins, credit, name="account")
    t2 = b.add(funds, sel, name="t2")
    balance = b.add(t2, account, name="balance")
    c_ovf = b.gt(balance, BALANCE_LIMIT, name="c_ovf")
    wrapped = b.sub(balance, BALANCE_LIMIT, name="wrapped")
    newbal = b.mux(c_ovf, balance, wrapped, name="newbal")
    ovf = b.mux(c_ovf, 1, 0, name="ovf")
    b.output(amount, "amount")
    b.output(vend, "vend")
    b.output(newbal, "balance")
    b.output(ovf, "ovf")
    return b.build()


def regenerate_multicycle_ablation():
    rows = []
    pipeline = Pipeline(cache=ArtifactCache())
    for latency in (1, 2, 3):
        graph = vender_multicycle(latency)
        cp = critical_path_length(graph)
        for slack in (1, 2):
            pair = run_pair(graph, FlowConfig(n_steps=cp + slack),
                            pipeline=pipeline)
            report = static_power(pair.managed.pm)
            rows.append({
                "latency": latency,
                "cp": cp,
                "steps": cp + slack,
                "muxes": pair.managed.pm.managed_count,
                "red": report.reduction_pct,
                "graph": graph,
                "pair": pair,
            })
    return rows


def test_bench_ablation_multicycle(benchmark):
    rows = benchmark(regenerate_multicycle_ablation)

    print_table(
        "Multi-cycle multiplier ablation (vender)",
        ["Mul latency", "CritPath", "Steps", "PM muxes", "PowerRed%"],
        [[r["latency"], r["cp"], r["steps"], r["muxes"], r["red"]]
         for r in rows])

    # Critical path stretches with multiplier latency.
    cps = sorted({(r["latency"], r["cp"]) for r in rows})
    assert [cp for _, cp in cps] == sorted(cp for _, cp in cps)
    assert cps[0][1] < cps[-1][1]

    for row in rows:
        # The multipliers stay gated — the big saving survives.
        assert row["red"] > 20.0
        # And the generated hardware still computes the right thing.
        graph = row["graph"]
        vectors = random_vectors(graph, 12, seed=row["latency"])
        engine = CompiledEngine(row["pair"].managed.design)
        outputs, _ = engine.run_many(vectors)
        assert outputs == [evaluate(graph, v) for v in vectors]
