"""Modulo-scheduler quality gate: found II vs the ceil-division legacy.

Three claims, checked against live synthesis on the paper suite, the
generated ``gen:*`` families, and the CHStone-class kernels:

* **Never worse than ceil-division** — ``scheduler="pipeline"`` capped
  at the legacy ``II = ceil(L / k)`` always returns an initiation
  interval at or below the cap, and beats it outright on a pinned
  subset of the points (the search must actually find overlap, not just
  fall back to the incumbent).

* **Sound** — every returned schedule passes ``Schedule.verify`` and an
  independent modulo-reservation-table recount: busy-cycles counted mod
  II never exceed the returned allocation in any slot, and every
  dependence is respected.

* **Function-preserving** — in both pipelined-gating modes
  (``per_sample`` and ``drop``) the synthesized design simulates
  bit-identically on the compiled, vectorized, and packed backends and
  matches the functional reference model; the report's
  ``pipelined_gated_weight`` never exceeds ``gated_weight``.

Run standalone for the CI smoke check (writes ``BENCH_pipeline.json``
at the repo root)::

    python benchmarks/bench_pipeline.py --smoke

Exits nonzero if any claim fails.  The pytest-benchmark entry point
(``pytest benchmarks/bench_pipeline.py --benchmark-only -s``) times the
II searches and prints the per-circuit table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.circuits import build  # noqa: E402
from repro.pipeline import FlowConfig, Pipeline  # noqa: E402
from repro.sched.timing import critical_path_length  # noqa: E402
from repro.sim.backend import create_engine  # noqa: E402
from repro.sim.engine import CompiledEngine  # noqa: E402
from repro.sim.reference import evaluate  # noqa: E402
from repro.sim.vectors import random_vectors  # noqa: E402

#: (spec, slack, n_stages, must_beat_cap) — n_steps is cp + slack, the
#: legacy cap is ceil(n_steps / n_stages).  ``must_beat_cap`` pins the
#: points where the modulo scheduler is known to find a strictly
#: smaller II than ceil-division; losing one of those is a regression.
POINTS: tuple[tuple[str, int, int, bool], ...] = (
    ("dealer", 2, 1, True),
    ("gcd", 2, 1, True),
    ("vender", 1, 1, True),
    ("vender", 1, 2, False),
    ("cordic", 0, 2, False),
    ("gen:branchy:7", 3, 2, True),
    ("gen:deep:3", 2, 1, True),
    ("gen:small:11", 1, 1, False),
    ("chstone:adpcm", 3, 1, True),
    ("chstone:jpeg", 2, 2, False),
    ("chstone:mips:3", 1, 2, True),
)

GATING_MODES = ("per_sample", "drop")
BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def recount_mrt(schedule, allocation) -> str | None:
    """Independent reservation-table + dependence audit; None when OK."""
    ii = schedule.initiation_interval
    graph = schedule.graph
    table: dict[tuple[int, object], int] = {}
    for node in graph.operations():
        s = schedule.step_of(node.nid)
        for k in range(node.latency):
            key = ((s + k) % ii, node.resource)
            table[key] = table.get(key, 0) + 1
    for (slot, cls), n in table.items():
        if n > allocation.get(cls):
            return (f"slot {slot} uses {n} {cls.value} units, "
                    f"allocated {allocation.get(cls)}")
    for node in graph:
        for succ in graph.succs(node.nid):
            if schedule.step_of(succ) < schedule.step_of(node.nid) + \
                    node.latency:
                return f"dependence {node.nid}->{succ} violated"
    return None


def check_function(graph, design, n_vectors: int, seed: int) -> str | None:
    """Backends vs the reference model; None when bit-identical."""
    vectors = random_vectors(graph, n_vectors, seed=seed)
    expected = [evaluate(graph, v, width=design.width) for v in vectors]
    outs, _ = CompiledEngine(design).run_many(vectors)
    if outs != expected:
        return "compiled backend diverged from the reference"
    for backend in ("vectorized", "packed"):
        outs, _ = create_engine(design, backend=backend).run_many(vectors)
        if outs != expected:
            return f"{backend} backend diverged from the reference"
    return None


def run_points() -> list[dict[str, object]]:
    rows = []
    for spec, slack, n_stages, must_beat in POINTS:
        graph = build(spec)
        cp = critical_path_length(graph)
        n_steps = cp + slack
        cap = -(-n_steps // n_stages)  # the legacy ceil-division II
        row: dict[str, object] = {
            "spec": spec, "n_steps": n_steps, "stages": n_stages,
            "cap": cap, "must_beat_cap": must_beat, "failures": [],
        }
        started = time.perf_counter()
        for mode in GATING_MODES:
            result = Pipeline().run(graph, FlowConfig(
                n_steps=n_steps, scheduler="pipeline",
                initiation_interval=cap, pipelined_gating=mode,
                verify=True))
            ii = result.schedule.initiation_interval
            if mode == GATING_MODES[0]:
                row["ii"] = ii
                report = result.pipelined_gating
                if report is not None:
                    row["gated_weight"] = round(report.gated_weight, 4)
                    row["pipelined_gated_weight"] = round(
                        report.pipelined_gated_weight, 4)
                    row["guard_copies"] = report.guard_copies
                    row["broken_muxes"] = len(report.broken_muxes)
                    if report.pipelined_gated_weight > \
                            report.gated_weight + 1e-9:
                        row["failures"].append(
                            "pipelined_gated_weight exceeds gated_weight")
                else:
                    row["gated_weight"] = row["pipelined_gated_weight"] = \
                        None
                    row["guard_copies"] = row["broken_muxes"] = 0
            if ii is None or ii > cap:
                row["failures"].append(
                    f"found II {ii} above the ceil-division cap {cap} "
                    f"({mode})")
                continue
            result.schedule.verify(result.allocation)
            audit = recount_mrt(result.schedule, result.allocation)
            if audit:
                row["failures"].append(f"MRT audit ({mode}): {audit}")
            n_vectors = 6 if spec == "cordic" else 16
            diverged = check_function(graph, result.design, n_vectors,
                                      seed=n_steps)
            if diverged:
                row["failures"].append(f"{diverged} ({mode})")
        if must_beat and not row["failures"] and row["ii"] >= cap:
            row["failures"].append(
                f"modulo scheduler no longer beats ceil-division "
                f"(II {row['ii']} vs cap {cap})")
        row["seconds"] = round(time.perf_counter() - started, 3)
        rows.append(row)
    return rows


def _print_rows(rows) -> None:
    for r in rows:
        status = "OK" if not r["failures"] else "FAIL"
        weight = ("" if r["gated_weight"] is None else
                  f"  w {r['gated_weight']:.2f}->"
                  f"{r['pipelined_gated_weight']:.2f} "
                  f"(+{r['guard_copies']} regs, "
                  f"{r['broken_muxes']} mux broken)")
        print(f"{r['spec']:>16s}@{r['n_steps']:<3d} II {r['ii']}/"
              f"{r['cap']}{weight}  {r['seconds'] * 1000:.0f} ms  "
              f"{status}")


def _write_report(rows, failures) -> None:
    report = {
        "criterion": ("II <= ceil(n_steps / stages) on every point, "
                      "strictly below on the pinned subset; schedules "
                      "pass an independent MRT + dependence audit; both "
                      "gating modes bit-identical on compiled/"
                      "vectorized/packed vs the reference"),
        "points": rows,
        "ok": not failures,
        "failures": failures,
    }
    BENCH_OUT.write_text(json.dumps(report, indent=2) + "\n",
                         encoding="utf-8")
    print(f"wrote {BENCH_OUT.name} ({'OK' if not failures else 'FAILED'})")


def run_smoke() -> int:
    rows = run_points()
    failures = [f"{r['spec']}@{r['n_steps']}: {msg}"
                for r in rows for msg in r["failures"]]
    _print_rows(rows)
    _write_report(rows, failures)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        beat = sum(1 for r in rows if r["ii"] < r["cap"])
        print(f"pipeline smoke OK (II below ceil-division on "
              f"{beat}/{len(rows)} points)")
    return 1 if failures else 0


def test_bench_pipeline(benchmark):
    from conftest import print_table

    rows = benchmark(run_points)
    print_table(
        "Modulo scheduler vs ceil-division pipelining",
        ["Circuit", "Steps", "Stages", "Cap", "II", "Gated w",
         "Pipelined w", "Copies", "ms"],
        [[r["spec"], r["n_steps"], r["stages"], r["cap"], r["ii"],
          r["gated_weight"], r["pipelined_gated_weight"],
          r["guard_copies"], round(r["seconds"] * 1000)] for r in rows])
    for r in rows:
        assert not r["failures"], r


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: II / soundness / bit-identity "
                             "assertions, nonzero exit on failure; "
                             "writes BENCH_pipeline.json")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("standalone runs need --smoke; the pytest-benchmark "
                     "entry point is test_bench_pipeline")
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
