"""Paper Table II: power-managed scheduling results.

For every (circuit, control-step budget) the paper evaluates, regenerate:
the number of power-managed multiplexors, the area increase of the PM
design over the baseline at the same throughput, the expected executions
per operation class under uniform select probabilities, and the datapath
power reduction.  Prints measured values beside the paper's.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import PAPER_TABLE2, TABLE2_BUDGETS, build
from repro.ir.ops import ResourceClass
from repro.pipeline import ArtifactCache, FlowConfig, Pipeline, run_pair
from repro.power import expected_op_counts, static_power

PIPELINE = Pipeline(cache=ArtifactCache())


def regenerate_table2():
    rows = []
    for name, budgets in TABLE2_BUDGETS.items():
        graph = build(name)
        for steps in budgets:
            pair = run_pair(graph, FlowConfig(n_steps=steps),
                            pipeline=PIPELINE)
            counts = expected_op_counts(pair.managed.pm)
            report = static_power(pair.managed.pm)
            rows.append({
                "name": name,
                "steps": steps,
                "pm_muxes": pair.managed.pm.managed_count,
                "area": pair.area_increase,
                "mux": counts.get(ResourceClass.MUX, 0.0),
                "comp": counts.get(ResourceClass.COMP, 0.0),
                "add": counts.get(ResourceClass.ADD, 0.0),
                "sub": counts.get(ResourceClass.SUB, 0.0),
                "mul": counts.get(ResourceClass.MUL, 0.0),
                "red": report.reduction_pct,
            })
    return rows


def test_bench_table2(benchmark):
    measured = benchmark(regenerate_table2)

    paper = {(r.name, r.control_steps): r for r in PAPER_TABLE2}
    display = []
    for row in measured:
        p = paper[(row["name"], row["steps"])]
        display.append([
            row["name"], row["steps"],
            f"{row['pm_muxes']}/{p.pm_muxes}",
            f"{row['area']:.2f}/{p.area_increase:.2f}",
            f"{row['mux']:.2f}/{p.avg_mux:.2f}",
            f"{row['comp']:.2f}/{p.avg_comp:.2f}",
            f"{row['add']:.2f}/{p.avg_add:.2f}",
            f"{row['sub']:.2f}/{p.avg_sub:.2f}",
            f"{row['mul']:.2f}/{p.avg_mul:.2f}",
            f"{row['red']:.2f}/{p.power_reduction_pct:.2f}",
        ])
    print_table(
        "Table II: power management results (measured/paper)",
        ["Circuit", "Steps", "P.Man Muxs", "AreaIncr", "MUX", "COMP",
         "+", "-", "*", "PowerRed%"],
        display)

    by_key = {(r["name"], r["steps"]): r for r in measured}

    # Shape assertions (who wins, roughly by how much, where it saturates):
    # 1. power management never hurts datapath power.
    assert all(r["red"] >= 0 for r in measured)
    # 2. savings are substantial (paper band: ~12-42%).
    assert all(r["red"] >= 10.0 for r in measured)
    # 3. more slack never reduces the savings for a circuit.
    for name, budgets in TABLE2_BUDGETS.items():
        reds = [by_key[(name, s)]["red"] for s in budgets]
        assert reds == sorted(reds), name
    # 4. gcd reproduces the paper's reduction exactly at 5 and 6 steps.
    assert abs(by_key[("gcd", 5)]["red"] - 11.76) < 0.01
    # 5. cordic approaches the paper's 52-step result (34.92%).
    assert abs(by_key[("cordic", 52)]["red"] - 34.92) < 2.0
    # 6. area increase stays in the paper's band (<= ~1.2x, small slack).
    assert all(r["area"] <= 1.35 for r in measured)
