"""Ablation: the base scheduler under the PM pass (step 11).

The paper plugs its control edges into HYPER's scheduler; the claim is
that the PM pass composes with *any* resource-minimizing time-constrained
scheduler.  Select each registered strategy by name through the pipeline
(``FlowConfig.scheduler``) and compare resource costs on the augmented
graphs: both must honour the control edges, and their costs should be
comparable.  The caching pipeline shares the PM artifacts between the
two strategies of each (circuit, budget).
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import TABLE2_BUDGETS, build
from repro.pipeline import ArtifactCache, FlowConfig, Pipeline

CIRCUITS = ("dealer", "gcd", "vender")

PIPELINE = Pipeline(cache=ArtifactCache())


def regenerate_scheduler_ablation():
    rows = []
    for name in CIRCUITS:
        graph = build(name)
        for steps in TABLE2_BUDGETS[name]:
            lst = PIPELINE.run(graph, FlowConfig(n_steps=steps,
                                                 scheduler="list"))
            fds = PIPELINE.run(graph, FlowConfig(
                n_steps=steps, scheduler="force_directed"))
            rows.append({
                "name": name,
                "steps": steps,
                "list_cost": lst.allocation.cost(),
                "fds_cost": fds.allocation.cost(),
                "list_alloc": str(lst.allocation.as_dict()),
                "fds_alloc": str(fds.allocation.as_dict()),
            })
    return rows


def test_bench_ablation_scheduler(benchmark):
    rows = benchmark(regenerate_scheduler_ablation)

    print_table(
        "Scheduler ablation on PM-augmented graphs (FU cost)",
        ["Circuit", "Steps", "list+minsearch", "force-directed",
         "list alloc", "FDS alloc"],
        [[r["name"], r["steps"], r["list_cost"], r["fds_cost"],
          r["list_alloc"], r["fds_alloc"]] for r in rows])

    for row in rows:
        # Both scheduled successfully under the control edges, and the
        # min-resource search never loses to plain FDS.
        assert row["list_cost"] <= row["fds_cost"]
        # FDS stays within 2x — sanity that both are in the same regime.
        assert row["fds_cost"] <= 2 * row["list_cost"] + 8
