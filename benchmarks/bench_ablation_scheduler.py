"""Ablation: the base scheduler under the PM pass (step 11).

The paper plugs its control edges into HYPER's scheduler; the claim is
that the PM pass composes with *any* resource-minimizing time-constrained
scheduler.  Compare our list scheduler (with minimum-resource search)
against force-directed scheduling on the augmented graphs: both must
honour the control edges, and their resource costs should be comparable.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import TABLE2_BUDGETS, build
from repro.core import apply_power_management
from repro.sched import (
    Allocation,
    force_directed_schedule,
    minimize_resources,
)

CIRCUITS = ("dealer", "gcd", "vender")


def regenerate_scheduler_ablation():
    rows = []
    for name in CIRCUITS:
        graph = build(name)
        for steps in TABLE2_BUDGETS[name]:
            pm = apply_power_management(graph, steps)
            lst = minimize_resources(pm.graph, steps)
            fds_schedule = force_directed_schedule(pm.graph, steps)
            fds_alloc = fds_schedule.resource_usage()
            rows.append({
                "name": name,
                "steps": steps,
                "list_cost": lst.allocation.cost(),
                "fds_cost": fds_alloc.cost(),
                "list_alloc": str(lst.allocation.as_dict()),
                "fds_alloc": str(fds_alloc.as_dict()),
            })
    return rows


def test_bench_ablation_scheduler(benchmark):
    rows = benchmark(regenerate_scheduler_ablation)

    print_table(
        "Scheduler ablation on PM-augmented graphs (FU cost)",
        ["Circuit", "Steps", "list+minsearch", "force-directed",
         "list alloc", "FDS alloc"],
        [[r["name"], r["steps"], r["list_cost"], r["fds_cost"],
          r["list_alloc"], r["fds_alloc"]] for r in rows])

    for row in rows:
        # Both scheduled successfully under the control edges, and the
        # min-resource search never loses to plain FDS.
        assert row["list_cost"] <= row["fds_cost"]
        # FDS stays within 2x — sanity that both are in the same regime.
        assert row["fds_cost"] <= 2 * row["list_cost"] + 8
