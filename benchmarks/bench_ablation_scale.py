"""Ablation: algorithm scaling with circuit size.

The paper's pass is quadratic-ish (per-MUX cone analysis + global
re-timing).  Two scaling axes:

* sparse FIR with n taps — n multiplexors, each with a one-op cone;
* unrolled GCD with k copies — 6k multiplexors with nested cones.

The bench reports managed muxes and pass runtime per size, and
pytest-benchmark times the largest configuration so regressions in the
cone/re-timing machinery show up.
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.circuits import gcd
from repro.circuits.extra import sparse_fir
from repro.core import apply_power_management
from repro.ir.compose import unroll
from repro.power import static_power
from repro.sched import critical_path_length


def _measure(graph):
    cp = critical_path_length(graph)
    start = time.perf_counter()
    result = apply_power_management(graph, cp + 2)
    elapsed = time.perf_counter() - start
    return {
        "ops": len(graph.operations()),
        "muxes": len(graph.muxes()),
        "managed": result.managed_count,
        "red": static_power(result).reduction_pct,
        "seconds": elapsed,
    }


def regenerate_scale_ablation():
    rows = []
    for n in (4, 8, 16, 32):
        row = _measure(sparse_fir(n))
        rows.append({"name": f"fir{n}", **row})
    for k in (1, 2, 4, 8):
        graph = unroll(gcd(), k, {"gcd": "a", "next_b": "b"})
        row = _measure(graph)
        rows.append({"name": f"gcd_x{k}", **row})
    return rows


def test_bench_ablation_scale(benchmark):
    rows = regenerate_scale_ablation()
    # Time the heaviest case explicitly.
    heavy = unroll(gcd(), 8, {"gcd": "a", "next_b": "b"})
    cp = critical_path_length(heavy)
    benchmark(lambda: apply_power_management(heavy, cp + 2))

    print_table(
        "Scale ablation: PM pass vs circuit size",
        ["Circuit", "Ops", "Muxes", "Managed", "PowerRed%", "Pass time (s)"],
        [[r["name"], r["ops"], r["muxes"], r["managed"], r["red"],
          f"{r['seconds']:.3f}"] for r in rows])

    by_name = {r["name"]: r for r in rows}
    # FIR: every tap managed at +2 slack, at every size.
    for n in (4, 8, 16, 32):
        assert by_name[f"fir{n}"]["managed"] == n
    # Unrolled GCD: managed muxes scale linearly (2 per copy).
    for k in (1, 2, 4, 8):
        assert by_name[f"gcd_x{k}"]["managed"] == 2 * k
    # Relative savings are size-stable per family.
    fir_reds = [by_name[f"fir{n}"]["red"] for n in (4, 8, 16, 32)]
    assert max(fir_reds) - min(fir_reds) < 2.0
    gcd_reds = [by_name[f"gcd_x{k}"]["red"] for k in (1, 2, 4, 8)]
    assert max(gcd_reds) - min(gcd_reds) < 0.5
