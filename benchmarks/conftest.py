"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
paper-vs-measured rows (run with ``pytest benchmarks/ --benchmark-only -s``
to see them); the pytest-benchmark fixture times the regeneration itself.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str],
                rows: list[list[object]]) -> None:
    """Fixed-width table printer used by all benches."""
    widths = [len(h) for h in headers]
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in text_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
