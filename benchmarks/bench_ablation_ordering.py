"""Ablation: multiplexor processing order (paper §IV-A).

The paper observes the greedy output-first order can block better
selections and proposes a reordering pre-process.  This bench quantifies
it: for every circuit and budget, run the PM pass under each ordering
strategy plus (for small circuits) the exhaustive optimum, and report the
gated power weight.
"""

from __future__ import annotations

from conftest import print_table

from repro.circuits import TABLE2_BUDGETS, build
from repro.core import (
    PMOptions,
    apply_power_management,
    exhaustive_search,
    gated_weight,
)

STRATEGIES = ("output_first", "input_first", "savings")


def regenerate_ordering_ablation():
    rows = []
    for name, budgets in TABLE2_BUDGETS.items():
        graph = build(name)
        for steps in budgets:
            row = {"name": name, "steps": steps}
            for strategy in STRATEGIES:
                result = apply_power_management(
                    graph, steps, PMOptions(ordering=strategy))
                row[strategy] = gated_weight(result)
                row[f"{strategy}_muxes"] = result.managed_count
            if len(graph.muxes()) <= 6:
                row["optimal"] = gated_weight(
                    exhaustive_search(graph, steps, limit=6).best)
            else:
                row["optimal"] = None
            rows.append(row)
    return rows


def test_bench_ablation_ordering(benchmark):
    rows = benchmark(regenerate_ordering_ablation)

    display = [[r["name"], r["steps"],
                f"{r['output_first']:.2f} ({r['output_first_muxes']})",
                f"{r['input_first']:.2f} ({r['input_first_muxes']})",
                f"{r['savings']:.2f} ({r['savings_muxes']})",
                "-" if r["optimal"] is None else f"{r['optimal']:.2f}"]
               for r in rows]
    print_table(
        "S IV-A ablation: gated power weight (managed muxes) per ordering",
        ["Circuit", "Steps", "output-first", "input-first", "savings",
         "exhaustive"],
        display)

    for row in rows:
        # The exhaustive optimum dominates every heuristic.
        if row["optimal"] is not None:
            for strategy in STRATEGIES:
                assert row[strategy] <= row["optimal"] + 1e-9
        # Every strategy gates a non-negative weight.
        assert all(row[s] >= 0 for s in STRATEGIES)

    # The phenomenon the paper reports: somewhere, order changes outcome.
    differs = any(
        len({round(r[s], 6) for s in STRATEGIES}) > 1 for r in rows
    )
    assert differs, "ordering made no difference anywhere (unexpected)"
