"""Value lifetimes and wiring resolution."""

from repro.alloc.lifetimes import resolve_source, value_lifetimes
from repro.ir.builder import GraphBuilder
from repro.ir.ops import Op
from repro.sched.list_scheduler import list_schedule
from repro.sched.resources import unbounded_allocation


class TestResolveSource:
    def test_direct_node_is_its_own_root(self, abs_diff_graph):
        comp = next(n for n in abs_diff_graph if n.name == "c")
        ref = resolve_source(abs_diff_graph, comp.nid)
        assert ref.root == comp.nid
        assert ref.shifts == ()

    def test_shift_chain_resolved_in_order(self):
        b = GraphBuilder("t")
        a = b.input("a")
        s1 = b.shr(a, 1)
        s2 = b.shl(s1, 2)
        b.output(s2, "out")
        g = b.build()
        out = g.outputs()[0]
        ref = resolve_source(g, out.operands[0])
        assert g.node(ref.root).op is Op.INPUT
        assert ref.shifts == ((Op.SHR, 1), (Op.SHL, 2))


class TestLifetimes:
    def test_inputs_born_at_zero(self, abs_diff_graph):
        g = abs_diff_graph
        schedule = list_schedule(g, 2, unbounded_allocation(g))
        lifetimes = value_lifetimes(schedule)
        for node in g.inputs():
            assert lifetimes[node.nid].born == 0

    def test_value_lives_to_last_read(self, abs_diff_graph):
        g = abs_diff_graph
        schedule = list_schedule(g, 2, unbounded_allocation(g))
        lifetimes = value_lifetimes(schedule)
        comp = next(n for n in g if n.name == "c")
        mux = g.muxes()[0]
        assert lifetimes[comp.nid].born == schedule.finish_of(comp.nid)
        assert lifetimes[comp.nid].last_read == schedule.step_of(mux.nid)

    def test_output_values_live_to_end(self, abs_diff_graph):
        g = abs_diff_graph
        schedule = list_schedule(g, 3, unbounded_allocation(g))
        lifetimes = value_lifetimes(schedule)
        mux = g.muxes()[0]
        assert lifetimes[mux.nid].last_read == schedule.n_steps

    def test_constants_have_no_lifetime(self, dealer_graph):
        g = dealer_graph
        schedule = list_schedule(g, 4, unbounded_allocation(g))
        lifetimes = value_lifetimes(schedule)
        for const in g.constants():
            assert const.nid not in lifetimes

    def test_conflict_predicate(self):
        from repro.alloc.lifetimes import Lifetime
        a = Lifetime(value=0, born=0, last_read=2)
        b = Lifetime(value=1, born=3, last_read=4)
        c = Lifetime(value=2, born=2, last_read=3)
        assert not a.conflicts(b)
        assert a.conflicts(c)
        assert c.conflicts(b)

    def test_reads_through_wiring_extend_root(self):
        b = GraphBuilder("t")
        a, c = b.input("a"), b.input("c")
        v = b.add(a, c, name="v")
        sh = b.shr(v, 1, name="sh")
        late = b.sub(sh, c, name="late")
        b.output(late, "out")
        g = b.build()
        schedule = list_schedule(g, 3, unbounded_allocation(g))
        lifetimes = value_lifetimes(schedule)
        v_node = next(n for n in g if n.name == "v")
        late_node = next(n for n in g if n.name == "late")
        assert lifetimes[v_node.nid].last_read >= \
            schedule.step_of(late_node.nid)
