"""Execution-unit binding."""

import pytest

from repro.alloc.fu_binding import FUInstance, bind_operations
from repro.ir.ops import ResourceClass
from repro.sched.list_scheduler import list_schedule
from repro.sched.minimize import minimize_resources
from repro.sched.resources import unbounded_allocation
from repro.sched.timing import critical_path_length


class TestBinding:
    def test_every_op_bound_to_matching_class(self, small_circuit):
        cp = critical_path_length(small_circuit)
        schedule = minimize_resources(small_circuit, cp).schedule
        binding = bind_operations(schedule)
        for node in small_circuit.operations():
            assert binding.unit_of(node.nid).resource == node.resource

    def test_unit_count_equals_peak_usage(self, small_circuit):
        cp = critical_path_length(small_circuit)
        schedule = minimize_resources(small_circuit, cp + 1).schedule
        binding = bind_operations(schedule)
        usage = schedule.resource_usage()
        by_class = {}
        for unit in binding.units:
            by_class[unit.resource] = by_class.get(unit.resource, 0) + 1
        assert by_class == {c: n for c, n in usage.counts.items() if n}

    def test_no_two_ops_share_unit_and_step(self, vender_graph):
        schedule = minimize_resources(vender_graph, 6).schedule
        binding = bind_operations(schedule)
        seen = {}
        for node in vender_graph.operations():
            key = (binding.unit_of(node.nid), schedule.step_of(node.nid))
            assert key not in seen
            seen[key] = node.nid

    def test_ops_on_sorted_by_step(self, dealer_graph):
        schedule = minimize_resources(dealer_graph, 6).schedule
        binding = bind_operations(schedule)
        for unit in binding.units:
            steps = [schedule.step_of(n) for n in binding.ops_on(unit)]
            assert steps == sorted(steps)

    def test_unbound_lookup_raises(self, dealer_graph):
        schedule = minimize_resources(dealer_graph, 4).schedule
        binding = bind_operations(schedule)
        with pytest.raises(KeyError, match="not bound"):
            binding.unit_of(12345)


class TestMutexSharing:
    def test_mutually_exclusive_ops_can_share(self, abs_diff_graph):
        """The §II-C classical optimization: the two subs may share one
        unit in the same step because only one result is ever used."""
        g = abs_diff_graph
        schedule = list_schedule(g, 2, unbounded_allocation(g))
        plain = bind_operations(schedule, mutex_sharing=False)
        shared = bind_operations(schedule, mutex_sharing=True)
        subs_plain = {plain.unit_of(n.nid) for n in g.operations()
                      if n.resource is ResourceClass.SUB}
        subs_shared = {shared.unit_of(n.nid) for n in g.operations()
                       if n.resource is ResourceClass.SUB}
        assert len(subs_plain) == 2
        assert len(subs_shared) == 1

    def test_verify_rejects_illegal_share(self, abs_diff_graph):
        g = abs_diff_graph
        schedule = list_schedule(g, 2, unbounded_allocation(g))
        binding = bind_operations(schedule)
        subs = [n.nid for n in g.operations()
                if n.resource is ResourceClass.SUB]
        binding.assignment[subs[0]] = binding.assignment[subs[1]]
        with pytest.raises(ValueError, match="double-booked"):
            binding.verify(mutex_sharing=False)
        binding.verify(mutex_sharing=True)  # exclusive ops: legal

    def test_wrong_class_detected(self, abs_diff_graph):
        g = abs_diff_graph
        schedule = list_schedule(g, 3, unbounded_allocation(g))
        binding = bind_operations(schedule)
        comp = next(n for n in g if n.name == "c")
        binding.assignment[comp.nid] = FUInstance(ResourceClass.ADD, 0)
        with pytest.raises(ValueError, match="wrong class"):
            binding.verify()


class TestPipelinedBinding:
    def test_modulo_conflicts_respected(self, dealer_graph):
        result = minimize_resources(dealer_graph, 6, initiation_interval=3)
        binding = bind_operations(result.schedule)
        ii = 3
        seen = {}
        for node in dealer_graph.operations():
            slot = result.schedule.step_of(node.nid) % ii
            key = (binding.unit_of(node.nid), slot)
            assert key not in seen, "modulo-II double booking"
            seen[key] = node.nid
