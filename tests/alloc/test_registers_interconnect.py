"""Left-edge register allocation and interconnect generation."""

import pytest

from repro.alloc.fu_binding import bind_operations
from repro.alloc.interconnect import build_interconnect
from repro.alloc.register_alloc import allocate_registers
from repro.sched.minimize import minimize_resources
from repro.sched.timing import critical_path_length


def synth(graph, steps):
    schedule = minimize_resources(graph, steps).schedule
    binding = bind_operations(schedule)
    registers = allocate_registers(schedule)
    return schedule, binding, registers


class TestRegisterAllocation:
    def test_verify_passes(self, small_circuit):
        cp = critical_path_length(small_circuit)
        _, _, registers = synth(small_circuit, cp + 1)
        registers.verify()

    def test_every_value_has_a_register(self, dealer_graph):
        _, _, registers = synth(dealer_graph, 5)
        expected = {n.nid for n in dealer_graph
                    if n.is_schedulable or n.op.value == "input"}
        assert set(registers.assignment) == expected

    def test_left_edge_shares_registers(self, gcd_graph):
        """Sequentialized values must share: fewer registers than values."""
        _, _, registers = synth(gcd_graph, 7)
        assert registers.count < len(registers.assignment)

    def test_register_of_unknown_value(self, dealer_graph):
        _, _, registers = synth(dealer_graph, 4)
        with pytest.raises(KeyError, match="no register"):
            registers.register_of(991)

    def test_overlap_detection(self, abs_diff_graph):
        _, _, registers = synth(abs_diff_graph, 3)
        # Force two overlapping values into one register.
        values = sorted(registers.assignment)
        reg = registers.assignment[values[0]]
        lifetimes = registers.lifetimes
        clash = next(v for v in values
                     if v != values[0]
                     and lifetimes[v].conflicts(lifetimes[values[0]]))
        registers.assignment[clash] = reg
        with pytest.raises(ValueError, match="overlapping"):
            registers.verify()

    def test_more_slack_fewer_or_equal_registers_not_guaranteed_but_valid(
            self, vender_graph):
        # Register count varies with the schedule; both must be valid.
        for steps in (5, 6, 7):
            _, _, registers = synth(vender_graph, steps)
            registers.verify()


class TestInterconnect:
    def test_shared_unit_ports_have_multiple_sources(self, abs_diff_graph):
        """With one subtractor executing both subs, its ports see two
        different sources."""
        schedule = minimize_resources(abs_diff_graph, 3).schedule
        binding = bind_operations(schedule)
        registers = allocate_registers(schedule)
        ic = build_interconnect(binding, registers)
        sub_unit = next(u for u in binding.units
                        if u.resource.value == "-")
        assert ic.mux_inputs(sub_unit, 0) == 2
        assert ic.mux_inputs(sub_unit, 1) == 2

    def test_dedicated_unit_ports_have_one_source(self, abs_diff_graph):
        schedule = minimize_resources(abs_diff_graph, 2).schedule
        binding = bind_operations(schedule)
        registers = allocate_registers(schedule)
        ic = build_interconnect(binding, registers)
        for unit in binding.units:
            if unit.resource.value == "-":
                assert ic.mux_inputs(unit, 0) == 1

    def test_constant_sources_identified(self, dealer_graph):
        schedule = minimize_resources(dealer_graph, 4).schedule
        binding = bind_operations(schedule)
        registers = allocate_registers(schedule)
        ic = build_interconnect(binding, registers)
        const_sources = [
            s for sources in ic.sources.values() for s in sources
            if s.is_const
        ]
        assert const_sources  # dealer compares against 21/17 constants
        assert all(s.const_value is not None for s in const_sources)

    def test_area_counts_only_steered_ports(self, abs_diff_graph):
        schedule = minimize_resources(abs_diff_graph, 2).schedule
        binding = bind_operations(schedule)
        registers = allocate_registers(schedule)
        ic = build_interconnect(binding, registers)
        # Dedicated units: muxed area only where >1 source.
        for (unit, port), sources in ic.sources.items():
            if len(sources) <= 1:
                continue
        assert ic.area() >= 0
