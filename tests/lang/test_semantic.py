"""Semantic analysis: single assignment, def-before-use, shift constants."""

import pytest

from repro.lang.errors import LangError
from repro.lang.parser import parse
from repro.lang.semantic import analyze


def analyze_src(source):
    return analyze(parse(source))


class TestAccepts:
    def test_valid_program(self):
        info = analyze_src("""
            circuit t { input a, b; s = a + b; output o = s; }
        """)
        assert info.inputs == ["a", "b"]
        assert info.definitions == ["s", "o"]
        assert info.outputs == ["o"]
        assert info.warnings == []

    def test_constant_shift_ok(self):
        analyze_src("circuit t { input a; output o = a >> 3; }")


class TestRejects:
    def test_double_definition(self):
        with pytest.raises(LangError, match="defined twice"):
            analyze_src("circuit t { input a; x = a; x = a; output o = x; }")

    def test_input_redefined(self):
        with pytest.raises(LangError, match="defined twice"):
            analyze_src("circuit t { input a; a = 1; output o = a; }")

    def test_duplicate_input(self):
        with pytest.raises(LangError, match="defined twice"):
            analyze_src("circuit t { input a, a; output o = a; }")

    def test_use_before_definition(self):
        with pytest.raises(LangError, match="used before definition"):
            analyze_src("circuit t { input a; x = y + a; y = a; output o = x; }")

    def test_undefined_name(self):
        with pytest.raises(LangError, match="used before definition"):
            analyze_src("circuit t { input a; output o = nothing; }")

    def test_no_outputs(self):
        with pytest.raises(LangError, match="no outputs"):
            analyze_src("circuit t { input a; x = a + 1; }")

    def test_variable_shift_amount(self):
        with pytest.raises(LangError, match="shift amounts must be"):
            analyze_src("circuit t { input a, k; output o = a >> k; }")

    def test_use_in_ternary_checked(self):
        with pytest.raises(LangError, match="used before definition"):
            analyze_src("circuit t { input a; output o = a > 0 ? miss : a; }")


class TestWarnings:
    def test_unused_value_warned(self):
        info = analyze_src(
            "circuit t { input a; waste = a + 1; output o = a; }")
        assert any("never used" in w for w in info.warnings)

    def test_no_inputs_warned(self):
        info = analyze_src("circuit t { output o = 1 + 2; }")
        assert any("no inputs" in w for w in info.warnings)

    def test_output_not_flagged_unused(self):
        info = analyze_src("circuit t { input a; output o = a; }")
        assert info.warnings == []
