"""Tokenizer behaviour."""

import pytest

from repro.lang.errors import LangError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_idents_keywords_ints(self):
        tokens = tokenize("circuit foo { input a; x = 42; }")
        assert tokens[0].kind == "keyword"
        assert tokens[1].kind == "ident" and tokens[1].text == "foo"
        assert any(t.kind == "int" and t.text == "42" for t in tokens)
        assert tokens[-1].kind == "eof"

    def test_underscore_identifiers(self):
        assert kinds("_x x_1")[:2] == ["ident", "ident"]

    def test_two_char_operators_win_over_one(self):
        assert texts("a << b >> c <= d >= e == f != g") == \
            ["a", "<<", "b", ">>", "c", "<=", "d", ">=", "e", "==", "f",
             "!=", "g"]

    def test_all_single_operators(self):
        assert texts("+-*<>&|^~?:=;,(){}") == list("+-*<>&|^~?:=;,(){}")


class TestCommentsAndWhitespace:
    def test_hash_comment(self):
        assert texts("a # comment with ? tokens\nb") == ["a", "b"]

    def test_double_slash_comment(self):
        assert texts("a // note\nb") == ["a", "b"]

    def test_comment_at_eof(self):
        assert texts("a # trailing") == ["a"]

    def test_blank_source(self):
        assert kinds("") == ["eof"]
        assert kinds("   \n\t ") == ["eof"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(LangError) as err:
            tokenize("a\n  $")
        assert err.value.line == 2
        assert err.value.col == 3


def test_unknown_character_rejected():
    with pytest.raises(LangError, match="unexpected character"):
        tokenize("a @ b")
