"""Lowering to CDFG: operator mapping and end-to-end behaviour."""

import pytest

from repro.ir.ops import Op
from repro.lang.lower import compile_circuit
from repro.sim.reference import evaluate


def run(source, **inputs):
    return evaluate(compile_circuit(source), inputs)


class TestOperators:
    @pytest.mark.parametrize("expr,a,b,expected", [
        ("a + b", 3, 4, 7),
        ("a - b", 3, 4, -1),
        ("a * b", 3, 4, 12),
        ("a > b", 3, 4, 0),
        ("a < b", 3, 4, 1),
        ("a >= b", 4, 4, 1),
        ("a <= b", 5, 4, 0),
        ("a == b", 4, 4, 1),
        ("a != b", 4, 4, 0),
        ("a & b", 12, 10, 8),
        ("a | b", 12, 10, 14),
        ("a ^ b", 12, 10, 6),
    ])
    def test_binary(self, expr, a, b, expected):
        out = run(f"circuit t {{ input a, b; output r = {expr}; }}",
                  a=a, b=b)
        assert out["r"] == expected

    def test_shift_lowers_to_wiring(self):
        g = compile_circuit("circuit t { input a; output r = a >> 2; }")
        shrs = [n for n in g if n.op is Op.SHR]
        assert len(shrs) == 1
        assert not shrs[0].is_schedulable
        assert evaluate(g, {"a": -8})["r"] == -2

    def test_unary_minus_is_a_subtractor(self):
        g = compile_circuit("circuit t { input a; output r = -a; }")
        assert len([n for n in g if n.op is Op.SUB]) == 1
        assert evaluate(g, {"a": 5})["r"] == -5

    def test_negative_literal_is_const(self):
        g = compile_circuit("circuit t { input a; output r = a + -3; }")
        assert any(n.op is Op.CONST and n.value == -3 for n in g)
        assert len([n for n in g if n.op is Op.SUB]) == 0

    def test_bitwise_not(self):
        assert run("circuit t { input a; output r = ~a; }", a=0)["r"] == -1


class TestTernaryLowering:
    def test_mux_convention(self):
        """``c ? t : e`` must route t when c is 1 (select-1 side)."""
        g = compile_circuit(
            "circuit t { input c, x, y; output r = c ? x : y; }")
        mux = g.muxes()[0]
        # select-1 operand must be x (the then branch)
        then_node = g.node(mux.data_operand(1))
        assert then_node.name == "x"
        assert evaluate(g, {"c": 1, "x": 10, "y": 20})["r"] == 10
        assert evaluate(g, {"c": 0, "x": 10, "y": 20})["r"] == 20

    def test_nested_ternary(self):
        out = run("""
            circuit clamp {
                input x;
                output r = x > 10 ? 10 : (x < -10 ? -10 : x);
            }
        """, x=42)
        assert out["r"] == 10

    def test_abs_diff_program(self):
        src = "circuit t { input a, b; output r = a > b ? a - b : b - a; }"
        assert run(src, a=9, b=3)["r"] == 6
        assert run(src, a=3, b=9)["r"] == 6


class TestStructure:
    def test_value_names_propagate(self):
        g = compile_circuit(
            "circuit t { input a; total = a + 1; output o = total; }")
        assert any(n.name == "total" for n in g)

    def test_shared_subexpressions_not_merged(self):
        # The language is explicit dataflow: writing a+b twice makes two adders.
        g = compile_circuit(
            "circuit t { input a, b; output x = a + b; output y = a + b; }")
        assert len([n for n in g if n.op is Op.ADD]) == 2

    def test_eight_bit_wraparound(self):
        assert run("circuit t { input a; output r = a + 100; }",
                   a=100)["r"] == -56
