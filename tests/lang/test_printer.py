"""Pretty-printer round trips."""

import pytest
from hypothesis import given, settings

from repro.analysis.stats import circuit_stats
from repro.circuits import build
from repro.circuits.sources import SOURCES
from repro.lang.lower import compile_circuit, lower
from repro.lang.parser import parse
from repro.lang.printer import graph_to_source, print_expr, print_program
from repro.sim.reference import evaluate
from repro.sim.vectors import random_vectors
from tests.strategies import circuits, generated_circuits


class TestProgramRoundTrip:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_parse_print_parse_fixpoint(self, name):
        program = parse(SOURCES[name])
        printed = print_program(program)
        assert parse(printed) == program

    def test_precedence_preserved(self):
        src = ("circuit t { input a, b, c; "
               "output r = (a + b) * c - a * (b - c); }")
        program = parse(src)
        reparsed = parse(print_program(program))
        g1, g2 = lower(program), lower(reparsed)
        for vec in random_vectors(g1, 20, seed=1):
            assert evaluate(g1, vec) == evaluate(g2, vec)

    def test_nested_ternary_round_trip(self):
        src = ("circuit t { input a, b; "
               "output r = a > b ? (a > 0 ? a : b) : a - b; }")
        program = parse(src)
        assert parse(print_program(program)) == program

    def test_unary_round_trip(self):
        src = "circuit t { input a; output r = -a * ~a; }"
        program = parse(src)
        assert parse(print_program(program)) == program


class TestExprPrinter:
    @pytest.mark.parametrize("src,expected", [
        ("a + b * c", "a + b * c"),
        ("(a + b) * c", "(a + b) * c"),
        ("a - (b - c)", "a - (b - c)"),
        ("a - b - c", "a - b - c"),
        ("a >> 2", "a >> 2"),
    ])
    def test_minimal_parentheses(self, src, expected):
        program = parse(f"circuit t {{ input a, b, c; output r = {src}; }}")
        assert print_expr(program.statements[-1].expr) == expected


class TestGraphDecompilation:
    @pytest.mark.parametrize("name", ["dealer", "gcd", "vender"])
    def test_decompiled_benchmarks_equivalent(self, name):
        graph = build(name)
        source = graph_to_source(graph)
        recompiled = compile_circuit(source)
        assert circuit_stats(recompiled).as_row()[1:] == \
            circuit_stats(graph).as_row()[1:]
        for vec in random_vectors(graph, 25, seed=5):
            assert list(evaluate(recompiled, vec).values()) == \
                list(evaluate(graph, vec).values())

    def test_decompiled_cordic_equivalent(self):
        from repro.circuits import cordic
        graph = cordic(n_iterations=4)
        recompiled = compile_circuit(graph_to_source(graph))
        for vec in random_vectors(graph, 10, seed=6):
            assert list(evaluate(recompiled, vec).values()) == \
                list(evaluate(graph, vec).values())

    @settings(max_examples=50, deadline=None)
    @given(circuits(max_ops=12))
    def test_random_circuits_decompile_equivalently(self, graph):
        recompiled = compile_circuit(graph_to_source(graph))
        vec = {n.name: 13 for n in graph.inputs()}
        assert list(evaluate(recompiled, vec).values()) == \
            list(evaluate(graph, vec).values())


class TestGeneratedCircuitRoundTrips:
    """parse <-> print and decompile <-> recompile over repro.gen
    workloads: nested conditionals and mutually-exclusive branch cones
    stress the printer far harder than the hand-written sources."""

    @settings(max_examples=50, deadline=None)
    @given(generated_circuits())
    def test_parse_print_parse_fixpoint(self, graph):
        program = parse(graph_to_source(graph))
        printed = print_program(program)
        assert parse(printed) == program
        # And printing is itself a fixpoint after one round.
        assert print_program(parse(printed)) == printed

    @settings(max_examples=50, deadline=None)
    @given(generated_circuits())
    def test_decompile_recompile_preserves_behaviour_and_ops(self, graph):
        recompiled = compile_circuit(graph_to_source(graph))
        assert recompiled.op_counts() == graph.op_counts()
        for vec in random_vectors(graph, 5, seed=17):
            assert list(evaluate(recompiled, vec).values()) == \
                list(evaluate(graph, vec).values())
