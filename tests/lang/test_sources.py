"""The DSL versions of the paper benchmarks match the builder versions."""

import pytest

from repro.analysis.stats import circuit_stats
from repro.circuits import abs_diff, build
from repro.circuits.sources import SOURCES
from repro.lang.lower import compile_circuit
from repro.sim.reference import evaluate
from repro.sim.vectors import random_vectors

BUILDERS = {
    "abs_diff": abs_diff,
    "dealer": lambda: build("dealer"),
    "gcd": lambda: build("gcd"),
    "vender": lambda: build("vender"),
}


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_op_counts_match_builder(name):
    dsl = circuit_stats(compile_circuit(SOURCES[name]))
    ref = circuit_stats(BUILDERS[name]())
    assert dsl.as_row()[1:] == ref.as_row()[1:]


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_behaviour_matches_builder(name):
    dsl_graph = compile_circuit(SOURCES[name])
    ref_graph = BUILDERS[name]()
    for vector in random_vectors(ref_graph, 40, seed=11):
        dsl_out = list(evaluate(dsl_graph, vector).values())
        ref_out = list(evaluate(ref_graph, vector).values())
        assert dsl_out == ref_out, vector


def test_every_builder_circuit_has_a_source():
    assert set(SOURCES) == set(BUILDERS)
