"""Parser: grammar coverage, precedence, diagnostics."""

import pytest

from repro.lang.ast_nodes import (
    BinOp,
    Definition,
    Ident,
    InputDecl,
    IntLit,
    Ternary,
    UnaryOp,
)
from repro.lang.errors import LangError
from repro.lang.parser import parse


def parse_expr(expr_src):
    program = parse(f"circuit t {{ input a, b, c; output r = {expr_src}; }}")
    return program.statements[-1].expr


class TestStructure:
    def test_program_name_and_statements(self):
        p = parse("circuit adder { input a, b; output s = a + b; }")
        assert p.name == "adder"
        assert isinstance(p.statements[0], InputDecl)
        assert p.statements[0].names == ("a", "b")
        definition = p.statements[1]
        assert isinstance(definition, Definition)
        assert definition.is_output

    def test_inputs_and_outputs_properties(self):
        p = parse("""
            circuit t {
                input a;
                input b, c;
                t1 = a + b;
                output x = t1;
                output y = c;
            }
        """)
        assert p.inputs == ["a", "b", "c"]
        assert p.outputs == ["x", "y"]

    def test_non_output_definition(self):
        p = parse("circuit t { input a; v = a + 1; output o = v; }")
        assert not p.statements[1].is_output


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        e = parse_expr("a + b * c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.rhs, BinOp) and e.rhs.op == "*"

    def test_comparison_binds_looser_than_add(self):
        e = parse_expr("a + b > c")
        assert e.op == ">"
        assert isinstance(e.lhs, BinOp) and e.lhs.op == "+"

    def test_equality_looser_than_relational(self):
        e = parse_expr("a > b == c > a")
        assert e.op == "=="

    def test_bitwise_hierarchy(self):
        e = parse_expr("a | b ^ c & a")
        assert e.op == "|"
        assert e.rhs.op == "^"
        assert e.rhs.rhs.op == "&"

    def test_parentheses_override(self):
        e = parse_expr("(a + b) * c")
        assert e.op == "*"
        assert e.lhs.op == "+"

    def test_left_associativity(self):
        e = parse_expr("a - b - c")
        assert e.op == "-"
        assert isinstance(e.lhs, BinOp) and e.lhs.op == "-"
        assert isinstance(e.rhs, Ident)

    def test_shift(self):
        e = parse_expr("a >> 2")
        assert e.op == ">>"
        assert isinstance(e.rhs, IntLit)


class TestTernary:
    def test_basic_ternary(self):
        e = parse_expr("a > b ? a : b")
        assert isinstance(e, Ternary)
        assert isinstance(e.cond, BinOp)

    def test_nested_ternary_right_associates(self):
        e = parse_expr("a > b ? a : b > c ? b : c")
        assert isinstance(e, Ternary)
        assert isinstance(e.if_false, Ternary)

    def test_ternary_in_true_branch(self):
        e = parse_expr("a > b ? (b > c ? b : c) : a")
        assert isinstance(e.if_true, Ternary)


class TestUnary:
    def test_negative_literal_folds(self):
        e = parse_expr("-5")
        assert isinstance(e, IntLit) and e.value == -5

    def test_unary_minus_on_ident(self):
        e = parse_expr("-a")
        assert isinstance(e, UnaryOp) and e.op == "-"

    def test_double_negation(self):
        e = parse_expr("--a")
        assert isinstance(e, UnaryOp)
        assert isinstance(e.operand, UnaryOp)

    def test_bitwise_not(self):
        e = parse_expr("~a")
        assert isinstance(e, UnaryOp) and e.op == "~"


class TestErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("circuit { }", "expected"),
        ("circuit t { input ; }", "expected"),
        ("circuit t { output = 1; }", "expected"),
        ("circuit t { input a; output r = a +; }", "expression"),
        ("circuit t { input a; output r = a ? a; }", "':'"),
        ("circuit t { input a; output r = (a; }", "expected"),
        ("circuit t { input a; output r = a }", "';'"),
    ])
    def test_syntax_errors(self, source, fragment):
        with pytest.raises(LangError, match=fragment):
            parse(source)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(LangError):
            parse("circuit t { input a; output r = a; } extra")
